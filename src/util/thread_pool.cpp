#include "util/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "util/failpoint.hpp"

namespace cwgl::util {

namespace {

std::uint64_t elapsed_us(obs::Stopwatch::clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          obs::Stopwatch::clock::now() - since)
          .count());
}

}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  auto& registry = obs::MetricsRegistry::global();
  metrics_ = Metrics{&registry,
                     &registry.counter("pool.task.submitted"),
                     &registry.counter("pool.task.completed"),
                     &registry.counter("pool.worker.busy_us"),
                     &registry.gauge("pool.queue.depth"),
                     &registry.histogram("pool.task.wait_us"),
                     &registry.histogram("pool.task.run_us")};
  unsigned n = threads != 0 ? threads : std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    std::lock_guard lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::run_task(QueuedTask&& task) {
  const bool timing = metrics_.registry->timing_enabled();
  if (timing && task.enqueued != obs::Stopwatch::clock::time_point{}) {
    metrics_.wait_us->record(elapsed_us(task.enqueued));
  }
  if (timing) {
    const auto started = obs::Stopwatch::clock::now();
    task.run();  // packaged_task captures exceptions; never throws here
    const std::uint64_t us = elapsed_us(started);
    metrics_.run_us->record(us);
    metrics_.busy_us->add(us);
  } else {
    task.run();
  }
  metrics_.completed->add();
}

void ThreadPool::worker_loop() {
  for (;;) {
    QueuedTask task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      metrics_.depth->set(static_cast<std::int64_t>(queue_.size()));
    }
    run_task(std::move(task));
  }
}

bool ThreadPool::run_pending_task() {
  QueuedTask task;
  {
    std::lock_guard lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
    metrics_.depth->set(static_cast<std::int64_t>(queue_.size()));
  }
  run_task(std::move(task));
  return true;
}

ThreadPool& default_pool() {
  static ThreadPool pool;
  return pool;
}

namespace {

/// Submits one pool task per [lo, hi) range and blocks until all settle —
/// the shared back half of parallel_for_chunked / parallel_for_weighted.
/// The caller "helps" while waiting (drains queued tasks, ours or anyone's,
/// via run_pending_task), so a pool task blocked here can never starve its
/// own chunks of a worker.
void run_range_chunks(ThreadPool& pool,
                      const std::vector<std::pair<std::size_t, std::size_t>>& ranges,
                      const std::function<void(std::size_t, std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(ranges.size());
  std::exception_ptr first_error;
  try {
    for (const auto& [lo, hi] : ranges) {
      futures.push_back(pool.submit([&fn, lo = lo, hi = hi] {
        // Exceptions (including injected ones) surface through the future
        // and are rethrown below after every chunk resolves.
        CWGL_FAILPOINT("pool.chunk");
        fn(lo, hi);
      }));
    }
  } catch (...) {
    // A failed submission must not unwind while already-queued chunks still
    // reference `fn` (which lives in our caller's frame): settle them first.
    first_error = std::current_exception();
  }
  for (auto& f : futures) {
    while (f.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
      if (!pool.run_pending_task()) f.wait();
    }
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace

void parallel_for_chunked(ThreadPool& pool, std::size_t begin, std::size_t end,
                          std::size_t grain,
                          const std::function<void(std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  grain = std::max<std::size_t>(grain, 1);
  const std::size_t total = end - begin;
  if (pool.size() <= 1 || total <= grain) {
    fn(begin, end);
    return;
  }
  const std::size_t chunks = std::min((total + grain - 1) / grain, pool.size() * 4);
  const std::size_t step = (total + chunks - 1) / chunks;
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  ranges.reserve(chunks);
  for (std::size_t c = begin; c < end; c += step) {
    ranges.emplace_back(c, std::min(c + step, end));
  }
  run_range_chunks(pool, ranges, fn);
}

void parallel_for_weighted(ThreadPool& pool, std::span<const double> work,
                           const std::function<void(std::size_t, std::size_t)>& fn) {
  const std::size_t n = work.size();
  if (n == 0) return;
  if (pool.size() <= 1 || n == 1) {
    fn(0, n);
    return;
  }
  double total = 0.0;
  for (const double w : work) {
    if (std::isfinite(w) && w > 0.0) total += w;
  }
  const std::size_t chunks = std::min(n, pool.size() * 4);
  if (total <= 0.0) {
    // Degenerate weights: fall back to uniform item-count chunking.
    parallel_for_chunked(pool, 0, n, (n + chunks - 1) / chunks, fn);
    return;
  }
  // Place boundary k where the weight prefix first reaches k/chunks of the
  // total, so every chunk carries ~equal work regardless of per-item skew.
  // Targets are absolute (not running) so rounding error never accumulates.
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  ranges.reserve(chunks);
  double prefix = 0.0;
  std::size_t lo = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double w = work[i];
    if (std::isfinite(w) && w > 0.0) prefix += w;
    if (i + 1 == n) {
      ranges.emplace_back(lo, n);
    } else if (ranges.size() + 1 < chunks &&
               prefix >= total * static_cast<double>(ranges.size() + 1) /
                             static_cast<double>(chunks)) {
      ranges.emplace_back(lo, i + 1);
      lo = i + 1;
    }
  }
  run_range_chunks(pool, ranges, fn);
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn, std::size_t grain) {
  parallel_for_chunked(pool, begin, end, grain,
                       [&fn](std::size_t lo, std::size_t hi) {
                         for (std::size_t i = lo; i < hi; ++i) fn(i);
                       });
}

}  // namespace cwgl::util

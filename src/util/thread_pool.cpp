#include "util/thread_pool.hpp"

#include <algorithm>
#include <chrono>

#include "util/failpoint.hpp"

namespace cwgl::util {

namespace {

std::uint64_t elapsed_us(obs::Stopwatch::clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          obs::Stopwatch::clock::now() - since)
          .count());
}

}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  auto& registry = obs::MetricsRegistry::global();
  metrics_ = Metrics{&registry,
                     &registry.counter("pool.task.submitted"),
                     &registry.counter("pool.task.completed"),
                     &registry.counter("pool.worker.busy_us"),
                     &registry.gauge("pool.queue.depth"),
                     &registry.histogram("pool.task.wait_us"),
                     &registry.histogram("pool.task.run_us")};
  unsigned n = threads != 0 ? threads : std::thread::hardware_concurrency();
  if (n == 0) n = 1;
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    std::lock_guard lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::run_task(QueuedTask&& task) {
  const bool timing = metrics_.registry->timing_enabled();
  if (timing && task.enqueued != obs::Stopwatch::clock::time_point{}) {
    metrics_.wait_us->record(elapsed_us(task.enqueued));
  }
  if (timing) {
    const auto started = obs::Stopwatch::clock::now();
    task.run();  // packaged_task captures exceptions; never throws here
    const std::uint64_t us = elapsed_us(started);
    metrics_.run_us->record(us);
    metrics_.busy_us->add(us);
  } else {
    task.run();
  }
  metrics_.completed->add();
}

void ThreadPool::worker_loop() {
  for (;;) {
    QueuedTask task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      metrics_.depth->set(static_cast<std::int64_t>(queue_.size()));
    }
    run_task(std::move(task));
  }
}

bool ThreadPool::run_pending_task() {
  QueuedTask task;
  {
    std::lock_guard lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
    metrics_.depth->set(static_cast<std::int64_t>(queue_.size()));
  }
  run_task(std::move(task));
  return true;
}

ThreadPool& default_pool() {
  static ThreadPool pool;
  return pool;
}

void parallel_for_chunked(ThreadPool& pool, std::size_t begin, std::size_t end,
                          std::size_t grain,
                          const std::function<void(std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  grain = std::max<std::size_t>(grain, 1);
  const std::size_t total = end - begin;
  if (pool.size() <= 1 || total <= grain) {
    fn(begin, end);
    return;
  }
  const std::size_t chunks = std::min((total + grain - 1) / grain, pool.size() * 4);
  const std::size_t step = (total + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  std::exception_ptr first_error;
  try {
    for (std::size_t c = begin; c < end; c += step) {
      const std::size_t hi = std::min(c + step, end);
      futures.push_back(pool.submit([&fn, c, hi] {
        // Exceptions (including injected ones) surface through the future
        // and are rethrown below after every chunk resolves.
        CWGL_FAILPOINT("pool.chunk");
        fn(c, hi);
      }));
    }
  } catch (...) {
    // A failed submission must not unwind while already-queued chunks still
    // reference `fn` (which lives in our caller's frame): settle them first.
    first_error = std::current_exception();
  }
  for (auto& f : futures) {
    // Help-while-waiting: drain queued tasks (ours or anyone's) until this
    // chunk resolves, so a pool task blocked here can never starve its own
    // chunks of a worker.
    while (f.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
      if (!pool.run_pending_task()) f.wait();
    }
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn, std::size_t grain) {
  parallel_for_chunked(pool, begin, end, grain,
                       [&fn](std::size_t lo, std::size_t hi) {
                         for (std::size_t i = lo; i < hi; ++i) fn(i);
                       });
}

}  // namespace cwgl::util

#include "util/diagnostics.hpp"

#include <ostream>

#include "util/json.hpp"

namespace cwgl::util {

namespace {

constexpr std::size_t kMaxSampleBytes = 160;

std::string clip(std::string_view sample) {
  if (sample.size() <= kMaxSampleBytes) return std::string(sample);
  return std::string(sample.substr(0, kMaxSampleBytes)) + "...";
}

}  // namespace

void Diagnostics::count(std::string_view stage, std::string_view kind,
                        std::uint64_t n) {
  std::lock_guard lock(mutex_);
  Entry& e = entries_[{std::string(stage), std::string(kind)}];
  if (e.count == 0) {
    e.stage = stage;
    e.kind = kind;
  }
  e.count += n;
}

void Diagnostics::record(std::string_view stage, std::string_view kind,
                         std::string_view sample) {
  std::lock_guard lock(mutex_);
  Entry& e = entries_[{std::string(stage), std::string(kind)}];
  if (e.count == 0) {
    e.stage = stage;
    e.kind = kind;
  }
  ++e.count;
  if (e.samples.size() < max_samples_) e.samples.push_back(clip(sample));
}

std::uint64_t Diagnostics::total() const {
  std::lock_guard lock(mutex_);
  std::uint64_t sum = 0;
  for (const auto& [key, e] : entries_) sum += e.count;
  return sum;
}

std::uint64_t Diagnostics::count_of(std::string_view stage,
                                    std::string_view kind) const {
  std::lock_guard lock(mutex_);
  const auto it = entries_.find({std::string(stage), std::string(kind)});
  return it == entries_.end() ? 0 : it->second.count;
}

std::vector<Diagnostics::Entry> Diagnostics::entries() const {
  std::lock_guard lock(mutex_);
  std::vector<Entry> out;
  out.reserve(entries_.size());
  for (const auto& [key, e] : entries_) out.push_back(e);
  return out;
}

void Diagnostics::write_text(std::ostream& out) const {
  const auto snapshot = entries();
  if (snapshot.empty()) {
    out << "diagnostics: clean (nothing quarantined)\n";
    return;
  }
  std::uint64_t sum = 0;
  for (const auto& e : snapshot) sum += e.count;
  out << "diagnostics: " << sum << " event(s) quarantined or degraded\n";
  for (const auto& e : snapshot) {
    out << "  " << e.stage << "/" << e.kind << ": " << e.count << "\n";
    for (const auto& s : e.samples) out << "    e.g. " << s << "\n";
  }
}

void Diagnostics::write_json(std::ostream& out) const {
  const auto snapshot = entries();
  std::uint64_t sum = 0;
  for (const auto& e : snapshot) sum += e.count;
  JsonWriter j(out);
  j.begin_object();
  j.field("total", sum);
  j.key("entries");
  j.begin_array();
  for (const auto& e : snapshot) {
    j.begin_object();
    j.field("stage", e.stage);
    j.field("kind", e.kind);
    j.field("count", e.count);
    j.key("samples");
    j.begin_array();
    for (const auto& s : e.samples) j.value(s);
    j.end_array();
    j.end_object();
  }
  j.end_array();
  j.end_object();
}

}  // namespace cwgl::util

#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace cwgl::util {

/// Streaming univariate summary (Welford's online algorithm).
///
/// Accumulates count / min / max / mean / variance in one pass without
/// storing samples; numerically stable for long streams.
class RunningSummary {
 public:
  /// Folds one observation into the summary.
  void add(double x) noexcept;

  /// Merges another summary (parallel reduction support).
  void merge(const RunningSummary& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Order statistics of a sample (copies and sorts once on construction).
class Quantiles {
 public:
  explicit Quantiles(std::span<const double> values);

  bool empty() const noexcept { return sorted_.empty(); }

  /// Linear-interpolation quantile, q in [0,1]. Returns 0 for empty input.
  double quantile(double q) const noexcept;
  double median() const noexcept { return quantile(0.5); }
  double p25() const noexcept { return quantile(0.25); }
  double p75() const noexcept { return quantile(0.75); }
  double p95() const noexcept { return quantile(0.95); }
  double min() const noexcept { return sorted_.empty() ? 0.0 : sorted_.front(); }
  double max() const noexcept { return sorted_.empty() ? 0.0 : sorted_.back(); }

 private:
  std::vector<double> sorted_;
};

/// Integer-keyed frequency counter, the workhorse for "jobs per size group"
/// style figures. Keys iterate in ascending order.
class IntHistogram {
 public:
  void add(long long key, std::size_t weight = 1);

  std::size_t total() const noexcept { return total_; }
  std::size_t count(long long key) const noexcept;
  bool empty() const noexcept { return bins_.empty(); }
  std::size_t distinct() const noexcept { return bins_.size(); }

  /// Ascending (key, count) pairs.
  std::vector<std::pair<long long, std::size_t>> items() const;

  /// Fraction of total mass at `key` (0 when the histogram is empty).
  double fraction(long long key) const noexcept;

 private:
  std::map<long long, std::size_t> bins_;
  std::size_t total_ = 0;
};

/// Five-number + mean description of a sample, for compact report rows.
struct Distribution {
  std::size_t count = 0;
  double mean = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double max = 0.0;
};

/// Computes a `Distribution` from raw values.
Distribution describe(std::span<const double> values);

/// Computes the `Distribution` of the sample in which `values[i]` occurs
/// `weights[i]` times, without expanding it. Order statistics (min/p25/
/// median/p75/max) are bit-identical to `describe` on the expanded sample;
/// the mean is the same value up to floating-point summation order.
/// Weights of zero are ignored; the spans must have equal length.
Distribution describe_weighted(std::span<const double> values,
                               std::span<const std::uint64_t> weights);

/// Pearson correlation of two equal-length samples; 0 if degenerate.
double pearson(std::span<const double> x, std::span<const double> y);

/// Jensen–Shannon divergence (natural log) between two discrete
/// distributions given as histograms over the same integer key space.
/// Symmetric, in [0, ln 2]; 0 iff the normalized distributions are equal.
/// Empty-vs-empty is 0; empty-vs-nonempty is ln 2 (maximally different).
double jensen_shannon(const IntHistogram& p, const IntHistogram& q);

}  // namespace cwgl::util

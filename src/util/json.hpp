#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace cwgl::util {

/// Minimal streaming JSON writer with automatic comma management.
///
/// Usage:
///   JsonWriter j(out);
///   j.begin_object();
///     j.key("name"); j.value("cwgl");
///     j.key("sizes"); j.begin_array(); j.value(1); j.value(2); j.end_array();
///   j.end_object();
///
/// Misuse (key outside an object, unbalanced end, two keys in a row) throws
/// InvalidArgument. Non-finite doubles serialize as null. Strings are
/// escaped per RFC 8259.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}
  ~JsonWriter() = default;

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Emits an object key; the next emission must be its value.
  void key(std::string_view name);

  void value(std::string_view text);
  void value(const char* text) { value(std::string_view(text)); }
  void value(double number);
  void value(long long number);
  void value(unsigned long long number);
  void value(int number) { value(static_cast<long long>(number)); }
  void value(std::size_t number) { value(static_cast<unsigned long long>(number)); }
  void value(bool flag);
  void null();

  /// Emits `json` verbatim as one value — for embedding a sub-document that
  /// another component already serialized (diagnostics, metrics snapshots).
  /// The caller vouches that `json` is a single well-formed JSON value.
  void raw(std::string_view json);

  /// Convenience: key + value in one call.
  template <typename T>
  void field(std::string_view name, T&& v) {
    key(name);
    value(std::forward<T>(v));
  }

  /// True once every container has been closed and a root value written.
  bool complete() const noexcept;

 private:
  enum class Frame { Object, ObjectAwaitingValue, Array };
  void before_value();
  void write_escaped(std::string_view text);

  std::ostream& out_;
  std::vector<Frame> stack_;
  std::vector<bool> first_;  ///< per open container: no element yet
  bool root_written_ = false;
};

/// Parsed JSON document node: the read-side counterpart of JsonWriter.
///
/// A small recursive value type (null / bool / number / string / array /
/// object) sufficient for round-tripping everything this tree emits — CLI
/// `--json` reports, metrics snapshots, trace-event files, bench JSON. Not a
/// general-purpose DOM: numbers are held as double (fine for the counters
/// and timings we serialize), objects preserve no key order (std::map), and
/// documents are parsed fully into memory.
class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue, std::less<>>;

  JsonValue() = default;  ///< null
  explicit JsonValue(std::nullptr_t) {}
  explicit JsonValue(bool b) : data_(b) {}
  explicit JsonValue(double d) : data_(d) {}
  explicit JsonValue(std::string s) : data_(std::move(s)) {}
  explicit JsonValue(Array a) : data_(std::move(a)) {}
  explicit JsonValue(Object o) : data_(std::move(o)) {}

  bool is_null() const noexcept { return std::holds_alternative<std::monostate>(data_); }
  bool is_bool() const noexcept { return std::holds_alternative<bool>(data_); }
  bool is_number() const noexcept { return std::holds_alternative<double>(data_); }
  bool is_string() const noexcept { return std::holds_alternative<std::string>(data_); }
  bool is_array() const noexcept { return std::holds_alternative<Array>(data_); }
  bool is_object() const noexcept { return std::holds_alternative<Object>(data_); }

  /// Checked accessors: throw InvalidArgument when the kind does not match.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;

  /// Object member lookup; throws when not an object or key absent.
  const JsonValue& at(std::string_view key) const;
  /// Object member lookup; nullptr when not an object or key absent.
  const JsonValue* find(std::string_view key) const noexcept;
  /// True when this is an object containing `key`.
  bool contains(std::string_view key) const noexcept;

 private:
  std::variant<std::monostate, bool, double, std::string, Array, Object> data_;
};

/// Parses a complete JSON document (RFC 8259). Throws ParseError on syntax
/// errors (with byte offset) and on trailing non-whitespace after the root
/// value. Accepts everything JsonWriter emits.
JsonValue parse_json(std::string_view text);

/// Serializes a parsed document back to compact single-line JSON (object
/// keys come out sorted — JsonValue objects are std::map). Doubles that are
/// exactly integral print without a fraction, so counters and ids survive a
/// parse/serialize round trip byte-identically.
void write_json(std::ostream& out, const JsonValue& v);

/// write_json into a string — the form protocol payloads ride in.
std::string to_json_string(const JsonValue& v);

}  // namespace cwgl::util

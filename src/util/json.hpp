#pragma once

#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

namespace cwgl::util {

/// Minimal streaming JSON writer with automatic comma management.
///
/// Usage:
///   JsonWriter j(out);
///   j.begin_object();
///     j.key("name"); j.value("cwgl");
///     j.key("sizes"); j.begin_array(); j.value(1); j.value(2); j.end_array();
///   j.end_object();
///
/// Misuse (key outside an object, unbalanced end, two keys in a row) throws
/// InvalidArgument. Non-finite doubles serialize as null. Strings are
/// escaped per RFC 8259.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}
  ~JsonWriter() = default;

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Emits an object key; the next emission must be its value.
  void key(std::string_view name);

  void value(std::string_view text);
  void value(const char* text) { value(std::string_view(text)); }
  void value(double number);
  void value(long long number);
  void value(unsigned long long number);
  void value(int number) { value(static_cast<long long>(number)); }
  void value(std::size_t number) { value(static_cast<unsigned long long>(number)); }
  void value(bool flag);
  void null();

  /// Convenience: key + value in one call.
  template <typename T>
  void field(std::string_view name, T&& v) {
    key(name);
    value(std::forward<T>(v));
  }

  /// True once every container has been closed and a root value written.
  bool complete() const noexcept;

 private:
  enum class Frame { Object, ObjectAwaitingValue, Array };
  void before_value();
  void write_escaped(std::string_view text);

  std::ostream& out_;
  std::vector<Frame> stack_;
  std::vector<bool> first_;  ///< per open container: no element yet
  bool root_written_ = false;
};

}  // namespace cwgl::util

#include "util/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdint>
#include <cstdio>

namespace cwgl::util {

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t b = 0, e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

std::string join(std::span<const std::string> parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::optional<double> to_double_general(std::string_view text) {
  if (text.empty()) return std::nullopt;
  double value = 0.0;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return value;
}

bool all_digits(std::string_view text) noexcept {
  if (text.empty()) return false;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

std::string pad_left(std::string_view text, std::size_t width) {
  std::string out;
  if (text.size() < width) out.assign(width - text.size(), ' ');
  out += text;
  return out;
}

std::string pad_right(std::string_view text, std::size_t width) {
  std::string out(text);
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

std::string format_double(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

}  // namespace cwgl::util

#include "util/csv_scanner.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <istream>

#include "obs/metrics.hpp"
#include "util/diagnostics.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"

namespace cwgl::util {

namespace {

// Flags bytes of `word` below 0x30 ('0') by setting their high bit. Every
// CSV special byte — ',' 0x2C, '\n' 0x0A, '\r' 0x0D, '"' 0x22 — is below
// '0', while trace payload is almost entirely alphanumeric, so one probe
// covers all four. Borrow propagation may over-flag a byte directly above a
// true hit and bytes like '.' flag too, so callers must recheck the byte —
// but a genuine special byte is never missed.
constexpr std::uint64_t flag_special(std::uint64_t word) noexcept {
  constexpr std::uint64_t kOnes = 0x0101010101010101ull;
  constexpr std::uint64_t kHigh = 0x8080808080808080ull;
  return (word - kOnes * 0x30) & ~word & kHigh;
}

/// Index (in memory order) of the lowest-address flagged byte.
constexpr std::size_t first_flagged(std::uint64_t mask) noexcept {
  if constexpr (std::endian::native == std::endian::little) {
    return static_cast<std::size_t>(std::countr_zero(mask)) >> 3;
  } else {
    return static_cast<std::size_t>(std::countl_zero(mask)) >> 3;
  }
}

constexpr std::uint64_t clear_flagged(std::uint64_t mask,
                                      std::size_t idx) noexcept {
  if constexpr (std::endian::native == std::endian::little) {
    return mask & (mask - 1);
  } else {
    return mask & ~(0x8000000000000000ull >> (idx * 8));
  }
}

}  // namespace

CsvScanner::CsvScanner(std::istream& in, std::size_t block_size,
                       CsvScanPolicy policy)
    : in_(in), block_size_(std::max<std::size_t>(1, block_size)),
      policy_(policy) {}

CsvScanner::~CsvScanner() { flush_metrics(); }

void CsvScanner::flush_metrics() {
  auto& registry = obs::MetricsRegistry::global();
  if (record_ > flushed_records_) {
    registry.counter("ingest.scanner.rows").add(record_ - flushed_records_);
    flushed_records_ = record_;
  }
  if (consumed_ > flushed_bytes_) {
    registry.counter("ingest.scanner.bytes").add(consumed_ - flushed_bytes_);
    flushed_bytes_ = consumed_;
  }
  if (quarantined_ > flushed_quarantined_) {
    registry.counter("ingest.scanner.quarantined")
        .add(quarantined_ - flushed_quarantined_);
    flushed_quarantined_ = quarantined_;
  }
}

bool CsvScanner::refill() {
  if (begin_ > 0) {
    std::memmove(buffer_.data(), buffer_.data() + begin_, end_ - begin_);
    end_ -= begin_;
    begin_ = 0;
  }
  if (buffer_.size() - end_ < block_size_) {
    // Double rather than add one block so a record much larger than the
    // block size costs O(record) amortized, not O(record^2 / block).
    buffer_.resize(std::max(buffer_.size() * 2, end_ + block_size_));
  }
  CWGL_FAILPOINT("ingest.read_block");
  // short-read injection shrinks this refill, forcing records to straddle
  // refills far more often than real block sizes ever would.
  const std::size_t want = CWGL_FAILPOINT_CLAMP("ingest.read_block", block_size_);
  in_.read(buffer_.data() + end_, static_cast<std::streamsize>(want));
  const auto got = static_cast<std::size_t>(in_.gcount());
  end_ += got;
  if (got < want) eof_ = true;
  return got > 0;
}

bool CsvScanner::quarantine_and_resync() {
  ++quarantined_;
  // The whole unterminated record is resident: the slow path never advances
  // begin_ before completing a record, and refills at EOF stop growing it.
  const char* rec = buffer_.data() + begin_;
  const std::size_t len = end_ - begin_;
  const char* nl = static_cast<const char*>(std::memchr(rec, '\n', len));
  if (policy_.diagnostics != nullptr) {
    const std::size_t line_len =
        nl != nullptr ? static_cast<std::size_t>(nl - rec) : len;
    policy_.diagnostics->record("csv", "unterminated-quote",
                                std::string_view(rec, line_len));
  }
  if (nl == nullptr) {
    begin_ = end_;  // no later line boundary: the damage reaches EOF
    return false;
  }
  begin_ += static_cast<std::size_t>(nl - rec) + 1;
  return begin_ < end_;
}

std::optional<std::span<const std::string_view>> CsvScanner::next() {
  if (begin_ == end_ && !eof_) refill();
  if (begin_ == end_) {
    flush_metrics();
    return std::nullopt;
  }

  // Parse attempts restart from the top whenever a refill is needed:
  // refilling compacts the buffer (invalidating in-progress views), and a
  // record can straddle block boundaries only O(record/block) times, so the
  // rescan cost is bounded. Each attempt first tries the vectorized fast
  // path (memchr terminator + quote probe + memchr field splits) that covers
  // every record of the real traces; records containing a quote fall back to
  // a state machine that mirrors CsvReader exactly, where `copy` switches a
  // field from the zero-copy slice to unescaped copy-out storage the moment
  // quoting makes the raw bytes differ from the field.
  for (;;) {
    fields_.clear();
    unescaped_.clear();

    // --- fast path: unquoted record fully resident in the buffer ---
    // A single word-at-a-time sweep finds commas, the record terminator, and
    // any quote at once; the first quote bails out to the exact state
    // machine, and running off the buffered bytes triggers a refill.
    {
      const char* rec = buffer_.data() + begin_;
      const char* lim = buffer_.data() + end_;
      const char* field_start = rec;
      const char* p = rec;
      std::size_t content_len = 0;  ///< record bytes before the terminator
      std::size_t rec_len = 0;      ///< bytes consumed including terminator
      enum { kScanning, kDone, kRefill, kQuoted } state = kScanning;
      while (state == kScanning) {
        if (p >= lim) {
          if (!eof_) {
            state = kRefill;
            break;
          }
          content_len = rec_len = static_cast<std::size_t>(lim - rec);
          state = kDone;
          break;
        }
        std::uint64_t word = 0;
        std::size_t n = static_cast<std::size_t>(lim - p);
        if (n >= 8) {
          n = 8;
          std::memcpy(&word, p, 8);  // fixed size: a single unaligned load
        } else {
          std::memcpy(&word, p, n);  // zero padding flags only harmless bytes
        }
        std::uint64_t special = flag_special(word);
        while (special != 0) {
          const std::size_t off = first_flagged(special);
          special = clear_flagged(special, off);
          if (off >= n) break;  // padding byte of the final partial word
          const char* at = p + off;
          const char c = *at;  // flag_special over-flags; recheck the byte
          if (c == ',') {
            fields_.emplace_back(field_start,
                                 static_cast<std::size_t>(at - field_start));
            field_start = at + 1;
          } else if (c == '"') {
            state = kQuoted;
            break;
          } else if (c == '\n' || c == '\r') {
            content_len = static_cast<std::size_t>(at - rec);
            if (c == '\n') {
              rec_len = content_len + 1;
            } else if (at + 1 == lim && !eof_) {
              state = kRefill;  // cannot tell yet whether a CRLF pair follows
              break;
            } else {
              rec_len = content_len + ((at + 1 < lim && at[1] == '\n') ? 2 : 1);
            }
            if (state == kScanning) state = kDone;
            break;
          }
        }
        if (state == kScanning) p += n;
      }
      if (state == kRefill) {
        refill();
        continue;
      }
      if (state == kDone) {
        fields_.emplace_back(
            field_start,
            static_cast<std::size_t>((rec + content_len) - field_start));
        consumed_ += rec_len;
        begin_ += rec_len;
        ++record_;
        return std::span<const std::string_view>(fields_);
      }
      // A quote is present: take the exact CsvReader state machine below.
      fields_.clear();
    }
    std::size_t p = begin_;
    std::size_t field_begin = p;
    std::string* copy = nullptr;
    bool in_quotes = false;
    bool need_refill = false;
    bool need_resync = false;
    std::size_t field_end = 0;  ///< position of the record terminator
    std::size_t rec_end = 0;    ///< one past the consumed terminator bytes

    const auto finish_field = [&](std::size_t at) {
      fields_.push_back(copy ? std::string_view(*copy)
                             : std::string_view(buffer_.data() + field_begin,
                                                at - field_begin));
    };

    for (;;) {
      if (p == end_) {
        if (!eof_) {
          need_refill = true;
          break;
        }
        if (in_quotes) {
          if (!policy_.lenient) {
            throw ParseError("CSV record " + std::to_string(record_ + 1) +
                             ": unterminated quoted field");
          }
          need_resync = true;
          break;
        }
        field_end = rec_end = p;
        break;
      }
      const char ch = buffer_[p];
      if (in_quotes) {
        if (ch == '"') {
          if (p + 1 == end_ && !eof_) {
            need_refill = true;
            break;
          }
          if (p + 1 < end_ && buffer_[p + 1] == '"') {
            copy->push_back('"');
            p += 2;
          } else {
            in_quotes = false;
            ++p;
          }
        } else {
          copy->push_back(ch);
          ++p;
        }
        continue;
      }
      if (ch == '"' && (copy ? copy->empty() : p == field_begin)) {
        if (copy == nullptr) copy = &unescaped_.emplace_back();
        in_quotes = true;
        ++p;
      } else if (ch == ',') {
        finish_field(p);
        ++p;
        field_begin = p;
        copy = nullptr;
      } else if (ch == '\n') {
        field_end = p;
        rec_end = p + 1;
        break;
      } else if (ch == '\r') {
        if (p + 1 == end_ && !eof_) {
          need_refill = true;
          break;
        }
        field_end = p;
        rec_end = (p + 1 < end_ && buffer_[p + 1] == '\n') ? p + 2 : p + 1;
        break;
      } else {
        if (copy != nullptr) copy->push_back(ch);
        ++p;
      }
    }

    if (need_resync) {
      if (!quarantine_and_resync()) {
        flush_metrics();
        return std::nullopt;
      }
      continue;
    }
    if (need_refill) {
      refill();
      continue;
    }
    finish_field(field_end);
    consumed_ += rec_end - begin_;
    begin_ = rec_end;
    ++record_;
    return std::span<const std::string_view>(fields_);
  }
}

std::size_t scan_csv_records(
    std::istream& in,
    const std::function<bool(std::span<const std::string_view>)>& fn,
    CsvScanPolicy policy) {
  CsvScanner scanner(in, CsvScanner::kDefaultBlockSize, policy);
  std::size_t n = 0;
  while (const auto record = scanner.next()) {
    ++n;
    if (!fn(*record)) break;
  }
  return n;
}

}  // namespace cwgl::util

// The paper's motivating use case (Sections I and VIII): use topology-based
// job groups to foresee the resource demands and execution shape of INCOMING
// jobs before they run.
//
// Workflow:
//   1. Characterize a "historical" trace: sample, similarity map, spectral
//      clustering into groups, per-group scheduling profile (parallelism,
//      depth, instance volume).
//   2. A stream of new jobs arrives (different generator seed). Each is
//      classified to the most WL-similar group medoid, and the group profile
//      becomes the scheduling hint.
//   3. Report how close the hinted parallelism/depth are to the ground
//      truth of each incoming job.
//
//   ./scheduler_hints [history_jobs] [incoming_jobs]

#include <cmath>
#include <cstdlib>
#include <iostream>

#include "core/pipeline.hpp"
#include "graph/algorithms.hpp"
#include "kernel/wl.hpp"
#include "sched/simulator.hpp"
#include "trace/generator.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

using namespace cwgl;

namespace {

struct GroupProfile {
  char letter;
  double mean_width;
  double mean_depth;
  double mean_instances;
  core::JobDag medoid;
};

double mean_instances_of(const core::JobDag& job) {
  double total = 0.0;
  for (const auto& t : job.tasks) total += t.instance_num;
  return job.tasks.empty() ? 0.0 : total / static_cast<double>(job.tasks.size());
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t history_jobs =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 10000;
  const std::size_t incoming_jobs =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 200;

  // --- 1. learn groups from history -------------------------------------
  trace::GeneratorConfig hist_cfg;
  hist_cfg.seed = 42;
  hist_cfg.num_jobs = history_jobs;
  hist_cfg.emit_instances = false;
  const trace::Trace history = trace::TraceGenerator(hist_cfg).generate();

  core::PipelineConfig cfg;
  cfg.sample_size = 100;
  cfg.clustering.clusters = 5;
  const core::CharacterizationPipeline pipeline(cfg);
  const auto sample = pipeline.build_sample(history);
  util::ThreadPool pool;
  const auto similarity = core::SimilarityAnalysis::compute(sample, {}, &pool);
  const auto clustering =
      core::ClusteringAnalysis::compute(similarity.gram, sample, cfg.clustering);

  std::vector<GroupProfile> profiles;
  for (const auto& g : clustering.groups) {
    if (g.population == 0) continue;
    profiles.push_back({g.letter(), g.parallelism.mean, g.critical_path.mean,
                        mean_instances_of(sample[g.medoid]), sample[g.medoid]});
    std::cout << "group " << g.letter() << ": " << g.population
              << " jobs, hint = {parallel slots " << util::format_double(g.parallelism.mean, 1)
              << ", pipeline depth " << util::format_double(g.critical_path.mean, 1)
              << "}\n";
  }

  // --- 2. classify incoming jobs against the medoids --------------------
  trace::GeneratorConfig inc_cfg = hist_cfg;
  inc_cfg.seed = 4242;  // unseen stream
  inc_cfg.num_jobs = incoming_jobs * 3;  // some are non-DAG / filtered
  const trace::Trace incoming_trace = trace::TraceGenerator(inc_cfg).generate();
  core::PipelineConfig inc_pipe_cfg;
  inc_pipe_cfg.sample_size = incoming_jobs;
  const auto incoming =
      core::CharacterizationPipeline(inc_pipe_cfg).build_sample(incoming_trace);

  util::RunningSummary width_error, depth_error;
  std::vector<std::size_t> assigned(profiles.size(), 0);
  for (const auto& job : incoming) {
    double best = -1.0;
    std::size_t best_group = 0;
    for (std::size_t g = 0; g < profiles.size(); ++g) {
      const double s = kernel::wl_subtree_similarity(
          job.to_labeled(), profiles[g].medoid.to_labeled());
      if (s > best) {
        best = s;
        best_group = g;
      }
    }
    ++assigned[best_group];
    const auto& hint = profiles[best_group];
    width_error.add(std::abs(hint.mean_width - graph::max_width(job.dag)));
    depth_error.add(
        std::abs(hint.mean_depth - graph::critical_path_length(job.dag)));
  }

  // --- 3. report hint quality -------------------------------------------
  std::cout << "\nclassified " << incoming.size() << " incoming jobs:\n";
  for (std::size_t g = 0; g < profiles.size(); ++g) {
    std::cout << "  -> group " << profiles[g].letter << ": " << assigned[g]
              << "\n";
  }
  std::cout << "hint error, parallelism: mean "
            << util::format_double(width_error.mean(), 2) << " slots (max "
            << util::format_double(width_error.max(), 0) << ")\n";
  std::cout << "hint error, depth:       mean "
            << util::format_double(depth_error.mean(), 2) << " levels (max "
            << util::format_double(depth_error.max(), 0) << ")\n";

  // Baseline for context: hint everyone with the global mean.
  util::RunningSummary global_width, global_depth;
  for (const auto& job : incoming) {
    global_width.add(graph::max_width(job.dag));
    global_depth.add(graph::critical_path_length(job.dag));
  }
  util::RunningSummary naive_width_error, naive_depth_error;
  for (const auto& job : incoming) {
    naive_width_error.add(std::abs(global_width.mean() - graph::max_width(job.dag)));
    naive_depth_error.add(
        std::abs(global_depth.mean() - graph::critical_path_length(job.dag)));
  }
  std::cout << "naive (global-mean) baseline: parallelism "
            << util::format_double(naive_width_error.mean(), 2) << ", depth "
            << util::format_double(naive_depth_error.mean(), 2) << "\n";

  // --- 4. feed the hints into the cluster simulator ----------------------
  // The classified incoming jobs now run on a contended simulated cluster;
  // the group-hint policy orders them by predicted group work.
  std::vector<int> incoming_labels;
  incoming_labels.reserve(incoming.size());
  for (const auto& job : incoming) {
    double best = -1.0;
    int best_group = 0;
    for (std::size_t g = 0; g < profiles.size(); ++g) {
      const double s = kernel::wl_subtree_similarity(
          job.to_labeled(), profiles[g].medoid.to_labeled());
      if (s > best) {
        best = s;
        best_group = static_cast<int>(g);
      }
    }
    incoming_labels.push_back(best_group);
  }
  auto sim_jobs = sched::jobs_from_dags(incoming, /*inter_arrival=*/0.5);
  sched::attach_hints(sim_jobs, incoming_labels);
  const auto sim_profiles = sched::profiles_from_groups(
      sample, clustering.labels, static_cast<int>(clustering.groups.size()));

  sched::SimulatorConfig sim_cfg;
  sim_cfg.machines = 2;
  const sched::Simulator simulator(sim_cfg);
  const sched::FifoPolicy fifo;
  const sched::GroupHintPolicy hint_policy;
  const auto fifo_run = simulator.run(sim_jobs, fifo, sim_profiles);
  const auto hint_run = simulator.run(sim_jobs, hint_policy, sim_profiles);
  std::cout << "\nsimulated contended cluster (" << sim_cfg.machines
            << " machines):\n";
  std::cout << "  fifo       mean JCT " << util::format_double(fifo_run.mean_jct, 1)
            << "s, makespan " << util::format_double(fifo_run.makespan, 0)
            << "s\n";
  std::cout << "  group-hint mean JCT " << util::format_double(hint_run.mean_jct, 1)
            << "s, makespan " << util::format_double(hint_run.makespan, 0)
            << "s\n";
  return 0;
}

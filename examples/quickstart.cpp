// Quickstart: decode Alibaba-style task names into a job DAG, compute the
// paper's structural features, and compare two jobs with the WL kernel.
//
//   ./quickstart
//
// This is the 60-second tour of the public API; see characterize_trace.cpp
// for the full pipeline.

#include <iostream>

#include "core/job_dag.hpp"
#include "graph/algorithms.hpp"
#include "graph/dot.hpp"
#include "graph/patterns.hpp"
#include "kernel/wl.hpp"

using namespace cwgl;

namespace {

trace::TaskRecord task(std::string name) {
  trace::TaskRecord t;
  t.task_name = std::move(name);
  t.job_name = "j_quickstart";
  t.instance_num = 4;
  t.status = trace::Status::Terminated;
  t.start_time = 100;
  t.end_time = 200;
  t.plan_cpu = 100.0;
  t.plan_mem = 0.5;
  return t;
}

core::JobDag build(const std::vector<std::string>& names, std::string job) {
  std::vector<trace::TaskRecord> records;
  for (const auto& n : names) {
    auto r = task(n);
    r.job_name = job;
    records.push_back(std::move(r));
  }
  auto dag = core::build_job_dag(job, records);
  if (!dag) throw std::runtime_error("failed to build " + job);
  return *dag;
}

}  // namespace

int main() {
  // The paper's running example (job 1001388, Fig. 8a): task names encode
  // the dependency DAG — R5_4_3_2_1 waits for tasks 4, 3, 2 and 1.
  const core::JobDag job =
      build({"M1", "M3", "R2_1", "R4_3", "R5_4_3_2_1"}, "j_1001388");

  std::cout << "job " << job.job_name << ": " << job.size() << " tasks, "
            << job.dag.num_edges() << " dependencies\n";
  std::cout << "critical path (vertices): "
            << graph::critical_path_length(job.dag) << "\n";
  std::cout << "maximum width:            " << graph::max_width(job.dag) << "\n";
  std::cout << "shape pattern:            "
            << graph::to_string(graph::classify_shape(job.dag)) << "\n\n";

  // Node conflation (Section IV-C): interchangeable siblings merge.
  const core::JobDag merged = core::conflate_job(job);
  std::cout << "after conflation: " << merged.size() << " tasks\n\n";

  // WL-kernel similarity (Section V-D): compare against a straight chain.
  const core::JobDag chain = build({"M1", "R2_1", "R3_2", "R4_3"}, "j_chain");
  const double self = kernel::wl_subtree_similarity(job.to_labeled(),
                                                    job.to_labeled());
  const double cross = kernel::wl_subtree_similarity(job.to_labeled(),
                                                     chain.to_labeled());
  std::cout << "WL similarity(job, job)   = " << self << "\n";
  std::cout << "WL similarity(job, chain) = " << cross << "\n\n";

  // GraphViz export for inspection: dot -Tpng job.dot -o job.png
  std::cout << graph::to_dot(job.dag, job.vertex_names(), job.job_name);
  return 0;
}

// Reproduces the paper's Section VI workflow in isolation: sample N jobs,
// build the WL similarity map, spectral-cluster into k groups, and write one
// GraphViz file per group medoid (the Fig. 8 representatives).
//
//   ./cluster_jobs [num_jobs_in_trace] [sample_size] [k] [out_dir]
//
// Render the medoids with: for f in group_*.dot; do dot -Tpng $f -o $f.png; done

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "core/pipeline.hpp"
#include "core/report_text.hpp"
#include "graph/dot.hpp"
#include "trace/generator.hpp"

using namespace cwgl;

int main(int argc, char** argv) {
  const std::size_t num_jobs = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  const std::size_t sample_size = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 100;
  const int k = argc > 3 ? std::atoi(argv[3]) : 5;
  const std::filesystem::path out_dir = argc > 4 ? argv[4] : ".";

  trace::GeneratorConfig gen_cfg;
  gen_cfg.seed = 42;
  gen_cfg.num_jobs = num_jobs;
  gen_cfg.emit_instances = false;
  const trace::Trace data = trace::TraceGenerator(gen_cfg).generate();

  core::PipelineConfig cfg;
  cfg.sample_size = sample_size;
  cfg.clustering.clusters = k;
  const core::CharacterizationPipeline pipeline(cfg);

  const auto sample = pipeline.build_sample(data);
  std::cout << "experiment set: " << sample.size() << " jobs\n";

  util::ThreadPool pool;
  const auto similarity = core::SimilarityAnalysis::compute(sample, {}, &pool);
  const auto clustering =
      core::ClusteringAnalysis::compute(similarity.gram, sample, cfg.clustering);

  core::print_clustering_analysis(std::cout, clustering);

  std::filesystem::create_directories(out_dir);
  for (const auto& group : clustering.groups) {
    if (group.population == 0) continue;
    const core::JobDag& medoid = sample[group.medoid];
    const auto path =
        out_dir / ("group_" + std::string(1, group.letter()) + ".dot");
    std::ofstream out(path);
    out << graph::to_dot(medoid.dag, medoid.vertex_names(),
                         "group " + std::string(1, group.letter()) + " — " +
                             medoid.job_name);
    std::cout << "wrote representative of group " << group.letter() << " ("
              << medoid.job_name << ", " << medoid.size() << " tasks) to "
              << path.string() << "\n";
  }
  return 0;
}

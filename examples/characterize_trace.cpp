// Full reproduction pipeline: synthesize an Alibaba-v2018-style trace (or
// load one from disk), then run every analysis the paper reports and print
// each figure's data series.
//
//   ./characterize_trace [trace_dir] [num_jobs] [sample_size]
//
// With no arguments a 20k-job synthetic trace is generated in memory. Pass a
// directory containing batch_task.csv (e.g. written by generate_trace) to
// analyze it instead.

#include <cstdlib>
#include <iostream>

#include "core/pipeline.hpp"
#include "core/report_text.hpp"
#include "core/topology_census.hpp"
#include "trace/generator.hpp"
#include "trace/io.hpp"
#include "util/timer.hpp"

using namespace cwgl;

int main(int argc, char** argv) {
  std::size_t num_jobs = 20000;
  std::size_t sample_size = 100;
  trace::Trace data;

  util::WallTimer timer;
  if (argc > 1 && argv[1][0] != '-' && !std::isdigit(argv[1][0])) {
    std::size_t skipped = 0;
    data = trace::read_trace(argv[1], &skipped);
    std::cout << "loaded " << data.tasks.size() << " task rows from " << argv[1]
              << " (" << skipped << " malformed rows skipped) in "
              << timer.millis() << " ms\n\n";
  } else {
    if (argc > 1) num_jobs = std::strtoull(argv[1], nullptr, 10);
    if (argc > 2) sample_size = std::strtoull(argv[2], nullptr, 10);
    trace::GeneratorConfig cfg;
    cfg.seed = 42;
    cfg.num_jobs = num_jobs;
    cfg.emit_instances = false;
    data = trace::TraceGenerator(cfg).generate();
    std::cout << "generated " << data.tasks.size() << " task rows ("
              << num_jobs << " jobs) in " << timer.millis() << " ms\n\n";
  }

  core::PipelineConfig cfg;
  cfg.sample_size = sample_size;
  cfg.clustering.clusters = 5;
  const core::CharacterizationPipeline pipeline(cfg);

  util::ThreadPool pool;
  timer.reset();
  const core::PipelineResult result = pipeline.run(data, &pool);
  std::cout << "pipeline completed in " << timer.millis() << " ms\n\n";

  core::print_trace_census(std::cout, result.census);
  std::cout << "\n";
  core::print_conflation_report(std::cout, result.conflation);
  std::cout << "\n";
  core::print_structural_report(std::cout, result.structure_before,
                                "Fig 4: job features before node conflation");
  std::cout << "\n";
  core::print_structural_report(std::cout, result.structure_after,
                                "Fig 5: job features after node conflation");
  std::cout << "\n";
  core::print_task_type_report(std::cout, result.task_types);
  std::cout << "\n";
  core::print_pattern_census(std::cout, result.patterns);
  std::cout << "\n";
  core::print_similarity_summary(std::cout, result.similarity.stats(result.sample));
  std::cout << "\n";
  core::print_clustering_analysis(std::cout, result.clustering);

  const auto topo = core::TopologyCensus::compute(result.sample);
  std::cout << "\nrecurring topologies in the sample: "
            << topo.distinct_topologies << " distinct among " << topo.total_jobs
            << " jobs (" << 100.0 * topo.recurring_fraction
            << "% recur)\n";
  return 0;
}

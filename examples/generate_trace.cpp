// Writes a schema-exact synthetic Alibaba-v2018 trace to disk:
// <out_dir>/batch_task.csv and <out_dir>/batch_instance.csv.
//
//   ./generate_trace <out_dir> [num_jobs] [seed] [--no-instances]
//
// The output is row-compatible with tooling written for the real
// cluster-trace-v2018 batch files.

#include <cstdlib>
#include <cstring>
#include <iostream>

#include "trace/generator.hpp"
#include "trace/io.hpp"
#include "util/timer.hpp"

using namespace cwgl;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: generate_trace <out_dir> [num_jobs] [seed] [--no-instances]\n";
    return 2;
  }
  trace::GeneratorConfig cfg;
  cfg.num_jobs = 10000;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-instances") == 0) {
      cfg.emit_instances = false;
    } else if (i == 2) {
      cfg.num_jobs = std::strtoull(argv[i], nullptr, 10);
    } else if (i == 3) {
      cfg.seed = std::strtoull(argv[i], nullptr, 10);
    }
  }

  util::WallTimer timer;
  const trace::Trace data = trace::TraceGenerator(cfg).generate();
  trace::write_trace(data, argv[1]);
  std::cout << "wrote " << data.tasks.size() << " task rows and "
            << data.instances.size() << " instance rows to " << argv[1]
            << " in " << timer.millis() << " ms (seed " << cfg.seed << ")\n";
  return 0;
}

// Operating the paper's characterization over time: a scheduler that learned
// cluster profiles on yesterday's workload should re-learn when today's
// workload has drifted. This example simulates a week of "days" with a
// mid-week workload change and shows the drift monitor catching it.
//
//   ./drift_monitor [jobs_per_day]

#include <cstdlib>
#include <iostream>

#include "core/comparison.hpp"
#include "trace/generator.hpp"
#include "util/strings.hpp"

using namespace cwgl;

int main(int argc, char** argv) {
  const std::size_t jobs_per_day =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4000;

  trace::GeneratorConfig base;
  base.num_jobs = jobs_per_day;
  base.emit_instances = false;

  // Day 0 is the reference the profiles were learned on.
  base.seed = 100;
  const trace::Trace reference = trace::TraceGenerator(base).generate();

  std::cout << "day-over-day drift vs the learned reference (JS divergence; "
               "re-learn when headline drift exceeds ~0.05)\n\n";
  std::cout << util::pad_left("day", 5) << util::pad_left("size", 9)
            << util::pad_left("shape", 9) << util::pad_left("depth", 9)
            << util::pad_left("width", 9) << util::pad_left("types", 9)
            << util::pad_left("headline", 10) << "  verdict\n";

  for (int day = 1; day <= 7; ++day) {
    trace::GeneratorConfig today = base;
    today.seed = 100 + static_cast<std::uint64_t>(day);
    if (day >= 4) {
      // Mid-week workload change: a new pipeline framework rolls out —
      // fewer plain chains, far more join-heavy triangles, bigger jobs.
      today.shapes.chain = 0.15;
      today.shapes.inverted_triangle = 0.70;
      today.p_tiny = 0.05;
      today.size_geometric_p = 0.18;  // bigger jobs, too
    }
    const trace::Trace trace_today = trace::TraceGenerator(today).generate();
    const auto cmp = core::TraceComparison::compute(reference, trace_today);
    const bool drifted = cmp.max_divergence() > 0.05;
    std::cout << util::pad_left(std::to_string(day), 5)
              << util::pad_left(util::format_double(cmp.size_divergence, 4), 9)
              << util::pad_left(util::format_double(cmp.shape_divergence, 4), 9)
              << util::pad_left(util::format_double(cmp.depth_divergence, 4), 9)
              << util::pad_left(util::format_double(cmp.width_divergence, 4), 9)
              << util::pad_left(util::format_double(cmp.task_type_divergence, 4), 9)
              << util::pad_left(util::format_double(cmp.max_divergence(), 4), 10)
              << "  " << (drifted ? "DRIFT — re-learn cluster profiles" : "ok")
              << "\n";
  }
  return 0;
}

#include "kernel/base_kernels.hpp"

#include <gtest/gtest.h>

namespace cwgl::kernel {
namespace {

using graph::Digraph;
using graph::Edge;

LabeledGraph make(int n, std::vector<Edge> edges, std::vector<int> labels) {
  LabeledGraph g;
  g.graph = Digraph(n, edges);
  g.labels = std::move(labels);
  return g;
}

TEST(VertexHistogram, CountsMatchingLabels) {
  VertexHistogramFeaturizer f;
  const auto a = make(3, {}, {'M', 'M', 'R'});
  const auto b = make(2, {}, {'M', 'R'});
  // k = 2*1 (M) + 1*1 (R) = 3.
  EXPECT_DOUBLE_EQ(kernel_value(f, a, b), 3.0);
}

TEST(VertexHistogram, BlindToStructure) {
  VertexHistogramFeaturizer f;
  const auto chain = make(3, {{0, 1}, {1, 2}}, {'M', 'R', 'R'});
  const auto fan = make(3, {{0, 1}, {0, 2}}, {'M', 'R', 'R'});
  EXPECT_DOUBLE_EQ(normalized_kernel_value(f, chain, fan), 1.0);
}

TEST(VertexHistogram, DisjointLabelsGiveZero) {
  VertexHistogramFeaturizer f;
  const auto a = make(2, {}, {'M', 'M'});
  const auto b = make(2, {}, {'R', 'R'});
  EXPECT_DOUBLE_EQ(kernel_value(f, a, b), 0.0);
}

TEST(EdgeHistogram, CountsMatchingLabelPairs) {
  EdgeHistogramFeaturizer f;
  const auto a = make(3, {{0, 2}, {1, 2}}, {'M', 'M', 'R'});  // two M->R edges
  const auto b = make(2, {{0, 1}}, {'M', 'R'});               // one M->R edge
  EXPECT_DOUBLE_EQ(kernel_value(f, a, b), 2.0);
}

TEST(EdgeHistogram, DirectionMatters) {
  EdgeHistogramFeaturizer f;
  const auto fwd = make(2, {{0, 1}}, {'M', 'R'});
  const auto bwd = make(2, {{1, 0}}, {'M', 'R'});
  EXPECT_DOUBLE_EQ(kernel_value(f, fwd, bwd), 0.0);
}

TEST(EdgeHistogram, SeesLocalStructureOnly) {
  EdgeHistogramFeaturizer f;
  // Chain M->R->R and two disjoint edges M->R, R->R: identical edge-label
  // multisets, so the edge histogram cannot tell them apart.
  const auto chain = make(3, {{0, 1}, {1, 2}}, {'M', 'R', 'R'});
  const auto split = make(4, {{0, 1}, {2, 3}}, {'M', 'R', 'R', 'R'});
  EXPECT_DOUBLE_EQ(normalized_kernel_value(f, chain, split), 1.0);
}

TEST(ShortestPath, CountsLabeledDistancePairs) {
  ShortestPathFeaturizer f;
  const auto a = make(3, {{0, 1}, {1, 2}}, {'M', 'R', 'R'});
  // Pairs in a: (M,R,1), (M,R,2), (R,R,1).
  const auto b = make(2, {{0, 1}}, {'M', 'R'});
  // Pairs in b: (M,R,1). Match count = 1.
  EXPECT_DOUBLE_EQ(kernel_value(f, a, b), 1.0);
}

TEST(ShortestPath, SeparatesWhatEdgeHistogramCannot) {
  ShortestPathFeaturizer f;
  const auto chain = make(3, {{0, 1}, {1, 2}}, {'M', 'R', 'R'});
  const auto split = make(4, {{0, 1}, {2, 3}}, {'M', 'R', 'R', 'R'});
  EXPECT_LT(normalized_kernel_value(f, chain, split), 1.0);
}

TEST(ShortestPath, SelfSimilarityNormalizesToOne) {
  ShortestPathFeaturizer f;
  const auto a = make(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}}, {'M', 'R', 'R', 'R'});
  EXPECT_NEAR(normalized_kernel_value(f, a, a), 1.0, 1e-12);
}

TEST(ShortestPath, UnreachablePairsIgnored) {
  ShortestPathFeaturizer f;
  const auto two_islands = make(2, {}, {'M', 'R'});
  // No finite directed path between distinct vertices: empty feature vector.
  const auto v = f.featurize(two_islands);
  EXPECT_TRUE(v.items.empty());
}

TEST(AllBaseKernels, NamesAreDistinct) {
  VertexHistogramFeaturizer v;
  EdgeHistogramFeaturizer e;
  ShortestPathFeaturizer s;
  EXPECT_NE(v.name(), e.name());
  EXPECT_NE(e.name(), s.name());
  EXPECT_NE(v.name(), s.name());
}

}  // namespace
}  // namespace cwgl::kernel

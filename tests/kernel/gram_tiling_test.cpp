// Differential coverage for the tiled gram_from_features scheduler: the
// tiled fill (serial or pooled, any tile size) must reproduce a naive
// all-pairs reference exactly. Serial output is bitwise — tiling only
// reorders which independent dot runs when — and the pooled path is held to
// the same <= 1e-12 parity the PR 1 differential suite demands (in practice
// it is also exact: tiles write disjoint entries).

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "kernel/gram.hpp"
#include "kernel/wl.hpp"
#include "support/proptest.hpp"
#include "util/thread_pool.hpp"

namespace cwgl::kernel {
namespace {

/// Naive reference: every (i, j) via the scalar oracle dot, full-matrix
/// normalization with the pre-tiling guard semantics.
linalg::Matrix naive_gram(const std::vector<SparseVector>& features,
                          bool normalize) {
  const std::size_t n = features.size();
  linalg::Matrix gram(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      gram(i, j) = features[i].dot_scalar(features[j]);
    }
  }
  if (normalize) {
    std::vector<double> inv(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const double d = std::sqrt(gram(i, i));
      inv[i] = (d > 0.0 && std::isfinite(d)) ? 1.0 / d : 0.0;
    }
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) gram(i, j) *= inv[i] * inv[j];
    }
  }
  return gram;
}

std::vector<SparseVector> random_features(util::Xoshiro256StarStar& rng,
                                          std::size_t n) {
  WlSubtreeFeaturizer f;
  std::vector<SparseVector> features;
  features.reserve(n);
  for (const auto& g : proptest::random_corpus(rng, n, 2, 20)) {
    features.push_back(f.featurize(g));
  }
  return features;
}

TEST(GramTiling, SerialTiledMatchesNaiveBitwise) {
  proptest::run_cases(0x6A37117E, 5, [](util::Xoshiro256StarStar& rng) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(0, 70));
    const auto features = random_features(rng, n);
    GramOptions options;
    options.normalize = rng.bernoulli(0.5);
    // Tile sizes below, straddling, and above n all tile the same triangle.
    options.tile_rows = static_cast<std::size_t>(rng.uniform_int(1, 100));
    const auto tiled = gram_from_features(features, options, nullptr);
    const auto naive = naive_gram(features, options.normalize);
    ASSERT_EQ(tiled.rows(), n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        EXPECT_EQ(tiled(i, j), naive(i, j)) << i << "," << j;
      }
    }
  });
}

TEST(GramTiling, PooledMatchesSerialWithinDifferentialBound) {
  util::ThreadPool pool(4);
  proptest::run_cases(0x6A37117F, 4, [&](util::Xoshiro256StarStar& rng) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 90));
    const auto features = random_features(rng, n);
    GramOptions options;
    options.normalize = rng.bernoulli(0.5);
    options.tile_rows = static_cast<std::size_t>(rng.uniform_int(1, 48));
    const auto serial = gram_from_features(features, options, nullptr);
    const auto pooled = gram_from_features(features, options, &pool);
    EXPECT_LE(serial.max_abs_diff(pooled), 1e-12);
  });
}

TEST(GramTiling, TileSizeDoesNotChangeValues) {
  util::Xoshiro256StarStar rng(0x6A371180ULL);
  const auto features = random_features(rng, 60);
  util::ThreadPool pool(3);
  GramOptions base;
  base.tile_rows = 48;
  const auto reference = gram_from_features(features, base, nullptr);
  for (const std::size_t tile : {1u, 7u, 48u, 64u, 4096u}) {
    GramOptions options;
    options.tile_rows = tile;
    EXPECT_EQ(gram_from_features(features, options, nullptr)
                  .max_abs_diff(reference),
              0.0)
        << "tile=" << tile;
    EXPECT_LE(gram_from_features(features, options, &pool)
                  .max_abs_diff(reference),
              1e-12)
        << "pooled tile=" << tile;
  }
}

TEST(GramTiling, ZeroVectorRowsNormalizeToZero) {
  // A zero feature vector has a zero self-kernel; the lenient guard zeroes
  // its whole row/column instead of dividing by zero.
  std::vector<SparseVector> features(3);
  features[0].items = {{1, 2.0}};
  // features[1] stays empty.
  features[2].items = {{1, 1.0}, {4, 5.0}};
  const auto gram = gram_from_features(features, {}, nullptr);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_EQ(gram(1, j), 0.0);
    EXPECT_EQ(gram(j, 1), 0.0);
  }
  EXPECT_NEAR(gram(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(gram(2, 2), 1.0, 1e-12);
}

TEST(GramTiling, NonFiniteDiagonalIsGuarded) {
  // An overflowed feature (inf value) must not spray NaN across the matrix:
  // its inverse norm is treated as zero, like the zero-diagonal case.
  std::vector<SparseVector> features(2);
  features[0].items = {{0, std::numeric_limits<double>::infinity()}};
  features[1].items = {{0, 1.0}, {2, 3.0}};
  const auto gram = gram_from_features(features, {}, nullptr);
  EXPECT_EQ(gram(0, 0), 0.0);
  EXPECT_EQ(gram(0, 1), 0.0);
  EXPECT_EQ(gram(1, 0), 0.0);
  EXPECT_TRUE(std::isfinite(gram(1, 1)));
}

TEST(GramTiling, EmptyFeatureSet) {
  const auto gram = gram_from_features({}, {}, nullptr);
  EXPECT_EQ(gram.rows(), 0u);
  util::ThreadPool pool(2);
  EXPECT_EQ(gram_from_features({}, {}, &pool).rows(), 0u);
}

}  // namespace
}  // namespace cwgl::kernel

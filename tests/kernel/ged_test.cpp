#include "kernel/ged.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace cwgl::kernel {
namespace {

using graph::Digraph;
using graph::Edge;

LabeledGraph make(int n, std::vector<Edge> edges, std::vector<int> labels) {
  LabeledGraph g;
  g.graph = Digraph(n, edges);
  g.labels = std::move(labels);
  return g;
}

TEST(Ged, IdenticalGraphsCostZero) {
  const auto g = make(3, {{0, 1}, {1, 2}}, {'M', 'R', 'R'});
  EXPECT_DOUBLE_EQ(graph_edit_distance(g, g), 0.0);
}

TEST(Ged, IsomorphicGraphsCostZero) {
  const auto a = make(3, {{0, 2}, {1, 2}}, {'M', 'M', 'R'});
  const auto b = make(3, {{2, 0}, {1, 0}}, {'R', 'M', 'M'});
  EXPECT_DOUBLE_EQ(graph_edit_distance(a, b), 0.0);
}

TEST(Ged, SingleRelabelCostsOne) {
  const auto a = make(2, {{0, 1}}, {'M', 'R'});
  const auto b = make(2, {{0, 1}}, {'M', 'J'});
  EXPECT_DOUBLE_EQ(graph_edit_distance(a, b), 1.0);
}

TEST(Ged, NodeInsertionWithEdge) {
  const auto a = make(2, {{0, 1}}, {'M', 'R'});
  const auto b = make(3, {{0, 1}, {1, 2}}, {'M', 'R', 'R'});
  // Insert one vertex + one edge.
  EXPECT_DOUBLE_EQ(graph_edit_distance(a, b), 2.0);
}

TEST(Ged, SymmetricWithUniformCosts) {
  const auto a = make(3, {{0, 1}, {1, 2}}, {'M', 'R', 'R'});
  const auto b = make(4, {{0, 1}, {0, 2}, {1, 3}}, {'M', 'R', 'R', 'R'});
  EXPECT_DOUBLE_EQ(graph_edit_distance(a, b), graph_edit_distance(b, a));
}

TEST(Ged, EdgeRewiringOnly) {
  const auto chain = make(3, {{0, 1}, {1, 2}}, {'M', 'R', 'R'});
  const auto fan = make(3, {{0, 1}, {0, 2}}, {'M', 'R', 'R'});
  // Delete edge 1->2, insert edge 0->2: cost 2.
  EXPECT_DOUBLE_EQ(graph_edit_distance(chain, fan), 2.0);
}

TEST(Ged, EmptyVsGraphCostsFullConstruction) {
  const LabeledGraph empty;
  const auto g = make(3, {{0, 1}, {1, 2}}, {'M', 'R', 'R'});
  EXPECT_DOUBLE_EQ(graph_edit_distance(empty, g), 5.0);  // 3 nodes + 2 edges
  EXPECT_DOUBLE_EQ(graph_edit_distance(g, empty), 5.0);
}

TEST(Ged, CustomCostsRespected) {
  GedOptions opt;
  opt.node_substitution = 10.0;
  const auto a = make(1, {}, {'M'});
  const auto b = make(1, {}, {'R'});
  // Relabel (10) vs delete+insert (2): optimal takes the cheaper route.
  EXPECT_DOUBLE_EQ(graph_edit_distance(a, b, opt), 2.0);
}

TEST(Ged, TriangleInequalityOnSmallFamily) {
  util::Xoshiro256StarStar rng(7);
  std::vector<LabeledGraph> family;
  family.push_back(make(2, {{0, 1}}, {'M', 'R'}));
  family.push_back(make(3, {{0, 1}, {1, 2}}, {'M', 'R', 'R'}));
  family.push_back(make(3, {{0, 2}, {1, 2}}, {'M', 'M', 'R'}));
  family.push_back(make(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}}, {'M', 'R', 'R', 'R'}));
  for (const auto& a : family) {
    for (const auto& b : family) {
      for (const auto& c : family) {
        EXPECT_LE(graph_edit_distance(a, c),
                  graph_edit_distance(a, b) + graph_edit_distance(b, c) + 1e-9);
      }
    }
  }
}

TEST(Ged, ExpansionBudgetEnforced) {
  GedOptions opt;
  // Reaching a 9-assignment goal needs at least 9 expansions, so a budget of
  // 5 must always trip regardless of how well the heuristic guides.
  opt.max_expansions = 5;
  std::vector<Edge> e1, e2;
  std::vector<int> l1(9, 'M'), l2(9, 'R');
  for (int i = 0; i < 8; ++i) {
    e1.push_back({i, 8});
    e2.push_back({0, i + 1});
  }
  const auto a = make(9, e1, l1);
  const auto b = make(9, e2, l2);
  EXPECT_THROW(graph_edit_distance(a, b, opt), util::Error);
}

TEST(Ged, OversizedSecondGraphThrows) {
  LabeledGraph big;
  big.graph = Digraph(64, {});
  const auto small = make(1, {}, {'M'});
  EXPECT_THROW(graph_edit_distance(small, big), util::InvalidArgument);
}

TEST(GedSimilarity, OneForIdenticalDecaysWithEdits) {
  const auto a = make(3, {{0, 1}, {1, 2}}, {'M', 'R', 'R'});
  const auto b = make(3, {{0, 1}, {1, 2}}, {'M', 'R', 'J'});
  EXPECT_DOUBLE_EQ(ged_similarity(a, a), 1.0);
  const double s = ged_similarity(a, b);
  EXPECT_GT(s, 0.0);
  EXPECT_LT(s, 1.0);
}

}  // namespace
}  // namespace cwgl::kernel

#include "kernel/label_dict.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace cwgl::kernel {
namespace {

std::string key_of(int i) { return "sig-" + std::to_string(i); }

TEST(ShardedSignatureDictionary, SerialAssignsFirstSeenOrder) {
  // Single-threaded use must match the serial SignatureDictionary exactly:
  // ids are dense and in first-seen order.
  ShardedSignatureDictionary dict;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(dict.intern(key_of(i)), i);
  }
  EXPECT_EQ(dict.size(), 100u);
}

TEST(ShardedSignatureDictionary, RepeatLookupIsStable) {
  ShardedSignatureDictionary dict;
  const int a = dict.intern("alpha");
  const int b = dict.intern("beta");
  EXPECT_NE(a, b);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(dict.intern("alpha"), a);
    EXPECT_EQ(dict.intern("beta"), b);
  }
  EXPECT_EQ(dict.size(), 2u);
}

TEST(ShardedSignatureDictionary, EmbeddedNulBytesAreDistinctKeys) {
  // Signatures are raw little-endian byte strings, so NUL is a payload
  // byte, not a terminator.
  ShardedSignatureDictionary dict;
  const std::string with_nul("a\0b", 3);
  const std::string without_nul("ab", 2);
  EXPECT_NE(dict.intern(with_nul), dict.intern(without_nul));
}

TEST(ShardedSignatureDictionary, ConcurrentInternStormIsConsistent) {
  // 8 threads intern an overlapping key universe as fast as they can. The
  // dictionary must (a) never hand one key two ids, (b) never hand two keys
  // one id, and (c) keep the id space dense.
  constexpr int kThreads = 8;
  constexpr int kIters = 4000;
  constexpr int kUniverse = 257;

  ShardedSignatureDictionary dict;
  std::vector<std::vector<std::pair<int, int>>> seen(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&dict, &seen, t] {
      seen[t].reserve(kIters);
      for (int i = 0; i < kIters; ++i) {
        const int k = (i * (t + 1) + t) % kUniverse;
        seen[t].emplace_back(k, dict.intern(key_of(k)));
      }
    });
  }
  for (auto& th : threads) th.join();

  ASSERT_EQ(dict.size(), static_cast<std::size_t>(kUniverse));

  // (a) every thread's recorded id for a key matches the final mapping.
  std::vector<int> final_id(kUniverse);
  for (int k = 0; k < kUniverse; ++k) final_id[k] = dict.intern(key_of(k));
  for (int t = 0; t < kThreads; ++t) {
    for (const auto& [k, id] : seen[t]) {
      ASSERT_EQ(id, final_id[k]) << "thread " << t << " key " << k;
    }
  }

  // (b) + (c): ids are a permutation of [0, kUniverse).
  std::set<int> ids(final_id.begin(), final_id.end());
  EXPECT_EQ(ids.size(), static_cast<std::size_t>(kUniverse));
  EXPECT_EQ(*ids.begin(), 0);
  EXPECT_EQ(*ids.rbegin(), kUniverse - 1);
}

TEST(ShardedSignatureDictionary, ConcurrentDisjointKeysStayDense) {
  // Threads interning disjoint ranges still share one dense id space.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  ShardedSignatureDictionary dict;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&dict, t] {
      for (int i = 0; i < kPerThread; ++i) {
        dict.intern(key_of(t * kPerThread + i));
      }
    });
  }
  for (auto& th : threads) th.join();

  ASSERT_EQ(dict.size(), static_cast<std::size_t>(kThreads * kPerThread));
  std::set<int> ids;
  for (int k = 0; k < kThreads * kPerThread; ++k) {
    ids.insert(dict.intern(key_of(k)));
  }
  EXPECT_EQ(ids.size(), static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(*ids.rbegin(), kThreads * kPerThread - 1);
}

// The serving contract at dictionary level: find() is a pure read. It
// returns the interned id for known keys, nullopt for unknown ones, and —
// unlike intern() — NEVER inserts. serve::Classifier is built on this.
TEST(ShardedSignatureDictionary, FindReturnsInternedIdsWithoutInserting) {
  ShardedSignatureDictionary dict;
  const int a = dict.intern("alpha");
  const int b = dict.intern("beta");
  ASSERT_EQ(dict.size(), 2u);

  EXPECT_EQ(dict.find("alpha"), std::optional<int>(a));
  EXPECT_EQ(dict.find("beta"), std::optional<int>(b));
  EXPECT_EQ(dict.find("gamma"), std::nullopt);
  // The miss must not have interned "gamma" as a side effect.
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.find("gamma"), std::nullopt);
  EXPECT_EQ(dict.size(), 2u);
}

TEST(ShardedSignatureDictionary, FindIsSafeAgainstConcurrentInterning) {
  constexpr int kUniverse = 512;
  ShardedSignatureDictionary dict;
  for (int k = 0; k < kUniverse / 2; ++k) dict.intern(key_of(k));

  std::atomic<bool> ok{true};
  std::thread writer([&dict] {
    for (int k = kUniverse / 2; k < kUniverse; ++k) dict.intern(key_of(k));
  });
  std::thread reader([&dict, &ok] {
    for (int round = 0; round < 50; ++round) {
      for (int k = 0; k < kUniverse / 2; ++k) {
        const auto id = dict.find(key_of(k));
        if (!id.has_value()) ok = false;  // pre-interned keys never vanish
      }
      if (dict.find("never-interned").has_value()) ok = false;
    }
  });
  writer.join();
  reader.join();
  EXPECT_TRUE(ok.load());
  EXPECT_EQ(dict.size(), static_cast<std::size_t>(kUniverse));
}

}  // namespace
}  // namespace cwgl::kernel

// Differential + property harness for concurrent WL featurization: the
// parallel path (sharded dictionary, featurization fanned out on the pool)
// must produce Gram matrices indistinguishable from the serial path, and
// both must satisfy the kernel axioms on random job-DAG corpora.
//
// Why equality holds by construction: concurrent interning permutes the
// private feature ids, but kernels only ever compare ids for equality
// (sorted-merge dot products), so every kernel value is invariant under
// that permutation. With unit iteration weights the counts are small
// integers, whose products and sums are exact in double — serial and
// parallel matrices are then bitwise identical; with sqrt-scaled weights
// reassociation admits rounding at the 1e-12 scale.

#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "kernel/gram.hpp"
#include "kernel/wl.hpp"
#include "linalg/eigen.hpp"
#include "support/proptest.hpp"
#include "util/thread_pool.hpp"

namespace cwgl::kernel {
namespace {

TEST(WlParallelDifferential, UnweightedGramIsBitwiseEqualToSerial) {
  util::ThreadPool pool(4);
  proptest::run_cases(0xD1FF0001, 6, [&](util::Xoshiro256StarStar& rng) {
    const auto corpus = proptest::random_corpus(rng, 40);
    WlSubtreeFeaturizer serial_f, parallel_f;
    GramOptions unnormalized;
    unnormalized.normalize = false;
    const auto serial = gram_matrix(serial_f, corpus, unnormalized);
    const auto parallel = gram_matrix(parallel_f, corpus, unnormalized, &pool);
    // Integer-valued features: any summation order is exact, so the two
    // schedules agree bit for bit.
    EXPECT_EQ(serial.max_abs_diff(parallel), 0.0);
  });
}

TEST(WlParallelDifferential, NormalizedGramMatchesSerialWithin1e12) {
  util::ThreadPool pool(4);
  proptest::run_cases(0xD1FF0002, 6, [&](util::Xoshiro256StarStar& rng) {
    const auto corpus = proptest::random_corpus(rng, 40);
    WlSubtreeFeaturizer serial_f, parallel_f;
    const auto serial = gram_matrix(serial_f, corpus);
    const auto parallel = gram_matrix(parallel_f, corpus, {}, &pool);
    EXPECT_LE(serial.max_abs_diff(parallel), 1e-12);
  });
}

TEST(WlParallelDifferential, WeightedIterationsMatchSerialWithin1e12) {
  util::ThreadPool pool(4);
  proptest::run_cases(0xD1FF0003, 4, [&](util::Xoshiro256StarStar& rng) {
    WlConfig cfg;
    cfg.iterations = 3;
    cfg.iteration_weights = {1.0, 0.5, 0.25, 0.125};
    const auto corpus = proptest::random_corpus(rng, 30);
    WlSubtreeFeaturizer serial_f(cfg), parallel_f(cfg);
    const auto serial = gram_matrix(serial_f, corpus);
    const auto parallel = gram_matrix(parallel_f, corpus, {}, &pool);
    EXPECT_LE(serial.max_abs_diff(parallel), 1e-12);
  });
}

TEST(WlParallelDifferential, FineGrainScheduleStillMatches) {
  // Grain 1 maximizes interleaving of the concurrent interning — the
  // hardest schedule for determinism.
  util::ThreadPool pool(4);
  proptest::run_cases(0xD1FF0004, 4, [&](util::Xoshiro256StarStar& rng) {
    const auto corpus = proptest::random_corpus(rng, 25);
    WlSubtreeFeaturizer serial_f, parallel_f;
    GramOptions fine;
    fine.featurize_grain = 1;
    const auto serial = gram_matrix(serial_f, corpus);
    const auto parallel = gram_matrix(parallel_f, corpus, fine, &pool);
    EXPECT_LE(serial.max_abs_diff(parallel), 1e-12);
  });
}

TEST(WlParallelProperty, GramStaysPositiveSemidefinite) {
  util::ThreadPool pool(4);
  proptest::run_cases(0xD1FF0005, 4, [&](util::Xoshiro256StarStar& rng) {
    const auto corpus = proptest::random_corpus(rng, 16);
    WlSubtreeFeaturizer f;
    const auto gram = gram_matrix(f, corpus, {}, &pool);
    EXPECT_TRUE(gram.is_symmetric(1e-12));
    EXPECT_TRUE(linalg::is_positive_semidefinite(gram, 1e-7));
  });
}

TEST(WlParallelProperty, SelfSimilarityIsOneAfterNormalization) {
  util::ThreadPool pool(4);
  proptest::run_cases(0xD1FF0006, 6, [&](util::Xoshiro256StarStar& rng) {
    const auto corpus = proptest::random_corpus(rng, 24);
    WlSubtreeFeaturizer f;
    const auto gram = gram_matrix(f, corpus, {}, &pool);
    for (std::size_t i = 0; i < gram.rows(); ++i) {
      EXPECT_NEAR(gram(i, i), 1.0, 1e-12);
    }
  });
}

TEST(WlParallelProperty, VertexPermutationInvariance) {
  // An isomorphic copy must land on exactly the same feature multiset, so
  // the parallel Gram over {g, permuted(g)} pairs has unit off-diagonals.
  util::ThreadPool pool(4);
  proptest::run_cases(0xD1FF0007, 6, [&](util::Xoshiro256StarStar& rng) {
    std::vector<LabeledGraph> corpus;
    for (int i = 0; i < 10; ++i) {
      auto g = proptest::random_job_graph(rng, 2, 14);
      const auto perm = proptest::random_permutation(g.graph.num_vertices(), rng);
      corpus.push_back(proptest::permuted(g, perm));
      corpus.push_back(std::move(g));
    }
    WlSubtreeFeaturizer f;
    const auto gram = gram_matrix(f, corpus, {}, &pool);
    for (std::size_t p = 0; p < corpus.size(); p += 2) {
      EXPECT_NEAR(gram(p, p + 1), 1.0, 1e-12) << "pair " << p / 2;
    }
  });
}

TEST(WlParallelProperty, DictionarySizeIsScheduleInvariant) {
  // The SET of interned signatures is schedule-independent even though the
  // id order is not.
  util::ThreadPool pool(4);
  proptest::run_cases(0xD1FF0008, 4, [&](util::Xoshiro256StarStar& rng) {
    const auto corpus = proptest::random_corpus(rng, 32);
    WlSubtreeFeaturizer serial_f, parallel_f;
    GramOptions fine;
    fine.featurize_grain = 1;
    (void)gram_matrix(serial_f, corpus);
    (void)gram_matrix(parallel_f, corpus, fine, &pool);
    EXPECT_EQ(serial_f.dictionary_size(), parallel_f.dictionary_size());
  });
}

TEST(WlParallelProperty, ConcurrentFeaturizeOfSameGraphAgrees) {
  // Many threads featurizing the SAME graph through one featurizer must all
  // observe the same ids — the sharded dictionary can never hand the same
  // signature two ids.
  util::ThreadPool pool(4);
  util::Xoshiro256StarStar rng(0xD1FF0009);
  const auto g = proptest::random_job_graph(rng, 8, 14);
  WlSubtreeFeaturizer f;
  std::vector<std::future<SparseVector>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.submit([&f, &g] { return f.featurize(g); }));
  }
  const SparseVector reference = f.featurize(g);
  for (auto& fu : futures) {
    EXPECT_EQ(fu.get().items, reference.items);
  }
}

TEST(WlParallelDifferential, NullPoolAndSerialFeaturizerAgree) {
  // pool == nullptr must stay exactly the historical serial behavior.
  proptest::run_cases(0xD1FF000A, 3, [&](util::Xoshiro256StarStar& rng) {
    const auto corpus = proptest::random_corpus(rng, 20);
    WlSubtreeFeaturizer a, b;
    const auto first = gram_matrix(a, corpus);
    const auto second = gram_matrix(b, corpus, {}, nullptr);
    EXPECT_EQ(first.max_abs_diff(second), 0.0);
  });
}

}  // namespace
}  // namespace cwgl::kernel

// Property coverage for kernel_to_distance, which the clustering stage
// (silhouette, medoids) leans on but was previously only spot-checked on
// hand-built matrices: the induced feature-space metric must be
// non-negative, symmetric, zero on the diagonal, and satisfy the triangle
// inequality on Gram matrices of random job-DAG corpora.

#include <gtest/gtest.h>

#include "kernel/gram.hpp"
#include "kernel/wl.hpp"
#include "support/proptest.hpp"

namespace cwgl::kernel {
namespace {

linalg::Matrix random_distance_matrix(util::Xoshiro256StarStar& rng,
                                      std::size_t corpus_size,
                                      bool normalize) {
  const auto corpus = proptest::random_corpus(rng, corpus_size);
  WlSubtreeFeaturizer f;
  GramOptions options;
  options.normalize = normalize;
  return kernel_to_distance(gram_matrix(f, corpus, options));
}

TEST(KernelDistanceProperty, NonNegativeSymmetricZeroDiagonal) {
  proptest::run_cases(0xD157A001, 6, [](util::Xoshiro256StarStar& rng) {
    const bool normalize = rng.bernoulli(0.5);
    const auto dist = random_distance_matrix(rng, 18, normalize);
    for (std::size_t i = 0; i < dist.rows(); ++i) {
      EXPECT_NEAR(dist(i, i), 0.0, 1e-9);
      for (std::size_t j = 0; j < dist.cols(); ++j) {
        EXPECT_GE(dist(i, j), 0.0);
        EXPECT_NEAR(dist(i, j), dist(j, i), 1e-12);
      }
    }
  });
}

TEST(KernelDistanceProperty, TriangleInequalityOnRandomCorpora) {
  // d is the Euclidean metric of the WL feature space, so the triangle
  // inequality must hold for every vertex triple (up to fp slack).
  proptest::run_cases(0xD157A002, 5, [](util::Xoshiro256StarStar& rng) {
    const bool normalize = rng.bernoulli(0.5);
    const auto dist = random_distance_matrix(rng, 15, normalize);
    const std::size_t n = dist.rows();
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t k = 0; k < n; ++k) {
          EXPECT_LE(dist(i, k), dist(i, j) + dist(j, k) + 1e-9)
              << "triple (" << i << "," << j << "," << k << ")";
        }
      }
    }
  });
}

TEST(KernelDistanceProperty, IdenticalGraphsAreAtDistanceZero) {
  proptest::run_cases(0xD157A003, 6, [](util::Xoshiro256StarStar& rng) {
    auto corpus = proptest::random_corpus(rng, 6);
    corpus.push_back(corpus.front());  // exact duplicate of graph 0
    WlSubtreeFeaturizer f;
    const auto dist = kernel_to_distance(gram_matrix(f, corpus));
    EXPECT_NEAR(dist(0, corpus.size() - 1), 0.0, 1e-6);
  });
}

}  // namespace
}  // namespace cwgl::kernel

#include "kernel/embedding.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "kernel/gram.hpp"
#include "trace/generator.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace cwgl::kernel {
namespace {

using graph::Digraph;
using graph::Edge;

LabeledGraph chain(int n) {
  std::vector<Edge> edges;
  for (int i = 0; i + 1 < n; ++i) edges.push_back({i, i + 1});
  LabeledGraph g;
  g.graph = Digraph(n, edges);
  g.labels.assign(n, 'R');
  if (n > 0) g.labels[0] = 'M';
  return g;
}

std::vector<LabeledGraph> random_corpus(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256StarStar rng(seed);
  static constexpr graph::ShapePattern kShapes[] = {
      graph::ShapePattern::StraightChain, graph::ShapePattern::InvertedTriangle,
      graph::ShapePattern::Diamond, graph::ShapePattern::Trapezium};
  std::vector<LabeledGraph> corpus;
  for (std::size_t i = 0; i < n; ++i) {
    LabeledGraph g;
    const int size = rng.uniform_int(2, 14);
    g.graph = trace::synthesize_shape(kShapes[i % 4], size, rng);
    g.labels.resize(size);
    for (int v = 0; v < size; ++v) {
      g.labels[v] = g.graph.in_degree(v) == 0 ? 'M' : 'R';
    }
    corpus.push_back(std::move(g));
  }
  return corpus;
}

TEST(WlEmbed, DeterministicForConfig) {
  const auto g = chain(5);
  EXPECT_EQ(wl_embed(g), wl_embed(g));
}

TEST(WlEmbed, DimensionsRespected) {
  EmbeddingConfig cfg;
  cfg.dimensions = 33;
  EXPECT_EQ(wl_embed(chain(4), cfg).size(), 33u);
}

TEST(WlEmbed, NormalizedRowsAreUnitLength) {
  const auto e = wl_embed(chain(6));
  double norm = 0.0;
  for (double x : e) norm += x * x;
  EXPECT_NEAR(norm, 1.0, 1e-12);
}

TEST(WlEmbed, CorpusIndependence) {
  // Embedding a graph alone equals embedding it inside a corpus — the
  // property the dictionary-based featurizer cannot offer.
  const auto corpus = random_corpus(6, 3);
  const auto matrix = wl_embedding_matrix(corpus);
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const auto solo = wl_embed(corpus[i]);
    for (std::size_t c = 0; c < solo.size(); ++c) {
      EXPECT_DOUBLE_EQ(matrix(i, c), solo[c]);
    }
  }
}

TEST(WlEmbed, IsomorphicGraphsEmbedIdentically) {
  const auto g = chain(5);
  // Relabel vertices 4,3,2,1,0 (reverse) with reversed edges direction kept.
  std::vector<Edge> edges;
  for (const Edge& e : g.graph.edges()) {
    edges.push_back({4 - e.from, 4 - e.to});
  }
  LabeledGraph h;
  h.graph = Digraph(5, edges);
  h.labels = {'R', 'R', 'R', 'R', 'M'};
  const auto ea = wl_embed(g);
  const auto eb = wl_embed(h);
  for (std::size_t c = 0; c < ea.size(); ++c) EXPECT_DOUBLE_EQ(ea[c], eb[c]);
}

TEST(WlEmbed, SeedChangesEmbedding) {
  EmbeddingConfig a, b;
  b.seed = a.seed + 1;
  EXPECT_NE(wl_embed(chain(5), a), wl_embed(chain(5), b));
}

TEST(WlEmbed, ApproximatesExactKernel) {
  // Cosine of hashed embeddings must correlate strongly with the exact
  // normalized WL kernel across a mixed corpus.
  const auto corpus = random_corpus(20, 11);
  EmbeddingConfig cfg;
  cfg.dimensions = 512;
  const auto embeddings = wl_embedding_matrix(corpus, cfg);

  WlSubtreeFeaturizer featurizer;
  const auto exact = gram_matrix(featurizer, corpus);

  std::vector<double> exact_vals, approx_vals;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    for (std::size_t j = i + 1; j < corpus.size(); ++j) {
      exact_vals.push_back(exact(i, j));
      double dot = 0.0;
      for (std::size_t c = 0; c < embeddings.cols(); ++c) {
        dot += embeddings(i, c) * embeddings(j, c);
      }
      approx_vals.push_back(dot);
    }
  }
  EXPECT_GT(util::pearson(exact_vals, approx_vals), 0.9);
}

TEST(WlEmbed, EmptyGraphEmbedsToZero) {
  LabeledGraph empty;
  const auto e = wl_embed(empty);
  for (double x : e) EXPECT_EQ(x, 0.0);
}

TEST(WlEmbed, InvalidDimensionsThrow) {
  EmbeddingConfig cfg;
  cfg.dimensions = 0;
  EXPECT_THROW(wl_embed(chain(3), cfg), util::InvalidArgument);
}

TEST(WlEmbeddingMatrix, ShapeMatchesCorpus) {
  const auto corpus = random_corpus(7, 5);
  EmbeddingConfig cfg;
  cfg.dimensions = 64;
  const auto m = wl_embedding_matrix(corpus, cfg);
  EXPECT_EQ(m.rows(), 7u);
  EXPECT_EQ(m.cols(), 64u);
}

}  // namespace
}  // namespace cwgl::kernel

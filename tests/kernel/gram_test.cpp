#include "kernel/gram.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "kernel/wl.hpp"
#include "linalg/eigen.hpp"
#include "trace/generator.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace cwgl::kernel {
namespace {

std::vector<LabeledGraph> random_corpus(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256StarStar rng(seed);
  static constexpr graph::ShapePattern kShapes[] = {
      graph::ShapePattern::StraightChain, graph::ShapePattern::InvertedTriangle,
      graph::ShapePattern::Diamond, graph::ShapePattern::Trapezium};
  std::vector<LabeledGraph> corpus;
  for (std::size_t i = 0; i < n; ++i) {
    LabeledGraph g;
    const int size = rng.uniform_int(2, 12);
    g.graph = trace::synthesize_shape(kShapes[i % 4], size, rng);
    g.labels.resize(size);
    for (int v = 0; v < size; ++v) {
      g.labels[v] = g.graph.in_degree(v) == 0 ? 'M' : 'R';
    }
    corpus.push_back(std::move(g));
  }
  return corpus;
}

TEST(GramMatrix, NormalizedDiagonalIsOne) {
  const auto corpus = random_corpus(12, 3);
  WlSubtreeFeaturizer f;
  const auto gram = gram_matrix(f, corpus);
  for (std::size_t i = 0; i < gram.rows(); ++i) {
    EXPECT_NEAR(gram(i, i), 1.0, 1e-12);
  }
}

TEST(GramMatrix, SymmetricAndBounded) {
  const auto corpus = random_corpus(12, 5);
  WlSubtreeFeaturizer f;
  const auto gram = gram_matrix(f, corpus);
  EXPECT_TRUE(gram.is_symmetric(1e-12));
  for (std::size_t i = 0; i < gram.rows(); ++i) {
    for (std::size_t j = 0; j < gram.cols(); ++j) {
      EXPECT_GE(gram(i, j), 0.0);
      EXPECT_LE(gram(i, j), 1.0 + 1e-12);
    }
  }
}

TEST(GramMatrix, PositiveSemidefinite) {
  // The defining property of a kernel: its Gram matrix is PSD.
  const auto corpus = random_corpus(10, 7);
  WlSubtreeFeaturizer f;
  const auto gram = gram_matrix(f, corpus);
  EXPECT_TRUE(linalg::is_positive_semidefinite(gram, 1e-7));
}

TEST(GramMatrix, UnnormalizedMatchesPairwiseKernel) {
  const auto corpus = random_corpus(6, 9);
  WlSubtreeFeaturizer f_for_gram;
  GramOptions options;
  options.normalize = false;
  const auto gram = gram_matrix(f_for_gram, corpus, options);
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    for (std::size_t j = 0; j < corpus.size(); ++j) {
      EXPECT_NEAR(gram(i, j), wl_subtree_kernel(corpus[i], corpus[j]), 1e-9)
          << i << "," << j;
    }
  }
}

TEST(GramMatrix, ParallelMatchesSequential) {
  const auto corpus = random_corpus(20, 11);
  util::ThreadPool pool(4);
  WlSubtreeFeaturizer f_seq, f_par;
  const auto seq = gram_matrix(f_seq, corpus);
  const auto par = gram_matrix(f_par, corpus, {}, &pool);
  EXPECT_LT(seq.max_abs_diff(par), 1e-14);
}

TEST(GramMatrix, EmptyCorpus) {
  WlSubtreeFeaturizer f;
  const auto gram = gram_matrix(f, {});
  EXPECT_EQ(gram.rows(), 0u);
}

TEST(GramMatrix, IdenticalGraphsScoreOneEverywhere) {
  auto corpus = random_corpus(1, 13);
  corpus.push_back(corpus.front());
  corpus.push_back(corpus.front());
  WlSubtreeFeaturizer f;
  const auto gram = gram_matrix(f, corpus);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(gram(i, j), 1.0, 1e-12);
    }
  }
}

TEST(KernelToDistance, ZeroOnIdenticalOneishOnDisjoint) {
  linalg::Matrix gram = linalg::Matrix::from_rows({{1.0, 1.0, 0.0},
                                                   {1.0, 1.0, 0.0},
                                                   {0.0, 0.0, 1.0}});
  const auto dist = kernel_to_distance(gram);
  EXPECT_NEAR(dist(0, 1), 0.0, 1e-12);
  EXPECT_NEAR(dist(0, 2), std::sqrt(2.0), 1e-12);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(dist(i, i), 0.0, 1e-12);
}

TEST(KernelToDistance, TriangleInequalityOnRealGram) {
  const auto corpus = random_corpus(10, 17);
  WlSubtreeFeaturizer f;
  const auto gram = gram_matrix(f, corpus);
  const auto dist = kernel_to_distance(gram);
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t j = 0; j < 10; ++j) {
      for (std::size_t k = 0; k < 10; ++k) {
        EXPECT_LE(dist(i, k), dist(i, j) + dist(j, k) + 1e-9);
      }
    }
  }
}

TEST(KernelToDistance, NonSquareThrows) {
  EXPECT_THROW(kernel_to_distance(linalg::Matrix(2, 3)), util::InvalidArgument);
}

}  // namespace
}  // namespace cwgl::kernel

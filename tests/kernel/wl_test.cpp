#include "kernel/wl.hpp"

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "trace/generator.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace cwgl::kernel {
namespace {

using graph::Digraph;
using graph::Edge;

LabeledGraph chain(int n, int label = 'R') {
  std::vector<Edge> edges;
  for (int i = 0; i + 1 < n; ++i) edges.push_back({i, i + 1});
  LabeledGraph g;
  g.graph = Digraph(n, edges);
  g.labels.assign(n, label);
  if (n > 0) g.labels[0] = 'M';
  return g;
}

LabeledGraph map_reduce(int maps) {
  std::vector<Edge> edges;
  for (int i = 0; i < maps; ++i) edges.push_back({i, maps});
  LabeledGraph g;
  g.graph = Digraph(maps + 1, edges);
  g.labels.assign(maps, 'M');
  g.labels.push_back('R');
  return g;
}

LabeledGraph permuted(const LabeledGraph& g, const std::vector<int>& perm) {
  std::vector<Edge> edges;
  for (const Edge& e : g.graph.edges()) {
    edges.push_back({perm[e.from], perm[e.to]});
  }
  LabeledGraph out;
  out.graph = Digraph(g.graph.num_vertices(), edges);
  out.labels.resize(g.labels.size());
  for (std::size_t v = 0; v < g.labels.size(); ++v) {
    out.labels[perm[v]] = g.labels[v];
  }
  return out;
}

TEST(WlKernel, SelfSimilarityIsOneAfterNormalization) {
  const auto g = map_reduce(3);
  EXPECT_NEAR(wl_subtree_similarity(g, g), 1.0, 1e-12);
}

TEST(WlKernel, IsomorphicGraphsScoreOne) {
  const auto g = map_reduce(4);
  util::Xoshiro256StarStar rng(31);
  std::vector<int> perm{0, 1, 2, 3, 4};
  for (int trial = 0; trial < 10; ++trial) {
    rng.shuffle(perm);
    const auto h = permuted(g, perm);
    EXPECT_NEAR(wl_subtree_similarity(g, h), 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(wl_subtree_kernel(g, g), wl_subtree_kernel(h, h));
  }
}

TEST(WlKernel, Symmetric) {
  const auto a = chain(5);
  const auto b = map_reduce(4);
  EXPECT_DOUBLE_EQ(wl_subtree_kernel(a, b), wl_subtree_kernel(b, a));
}

TEST(WlKernel, SimilarityInUnitInterval) {
  const std::vector<LabeledGraph> graphs{chain(2), chain(7), map_reduce(2),
                                         map_reduce(6)};
  for (const auto& a : graphs) {
    for (const auto& b : graphs) {
      const double s = wl_subtree_similarity(a, b);
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, 1.0 + 1e-12);
    }
  }
}

TEST(WlKernel, DistinguishesChainFromFanIn) {
  const auto a = chain(4);
  const auto b = map_reduce(3);
  EXPECT_LT(wl_subtree_similarity(a, b), 0.9);
}

TEST(WlKernel, SimilarShapesScoreHigherThanDissimilar) {
  const auto chain_a = chain(5);
  const auto chain_b = chain(6);
  const auto fan = map_reduce(5);
  EXPECT_GT(wl_subtree_similarity(chain_a, chain_b),
            wl_subtree_similarity(chain_a, fan));
}

TEST(WlKernel, IterationZeroIsLabelHistogram) {
  // With h=0 only raw label counts matter, so chain(4) vs a reordered
  // chain(4) and even a fan with identical label multiset all tie.
  WlConfig cfg;
  cfg.iterations = 0;
  LabeledGraph fan = map_reduce(3);  // labels M,M,M,R
  LabeledGraph ch = chain(4);        // labels M,R,R,R
  fan.labels = {'M', 'R', 'R', 'R'};  // force same multiset as the chain
  EXPECT_NEAR(wl_subtree_similarity(fan, ch, cfg), 1.0, 1e-12);
  // One refinement iteration separates them.
  cfg.iterations = 1;
  EXPECT_LT(wl_subtree_similarity(fan, ch, cfg), 1.0);
}

TEST(WlKernel, MoreIterationsNeverIncreaseSimilarity) {
  // Deeper refinement only splits colors further, so normalized similarity
  // of non-isomorphic graphs is non-increasing in h (up to fp noise).
  const auto a = chain(6);
  const auto b = map_reduce(5);
  double prev = 1.0;
  for (int h = 0; h <= 5; ++h) {
    WlConfig cfg;
    cfg.iterations = h;
    const double s = wl_subtree_similarity(a, b, cfg);
    EXPECT_LE(s, prev + 1e-9) << "h=" << h;
    prev = s;
  }
}

TEST(WlKernel, DirectedDistinguishesOrientation) {
  // Fan-out vs fan-in with uniform labels: undirected pooling cannot
  // separate them, the directed variant can.
  LabeledGraph out_star, in_star;
  out_star.graph = Digraph(3, std::vector<Edge>{{0, 1}, {0, 2}});
  in_star.graph = Digraph(3, std::vector<Edge>{{1, 0}, {2, 0}});
  WlConfig directed;
  directed.directed = true;
  WlConfig undirected;
  undirected.directed = false;
  EXPECT_LT(wl_subtree_similarity(out_star, in_star, directed), 1.0 - 1e-9);
  EXPECT_NEAR(wl_subtree_similarity(out_star, in_star, undirected), 1.0, 1e-12);
}

TEST(WlKernel, UnlabeledGraphsSupported) {
  LabeledGraph a, b;
  a.graph = Digraph(3, std::vector<Edge>{{0, 1}, {1, 2}});
  b.graph = Digraph(3, std::vector<Edge>{{0, 1}, {1, 2}});
  EXPECT_NEAR(wl_subtree_similarity(a, b), 1.0, 1e-12);
}

TEST(WlKernel, EmptyGraphHasZeroNormalizedSimilarity) {
  LabeledGraph empty;
  const auto g = chain(3);
  EXPECT_EQ(wl_subtree_similarity(empty, g), 0.0);
  EXPECT_EQ(wl_subtree_kernel(empty, g), 0.0);
}

TEST(WlFeaturizer, SharedDictionaryAlignsFeatures) {
  WlSubtreeFeaturizer f;
  const auto a = chain(4);
  const auto v1 = f.featurize(a);
  const auto v2 = f.featurize(a);
  EXPECT_EQ(v1.items, v2.items);
}

TEST(WlFeaturizer, FeatureCountMatchesIterationsTimesVertices) {
  WlConfig cfg;
  cfg.iterations = 3;
  WlSubtreeFeaturizer f(cfg);
  const auto g = chain(5);
  const auto v = f.featurize(g);
  double total = 0.0;
  for (const auto& [id, count] : v.items) total += count;
  // Each vertex contributes one feature per iteration 0..h.
  EXPECT_DOUBLE_EQ(total, 5.0 * (cfg.iterations + 1));
}

TEST(WlKernel, IterationWeightsEmptyMatchesAllOnes) {
  const auto a = chain(5);
  const auto b = map_reduce(4);
  WlConfig weighted;
  weighted.iteration_weights = {1.0, 1.0, 1.0, 1.0};
  EXPECT_NEAR(wl_subtree_kernel(a, b, weighted), wl_subtree_kernel(a, b), 1e-9);
}

TEST(WlKernel, IterationWeightsScaleContributions) {
  const auto a = chain(4);
  // Only iteration 0 active == vertex-label histogram kernel.
  WlConfig zero_only;
  zero_only.iteration_weights = {1.0, 0.0, 0.0, 0.0};
  WlConfig h0;
  h0.iterations = 0;
  EXPECT_NEAR(wl_subtree_kernel(a, a, zero_only), wl_subtree_kernel(a, a, h0),
              1e-9);
  // Doubling every weight doubles the raw kernel.
  WlConfig doubled;
  doubled.iteration_weights = {2.0, 2.0, 2.0, 2.0};
  EXPECT_NEAR(wl_subtree_kernel(a, a, doubled), 2.0 * wl_subtree_kernel(a, a),
              1e-9);
}

TEST(WlKernel, IterationWeightsValidated) {
  const auto a = chain(3);
  WlConfig wrong_arity;
  wrong_arity.iteration_weights = {1.0, 1.0};  // needs iterations+1 == 4
  EXPECT_THROW(wl_subtree_kernel(a, a, wrong_arity), util::InvalidArgument);
  WlConfig negative;
  negative.iteration_weights = {1.0, -1.0, 1.0, 1.0};
  EXPECT_THROW(wl_subtree_kernel(a, a, negative), util::InvalidArgument);
}

TEST(WlFeaturizer, InvalidIterationWeightsRejectedAtConstruction) {
  // Regression: validation happens once, in the constructor — a malformed
  // config must fail before any graph is featurized, not on first use.
  WlConfig wrong_arity;
  wrong_arity.iteration_weights = {1.0, 1.0};  // needs iterations+1 == 4
  EXPECT_THROW(WlSubtreeFeaturizer{wrong_arity}, util::InvalidArgument);

  WlConfig negative;
  negative.iteration_weights = {1.0, -1.0, 1.0, 1.0};
  EXPECT_THROW(WlSubtreeFeaturizer{negative}, util::InvalidArgument);

  // A valid weighted config constructs and featurizes without throwing.
  WlConfig valid;
  valid.iteration_weights = {1.0, 0.5, 0.25, 0.125};
  WlSubtreeFeaturizer f(valid);
  EXPECT_NO_THROW(f.featurize(chain(4)));
}

TEST(WlKernel, IterationWeightsPreserveNormalizationAxioms) {
  const auto a = chain(5);
  const auto b = map_reduce(3);
  WlConfig decay;
  decay.iteration_weights = {1.0, 0.5, 0.25, 0.125};
  EXPECT_NEAR(wl_subtree_similarity(a, a, decay), 1.0, 1e-12);
  const double s = wl_subtree_similarity(a, b, decay);
  EXPECT_GE(s, 0.0);
  EXPECT_LE(s, 1.0 + 1e-12);
  // Emphasizing iteration 0 raises similarity toward the histogram tie.
  WlConfig flat;
  EXPECT_GT(s, wl_subtree_similarity(a, b, flat));
}

TEST(SparseVector, DotAndNorm) {
  SparseVector a{{{0, 1.0}, {2, 2.0}}};
  SparseVector b{{{1, 5.0}, {2, 3.0}}};
  EXPECT_DOUBLE_EQ(a.dot(b), 6.0);
  EXPECT_DOUBLE_EQ(a.norm() * a.norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.dot(SparseVector{}), 0.0);
}

/// Property sweep: on random trace-like shapes, the WL kernel stays
/// symmetric, normalized to [0,1], and exactly 1 on isomorphic copies.
class WlPropertyP : public ::testing::TestWithParam<int> {};

TEST_P(WlPropertyP, KernelAxiomsOnRandomShapes) {
  util::Xoshiro256StarStar rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<LabeledGraph> graphs;
  static constexpr graph::ShapePattern kShapes[] = {
      graph::ShapePattern::StraightChain, graph::ShapePattern::InvertedTriangle,
      graph::ShapePattern::Diamond, graph::ShapePattern::Trapezium};
  for (int i = 0; i < 8; ++i) {
    LabeledGraph g;
    const int n = rng.uniform_int(2, 14);
    g.graph = trace::synthesize_shape(kShapes[i % 4], n, rng);
    g.labels.resize(n);
    for (int v = 0; v < n; ++v) {
      g.labels[v] = g.graph.in_degree(v) == 0 ? 'M' : 'R';
    }
    graphs.push_back(std::move(g));
  }
  for (const auto& a : graphs) {
    EXPECT_NEAR(wl_subtree_similarity(a, a), 1.0, 1e-12);
    for (const auto& b : graphs) {
      const double ab = wl_subtree_similarity(a, b);
      const double ba = wl_subtree_similarity(b, a);
      EXPECT_NEAR(ab, ba, 1e-12);
      EXPECT_GE(ab, 0.0);
      EXPECT_LE(ab, 1.0 + 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WlPropertyP, ::testing::Range(1, 9));

}  // namespace
}  // namespace cwgl::kernel

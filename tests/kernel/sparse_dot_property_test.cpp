// Differential coverage for the SparseVector::dot fast path: the dispatching
// dot (scalar merge for balanced sizes, galloping intersection for skewed
// ones) must return the EXACT bits of the scalar two-pointer oracle on every
// input — both paths accumulate matched products in ascending-id order, so
// equality is bitwise, not approximate. Random corpora are drawn to hit
// every regime: empty, disjoint, identical, dense-overlap, and size skews
// far past the galloping threshold.

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "kernel/types.hpp"
#include "support/proptest.hpp"
#include "util/rng.hpp"

namespace cwgl::kernel {
namespace {

/// A sparse vector with `nnz` distinct ids drawn from [0, universe), sorted
/// ascending; small universes force dense overlap between vectors.
SparseVector random_sparse(util::Xoshiro256StarStar& rng, std::size_t nnz,
                           int universe) {
  std::unordered_set<int> ids;
  while (ids.size() < nnz && ids.size() < static_cast<std::size_t>(universe)) {
    ids.insert(rng.uniform_int(0, universe - 1));
  }
  SparseVector v;
  v.items.reserve(ids.size());
  for (const int id : ids) {
    // Mixed-sign, mixed-magnitude values so a wrong accumulation order
    // cannot hide behind monotone sums.
    const double value = (rng.bernoulli(0.5) ? 1.0 : -1.0) *
                         rng.uniform_real(0.001, 1000.0);
    v.items.emplace_back(id, value);
  }
  std::sort(v.items.begin(), v.items.end());
  return v;
}

/// Independent reference: accumulate matches in ascending-id order via a
/// fresh merge, written differently from both production paths.
double reference_dot(const SparseVector& a, const SparseVector& b) {
  double acc = 0.0;
  std::size_t ia = 0, ib = 0;
  while (ia < a.items.size() && ib < b.items.size()) {
    const int ka = a.items[ia].first;
    const int kb = b.items[ib].first;
    if (ka == kb) {
      acc += a.items[ia].second * b.items[ib].second;
      ++ia;
      ++ib;
    } else if (ka < kb) {
      ++ia;
    } else {
      ++ib;
    }
  }
  return acc;
}

TEST(SparseDotProperty, FastPathMatchesScalarOracleBitwise) {
  proptest::run_cases(0x5D07D071, 40, [](util::Xoshiro256StarStar& rng) {
    // Sizes span both merge and gallop regimes; universe spans sparse
    // (overlap rare) to dense (overlap near-total).
    const std::size_t na = static_cast<std::size_t>(rng.uniform_int(0, 400));
    const std::size_t nb = static_cast<std::size_t>(rng.uniform_int(0, 400));
    const int universe = rng.uniform_int(1, 600);
    const SparseVector a = random_sparse(rng, na, universe);
    const SparseVector b = random_sparse(rng, nb, universe);
    const double fast = a.dot(b);
    const double oracle = a.dot_scalar(b);
    EXPECT_EQ(fast, oracle);  // bitwise, not NEAR
    EXPECT_EQ(fast, reference_dot(a, b));
    EXPECT_EQ(a.dot(b), b.dot(a));  // IEEE products commute
  });
}

TEST(SparseDotProperty, SkewedSizesForceGallopingPath) {
  // nnz 1-4 against nnz 200+ is far past the dispatch ratio, so this pins
  // the galloping branch specifically (both operand orders).
  proptest::run_cases(0x5D07D072, 20, [](util::Xoshiro256StarStar& rng) {
    const SparseVector small =
        random_sparse(rng, static_cast<std::size_t>(rng.uniform_int(1, 4)), 500);
    const SparseVector big = random_sparse(
        rng, static_cast<std::size_t>(rng.uniform_int(200, 400)), 500);
    EXPECT_EQ(small.dot(big), small.dot_scalar(big));
    EXPECT_EQ(big.dot(small), big.dot_scalar(small));
    EXPECT_EQ(small.dot(big), big.dot(small));
  });
}

TEST(SparseDot, EmptyOperands) {
  const SparseVector empty;
  SparseVector v;
  v.items = {{1, 2.0}, {7, 3.0}};
  EXPECT_EQ(empty.dot(empty), 0.0);
  EXPECT_EQ(empty.dot(v), 0.0);
  EXPECT_EQ(v.dot(empty), 0.0);
}

TEST(SparseDot, DisjointIdRangesAreZero) {
  SparseVector lo, hi;
  for (int i = 0; i < 100; ++i) lo.items.emplace_back(i, 1.5);
  for (int i = 1000; i < 1003; ++i) hi.items.emplace_back(i, 2.5);
  // Skewed enough to gallop; every probe lands past the end.
  EXPECT_EQ(lo.dot(hi), 0.0);
  EXPECT_EQ(hi.dot(lo), 0.0);
  EXPECT_EQ(lo.dot(hi), lo.dot_scalar(hi));
}

TEST(SparseDot, InterleavedDisjointIdsAreZero) {
  SparseVector even, odd;
  for (int i = 0; i < 200; i += 2) even.items.emplace_back(i, 1.0);
  for (int i = 1; i < 16; i += 2) odd.items.emplace_back(i, 1.0);
  EXPECT_EQ(even.dot(odd), 0.0);
  EXPECT_EQ(odd.dot(even), 0.0);
}

TEST(SparseDot, DenseOverlapMatchesOracle) {
  SparseVector a, b;
  for (int i = 0; i < 300; ++i) {
    a.items.emplace_back(i, 0.1 * i - 7.0);
    b.items.emplace_back(i, 3.0 - 0.05 * i);
  }
  EXPECT_EQ(a.dot(b), a.dot_scalar(b));
  // Self-dot through the balanced path equals the squared norm's sum order.
  EXPECT_EQ(a.dot(a), a.dot_scalar(a));
}

TEST(SparseDot, SubsetContainment) {
  // Small vector wholly contained in the big one: every gallop probe hits.
  SparseVector big, sub;
  for (int i = 0; i < 256; ++i) big.items.emplace_back(i, 1.0 + i);
  for (int i = 0; i < 256; i += 64) sub.items.emplace_back(i, 2.0);
  EXPECT_EQ(sub.dot(big), sub.dot_scalar(big));
  EXPECT_EQ(sub.dot(big), big.dot(sub));
}

}  // namespace
}  // namespace cwgl::kernel

// Fault-injection integration suite: a deliberately corrupted trace pushed
// through the whole pipeline, strict vs lenient, plus (when compiled with
// -DCWGL_FAILPOINTS=ON) injected I/O and queue faults.
//
// The corrupted trace carries four distinct kinds of damage:
//   1. an unterminated quote (CSV-structure corruption, truncates a record)
//   2. a shuffled-columns row (parses as CSV, fails TaskRecord::from_fields)
//   3. a truncated record (file cut mid-row — also a from_fields failure)
//   4. a cyclic job (structurally valid rows, corrupt dependency graph)
// Lenient mode must quarantine all four with exact counts and still build
// every healthy job; strict mode must fail with a typed error naming the
// first offense.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <initializer_list>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "cli/commands.hpp"
#include "core/ingest.hpp"
#include "model/format.hpp"
#include "model/model.hpp"
#include "serve/classifier.hpp"
#include "serve/daemon.hpp"
#include "serve/protocol.hpp"
#include "trace/io.hpp"
#include "util/diagnostics.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/thread_pool.hpp"

namespace cwgl {
namespace {

/// Healthy diamond job: M1 -> {R2, R3} -> J4.
void append_healthy_job(std::string& csv, int id) {
  const std::string j = "j_ok" + std::to_string(id);
  csv += "M1,2," + j + ",1,Terminated,100,200,100.00,0.50\n";
  csv += "R2_1,2," + j + ",1,Terminated,200,300,100.00,0.50\n";
  csv += "R3_1,2," + j + ",1,Terminated,200,320,100.00,0.50\n";
  csv += "J4_2_3,1," + j + ",1,Terminated,320,400,50.00,0.25\n";
}

/// The corrupted batch_task.csv described in the file header. Healthy jobs
/// surround every kind of damage so recovery (not just detection) is
/// exercised.
std::string corrupted_task_csv(int healthy_jobs = 12) {
  std::string csv;
  int id = 0;
  append_healthy_job(csv, id++);
  // (1) unterminated quote: swallows the rest of the line.
  csv += "\"M1,1,j_quote,1,Terminated,10,20,100.00,0.50\n";
  append_healthy_job(csv, id++);
  // (2) shuffled columns: status where instance_num belongs, etc.
  csv += "j_shuffled,M1,Terminated,1,1,10,20,100.00,0.50\n";
  append_healthy_job(csv, id++);
  // (3) truncated record: the file was cut mid-row (too few fields).
  csv += "M1,1,j_truncated,1,Term\n";
  append_healthy_job(csv, id++);
  // (4) cyclic job: M1 depends on 2, R2 depends on 1.
  csv += "M1_2,1,j_cycle,1,Terminated,10,20,100.00,0.50\n";
  csv += "R2_1,1,j_cycle,1,Terminated,30,40,100.00,0.50\n";
  while (id < healthy_jobs) append_healthy_job(csv, id++);
  return csv;
}

TEST(FaultInjection, LenientIngestQuarantinesAllFourCorruptionKinds) {
  util::Diagnostics diagnostics;
  core::IngestOptions options;
  options.diagnostics = &diagnostics;
  std::istringstream in(corrupted_task_csv());
  core::IngestStats stats;
  const auto dags = core::stream_dag_jobs(in, options, nullptr, &stats);

  // Every healthy job was built despite the surrounding damage.
  EXPECT_EQ(dags.size(), 12u);
  for (const auto& dag : dags) {
    EXPECT_EQ(dag.size(), 4);
  }
  // Exact quarantine accounting, by kind:
  EXPECT_EQ(diagnostics.count_of("csv", "unterminated-quote"), 1u);
  EXPECT_EQ(diagnostics.count_of("ingest", "malformed-row"), 2u);
  EXPECT_EQ(diagnostics.count_of("dag", "cycle"), 1u);
  EXPECT_EQ(diagnostics.total(), 4u);
  // And the stream stats agree: 1 CSV-quarantined + 2 malformed rows.
  EXPECT_EQ(stats.stream.malformed, 3u);
  EXPECT_EQ(stats.stream.rows, 12u * 4u + 2u);  // healthy rows + cycle rows
}

TEST(FaultInjection, LenientPooledAgreesWithSerial) {
  const std::string csv = corrupted_task_csv(40);
  std::istringstream serial_in(csv);
  core::IngestStats serial_stats;
  const auto serial =
      core::stream_dag_jobs(serial_in, {}, nullptr, &serial_stats);

  util::ThreadPool pool(4);
  core::IngestOptions options;
  options.batch_jobs = 2;
  options.queue_capacity = 2;
  std::istringstream pooled_in(csv);
  core::IngestStats pooled_stats;
  const auto pooled =
      core::stream_dag_jobs(pooled_in, options, &pool, &pooled_stats);

  ASSERT_EQ(pooled.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(pooled[i].job_name, serial[i].job_name);
  }
  EXPECT_EQ(pooled_stats.stream.malformed, serial_stats.stream.malformed);
  EXPECT_EQ(pooled_stats.dags, serial_stats.dags);
}

TEST(FaultInjection, StrictFailsNamingFirstOffense) {
  // The first damage in file order is the unterminated quote — a CSV-level
  // ParseError. The error must name what and where, not just "bad input".
  std::istringstream in(corrupted_task_csv());
  core::IngestOptions options;
  options.strict = true;
  try {
    core::stream_dag_jobs(in, options);
    FAIL() << "strict ingest accepted a corrupt trace";
  } catch (const util::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("unterminated"), std::string::npos)
        << e.what();
  }
}

TEST(FaultInjection, StrictNamesCorruptJobWhenCsvIsClean) {
  // Remove CSV-level damage; the first remaining offense is the cyclic job.
  std::string csv;
  append_healthy_job(csv, 0);
  csv += "M1_2,1,j_cycle,1,Terminated,10,20,100.00,0.50\n";
  csv += "R2_1,1,j_cycle,1,Terminated,30,40,100.00,0.50\n";
  append_healthy_job(csv, 1);
  std::istringstream in(csv);
  core::IngestOptions options;
  options.strict = true;
  try {
    core::stream_dag_jobs(in, options);
    FAIL() << "strict ingest accepted a cyclic job";
  } catch (const util::GraphError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("j_cycle"), std::string::npos) << what;
    EXPECT_NE(what.find("cycle"), std::string::npos) << what;
  }
}

/// Writes the corrupted trace to a temp dir for CLI-level tests.
class CorruptedTraceDir {
 public:
  CorruptedTraceDir() {
    dir_ = std::filesystem::temp_directory_path() /
           ("cwgl_fault_trace_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    std::ofstream out(dir_ / "batch_task.csv");
    out << corrupted_task_csv();
  }
  ~CorruptedTraceDir() {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::string path() const { return dir_.string(); }

 private:
  std::filesystem::path dir_;
};

int run_cli_command(std::initializer_list<const char*> tokens,
                    std::string* out_text = nullptr,
                    std::string* err_text = nullptr) {
  std::vector<const char*> argv{"cwgl"};
  argv.insert(argv.end(), tokens.begin(), tokens.end());
  std::ostringstream out, err;
  const int code =
      cli::run_cli(static_cast<int>(argv.size()), argv.data(), out, err);
  if (out_text) *out_text = out.str();
  if (err_text) *err_text = err.str();
  return code;
}

TEST(FaultInjection, CliLenientIngestExitsZeroAndReportsQuarantine) {
  CorruptedTraceDir trace;
  std::string out;
  const int code =
      run_cli_command({"ingest", "--trace", trace.path().c_str(), "--serial"},
                      &out);
  EXPECT_EQ(code, 0) << out;
  EXPECT_NE(out.find("diagnostics:"), std::string::npos) << out;
  EXPECT_NE(out.find("csv/unterminated-quote: 1"), std::string::npos) << out;
  EXPECT_NE(out.find("dag/cycle: 1"), std::string::npos) << out;
}

TEST(FaultInjection, CliStrictIngestFailsWithTypedError) {
  CorruptedTraceDir trace;
  std::string out, err;
  const int code = run_cli_command(
      {"ingest", "--trace", trace.path().c_str(), "--serial", "--strict"},
      &out, &err);
  EXPECT_EQ(code, 1);
  EXPECT_NE(err.find("unterminated"), std::string::npos) << err;
}

TEST(FaultInjection, CliJsonDiagnosticsReport) {
  CorruptedTraceDir trace;
  std::string out;
  const int code = run_cli_command(
      {"ingest", "--trace", trace.path().c_str(), "--serial", "--json"}, &out);
  EXPECT_EQ(code, 0) << out;
  EXPECT_NE(out.find("\"total\":"), std::string::npos) << out;
  EXPECT_NE(out.find("\"unterminated-quote\""), std::string::npos) << out;
}

#if defined(CWGL_FAILPOINTS_ENABLED)

class FailpointFixture : public ::testing::Test {
 protected:
  void TearDown() override { util::failpoint::clear(); }
};

std::string healthy_csv(int jobs = 64) {
  std::string csv;
  for (int i = 0; i < jobs; ++i) append_healthy_job(csv, i);
  return csv;
}

TEST_F(FailpointFixture, InjectedReadErrorSurfacesFromSerialIngest) {
  util::failpoint::configure("ingest.read_block=error*1");
  std::istringstream in(healthy_csv());
  EXPECT_THROW(core::stream_dag_jobs(in, {}), util::FailpointError);
}

TEST_F(FailpointFixture, InjectedShortReadsChangeNothingButTiming) {
  // Differential check: forcing every block refill down to 1 byte must
  // yield byte-identical parse results — the scanner's buffering logic may
  // not depend on block granularity.
  const std::string csv = healthy_csv(32);
  std::istringstream clean_in(csv);
  const auto clean = core::stream_dag_jobs(clean_in, {});

  util::failpoint::configure("ingest.read_block=short-read:1");
  std::istringstream short_in(csv);
  core::IngestStats stats;
  const auto shorted = core::stream_dag_jobs(short_in, {}, nullptr, &stats);
  ASSERT_EQ(shorted.size(), clean.size());
  for (std::size_t i = 0; i < clean.size(); ++i) {
    EXPECT_EQ(shorted[i].job_name, clean[i].job_name);
    EXPECT_EQ(shorted[i].dag.edges(), clean[i].dag.edges());
  }
  EXPECT_EQ(stats.stream.malformed, 0u);
}

TEST_F(FailpointFixture, WorkerFaultDoesNotDeadlockPooledIngest) {
  // A worker that dies while the reader is pushing into a tiny queue: the
  // close-on-throw ordering must release the reader. Run several times —
  // the interleaving varies.
  for (int round = 0; round < 5; ++round) {
    util::failpoint::configure("ingest.worker_batch=error@0.5;seed=" +
                               std::to_string(round));
    util::ThreadPool pool(4);
    core::IngestOptions options;
    options.batch_jobs = 1;
    options.queue_capacity = 1;
    std::istringstream in(healthy_csv(256));
    try {
      core::stream_dag_jobs(in, options, &pool);
    } catch (const util::FailpointError&) {
      // expected most rounds
    }
  }
}

TEST_F(FailpointFixture, QueuePushFaultPropagates) {
  util::failpoint::configure("queue.push=error*1");
  util::ThreadPool pool(2);
  core::IngestOptions options;
  options.batch_jobs = 1;
  std::istringstream in(healthy_csv(64));
  EXPECT_THROW(core::stream_dag_jobs(in, options, &pool),
               util::FailpointError);
}

TEST_F(FailpointFixture, SubmitFaultSettlesCleanly) {
  // pool.submit failing mid-worker-spawn must not use-after-free the queue
  // or hang; the submission error propagates.
  util::failpoint::configure("pool.submit=error*1");
  util::ThreadPool pool(4);
  std::istringstream in(healthy_csv(64));
  EXPECT_THROW(core::stream_dag_jobs(in, {}, &pool), util::FailpointError);
}

TEST_F(FailpointFixture, DelayInjectionOnlySlowsThingsDown) {
  util::failpoint::configure("queue.pop=delay:1ms@0.25;seed=7");
  util::ThreadPool pool(2);
  core::IngestOptions options;
  options.batch_jobs = 4;
  const std::string csv = healthy_csv(64);
  std::istringstream in(csv);
  core::IngestStats stats;
  const auto dags = core::stream_dag_jobs(in, options, &pool, &stats);
  EXPECT_EQ(dags.size(), 64u);
  EXPECT_EQ(stats.stream.malformed, 0u);
}

TEST_F(FailpointFixture, WriteTraceFaultIsTyped) {
  util::failpoint::configure("io.write_trace=error");
  trace::Trace empty;
  const auto dir = std::filesystem::temp_directory_path() / "cwgl_fp_write";
  EXPECT_THROW(trace::write_trace(empty, dir), util::FailpointError);
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

/// Minimal valid model snapshot for the model-store failpoint tests.
model::FittedModel tiny_fitted_model() {
  model::FittedModel m;
  m.wl.iterations = 1;
  m.dictionary = {"77", "82", "1:x"};
  model::ClusterProfile profile;
  profile.population = 1;
  profile.population_fraction = 1.0;
  profile.mean_size = 2.0;
  profile.median_size = 2.0;
  profile.mean_critical_path = 2.0;
  profile.median_critical_path = 2.0;
  profile.mean_width = 1.0;
  profile.median_width = 1.0;
  m.profiles = {profile};
  model::Representative rep;
  rep.job_name = "j_1";
  rep.training_index = 0;
  rep.features.items = {{0, 1.0}, {2, 2.0}};
  rep.self_norm = rep.features.norm();
  m.representatives = {{rep}};
  return m;
}

TEST_F(FailpointFixture, MidWriteCrashLeavesPreviousSnapshotIntact) {
  const auto path =
      std::filesystem::temp_directory_path() / "cwgl_fp_model.cwgl";
  const auto tmp =
      std::filesystem::temp_directory_path() / "cwgl_fp_model.cwgl.tmp";
  const model::FittedModel m = tiny_fitted_model();

  // Publish a good snapshot first — this is what a crashed re-save must
  // never damage (the property automated hot reload depends on).
  model::save_model(m, path);
  ASSERT_EQ(model::load_model(path), m);

  // Crash after roughly half the re-save reached the disk: the torn bytes
  // are confined to the .tmp sibling; the published file never changes.
  util::failpoint::configure("model.write=error*1");
  EXPECT_THROW(model::save_model(m, path), util::FailpointError);
  util::failpoint::clear();
  ASSERT_TRUE(std::filesystem::exists(path));
  EXPECT_EQ(model::load_model(path), m);

  // The torn temp file exists, is short, and strict decoding rejects it —
  // even a reader pointed at the wrong path gets a typed error, not
  // garbage-in-garbage-out.
  ASSERT_TRUE(std::filesystem::exists(tmp));
  EXPECT_LT(std::filesystem::file_size(tmp), model::serialize_model(m).size());
  EXPECT_THROW(model::load_model(tmp), model::ModelError);

  // A clean re-save recovers and replaces the torn temp.
  model::save_model(m, path);
  EXPECT_EQ(model::load_model(path), m);
  EXPECT_FALSE(std::filesystem::exists(tmp));
  std::filesystem::remove(path);
}

TEST_F(FailpointFixture, MidWriteCrashOnFirstSaveLeavesNoPublishedFile) {
  const auto path =
      std::filesystem::temp_directory_path() / "cwgl_fp_model_first.cwgl";
  const auto tmp =
      std::filesystem::temp_directory_path() / "cwgl_fp_model_first.cwgl.tmp";
  std::filesystem::remove(path);
  std::filesystem::remove(tmp);

  // With no previous snapshot, a mid-write crash publishes NOTHING: a
  // reloader polling `path` sees "absent", never "partial".
  util::failpoint::configure("model.write=error*1");
  EXPECT_THROW(model::save_model(tiny_fitted_model(), path),
               util::FailpointError);
  util::failpoint::clear();
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_TRUE(std::filesystem::exists(tmp));
  std::filesystem::remove(tmp);
}

TEST_F(FailpointFixture, ModelReadFaultIsTyped) {
  const auto path =
      std::filesystem::temp_directory_path() / "cwgl_fp_model_read.cwgl";
  model::save_model(tiny_fitted_model(), path);
  util::failpoint::configure("model.read=error*1");
  EXPECT_THROW(model::load_model(path), util::FailpointError);
  util::failpoint::clear();
  EXPECT_EQ(model::load_model(path), tiny_fitted_model());
  std::filesystem::remove(path);
}

// --- serving-daemon failpoints -------------------------------------------
// serve.accept drops a connection whole, serve.batch fails a dispatch batch,
// serve.reload rejects a swap attempt. In every case the daemon stays up
// and the no-silent-drop contract holds: whatever was admitted gets a typed
// answer.

serve::DaemonConfig fp_daemon_config(const std::string& tag) {
  serve::DaemonConfig cfg;
  cfg.endpoint.socket_path =
      (std::filesystem::temp_directory_path() / (tag + ".sock")).string();
  cfg.worker_threads = 1;
  return cfg;
}

serve::Request fp_classify(std::uint64_t id) {
  serve::Request r;
  r.type = serve::RequestType::Classify;
  r.id = id;
  r.job_name = "j_fp";
  r.tasks = {"M1", "R2_1"};
  return r;
}

TEST_F(FailpointFixture, InjectedAcceptFaultDropsOneConnectionDaemonSurvives) {
  const auto cfg = fp_daemon_config("cwgl_fp_accept");
  serve::Daemon daemon(
      std::make_shared<const serve::Classifier>(tiny_fitted_model()), cfg);
  daemon.start();

  // First connection is accepted then dropped whole: the client observes a
  // hangup (typed ProtocolError), never a partial response.
  util::failpoint::configure("serve.accept=error*1");
  {
    serve::Client dropped(cfg.endpoint);
    EXPECT_THROW(dropped.call(fp_classify(1)), serve::ProtocolError);
  }
  util::failpoint::clear();

  // The daemon itself is unharmed: the next connection serves normally.
  serve::Client client(cfg.endpoint);
  const serve::Response r = client.call(fp_classify(2));
  EXPECT_EQ(r.status, serve::ResponseStatus::Ok) << r.message;
}

TEST_F(FailpointFixture, InjectedBatchFaultAnswersTypedErrorAndRecovers) {
  const auto cfg = fp_daemon_config("cwgl_fp_batch");
  serve::Daemon daemon(
      std::make_shared<const serve::Classifier>(tiny_fitted_model()), cfg);
  daemon.start();
  serve::Client client(cfg.endpoint);

  util::failpoint::configure("serve.batch=error*1");
  const serve::Response failed = client.call(fp_classify(1));
  EXPECT_EQ(failed.status, serve::ResponseStatus::Error);
  EXPECT_NE(failed.message.find("batch dispatch failed"), std::string::npos)
      << failed.message;
  util::failpoint::clear();

  // Same connection, next batch: back to serving.
  const serve::Response ok = client.call(fp_classify(2));
  EXPECT_EQ(ok.status, serve::ResponseStatus::Ok) << ok.message;
  const serve::DaemonStats s = daemon.stats();
  EXPECT_EQ(s.errors, 1u);
  EXPECT_EQ(s.served + s.shed + s.timeouts + s.rejected_draining + s.errors,
            s.requests);
}

TEST_F(FailpointFixture, InjectedReloadFaultKeepsOldModelServing) {
  const auto model_path =
      std::filesystem::temp_directory_path() / "cwgl_fp_reload.cwgl";
  model::save_model(tiny_fitted_model(), model_path);
  const auto cfg = fp_daemon_config("cwgl_fp_reload");
  serve::Daemon daemon(
      std::make_shared<const serve::Classifier>(tiny_fitted_model()), cfg);
  daemon.start();
  const auto before = daemon.snapshot();

  util::failpoint::configure("serve.reload=error*1");
  std::string error;
  EXPECT_FALSE(daemon.reload_now(model_path.string(), &error));
  EXPECT_FALSE(error.empty());
  util::failpoint::clear();

  // Rejected swap: pointer unchanged, failure counted, still serving.
  EXPECT_EQ(daemon.snapshot().get(), before.get());
  EXPECT_EQ(daemon.stats().reload_failures, 1u);
  serve::Client client(cfg.endpoint);
  EXPECT_EQ(client.call(fp_classify(1)).status, serve::ResponseStatus::Ok);

  // And a clean retry swaps.
  EXPECT_TRUE(daemon.reload_now(model_path.string(), &error)) << error;
  EXPECT_EQ(daemon.stats().reloads, 1u);
  std::filesystem::remove(model_path);
}

#endif  // CWGL_FAILPOINTS_ENABLED

}  // namespace
}  // namespace cwgl

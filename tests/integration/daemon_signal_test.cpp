// Signal-driven daemon lifecycle, asserted in-process: SIGHUP mid-traffic
// hot-swaps the model with zero dropped in-flight requests and zero
// swap-attributable failures; a corrupt snapshot under SIGHUP is retried
// with backoff until the file is repaired while the old model keeps
// serving; SIGTERM/SIGINT drain gracefully — every admitted request is
// answered and wait() returns 0. The accounting identity
//   served + shed + timeouts + rejected_draining + errors == requests
// is the no-silent-drop invariant each scenario closes with.

#include <gtest/gtest.h>

#include <signal.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/pipeline.hpp"
#include "model/fit.hpp"
#include "model/format.hpp"
#include "serve/classifier.hpp"
#include "serve/daemon.hpp"
#include "serve/protocol.hpp"
#include "trace/generator.hpp"

namespace cwgl::serve {
namespace {

using namespace std::chrono_literals;

model::FittedModel fit_tiny() {
  trace::GeneratorConfig gcfg;
  gcfg.num_jobs = 120;
  gcfg.seed = 23;
  gcfg.emit_instances = false;
  const trace::Trace data = trace::TraceGenerator(gcfg).generate();
  core::PipelineConfig cfg;
  cfg.sample_size = 30;
  cfg.clustering.clusters = 3;
  core::FittedFeatures fitted;
  const auto result =
      core::CharacterizationPipeline(cfg).run(data, nullptr, &fitted);
  return model::build_model(result, std::move(fitted), cfg);
}

const model::FittedModel& tiny_model() {
  static const model::FittedModel m = fit_tiny();
  return m;
}

Request classify_request(std::uint64_t id) {
  Request r;
  r.type = RequestType::Classify;
  r.id = id;
  r.job_name = "j_sig";
  r.tasks = {"M1", "M2_1", "R3_2"};
  return r;
}

/// Spins until `pred()` holds or `budget` elapses; true when it held.
bool eventually(std::chrono::milliseconds budget,
                const std::function<bool()>& pred) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(5ms);
  }
  return pred();
}

/// The no-silent-drop identity over a daemon's lifetime counters.
void expect_every_request_answered(const DaemonStats& s) {
  EXPECT_EQ(s.served + s.shed + s.timeouts + s.rejected_draining + s.errors,
            s.requests);
}

TEST(DaemonSignalTest, SighupMidTrafficReloadsWithZeroDroppedInFlight) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto model_path = dir / "cwgl_sig_reload.cwgl";
  const auto socket_path = dir / "cwgl_sig_reload.sock";
  model::save_model(tiny_model(), model_path);

  DaemonConfig cfg;
  cfg.endpoint.socket_path = socket_path.string();
  cfg.model_path = model_path.string();
  cfg.worker_threads = 2;
  Daemon daemon(std::make_shared<const Classifier>(tiny_model()), cfg);
  daemon.start();
  daemon.install_signal_handlers();

  // Sustained traffic: every response that is not `ok` is a drop the swap
  // would be accountable for.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> sent{0};
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> not_ok{0};
  constexpr int kClients = 3;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      Client client(cfg.endpoint);
      std::uint64_t id = 0;
      while (!stop.load()) {
        sent.fetch_add(1);
        const Response r = client.call(classify_request(++id));
        if (r.status == ResponseStatus::Ok) ok.fetch_add(1);
        else not_ok.fetch_add(1);
      }
    });
  }

  ASSERT_TRUE(eventually(10s, [&] { return daemon.stats().served >= 10; }));
  ASSERT_EQ(::raise(SIGHUP), 0);
  ASSERT_TRUE(eventually(10s, [&] { return daemon.stats().reloads >= 1; }));
  // Traffic must keep flowing on the swapped-in model.
  const std::uint64_t served_at_swap = daemon.stats().served;
  ASSERT_TRUE(eventually(
      10s, [&] { return daemon.stats().served >= served_at_swap + 10; }));
  stop.store(true);
  for (auto& t : clients) t.join();

  EXPECT_EQ(not_ok.load(), 0u) << "a hot swap must not fail any request";
  EXPECT_EQ(ok.load(), sent.load());
  const DaemonStats s = daemon.stats();
  EXPECT_GE(s.reloads, 1u);
  EXPECT_EQ(s.reload_failures, 0u);
  EXPECT_EQ(s.errors, 0u);
  EXPECT_EQ(s.served, ok.load());
  expect_every_request_answered(s);

  ASSERT_EQ(::raise(SIGTERM), 0);
  EXPECT_EQ(daemon.wait(), 0);
  std::filesystem::remove(model_path);
}

TEST(DaemonSignalTest, CorruptSighupRetriesUntilSnapshotRepaired) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto model_path = dir / "cwgl_sig_corrupt.cwgl";
  const auto socket_path = dir / "cwgl_sig_corrupt.sock";
  model::save_model(tiny_model(), model_path);

  DaemonConfig cfg;
  cfg.endpoint.socket_path = socket_path.string();
  cfg.model_path = model_path.string();
  cfg.worker_threads = 1;
  cfg.reload_retries = 50;     // plenty of runway for the repair below
  cfg.reload_backoff = 10ms;
  Daemon daemon(std::make_shared<const Classifier>(tiny_model()), cfg);
  daemon.start();
  daemon.install_signal_handlers();
  Client client(cfg.endpoint);

  // Corrupt the snapshot on disk, then ask for a reload via SIGHUP.
  {
    std::ofstream f(model_path, std::ios::binary | std::ios::trunc);
    f << "not a model";
  }
  ASSERT_EQ(::raise(SIGHUP), 0);
  ASSERT_TRUE(
      eventually(10s, [&] { return daemon.stats().reload_failures >= 1; }));

  // The rejected snapshot must leave the old model serving.
  const Response during = client.call(classify_request(1));
  EXPECT_EQ(during.status, ResponseStatus::Ok) << during.message;
  EXPECT_EQ(daemon.stats().reloads, 0u);

  // Repair the file; a backoff retry of the SAME signal must pick it up.
  model::save_model(tiny_model(), model_path);
  ASSERT_TRUE(eventually(20s, [&] { return daemon.stats().reloads >= 1; }));

  const Response after = client.call(classify_request(2));
  EXPECT_EQ(after.status, ResponseStatus::Ok) << after.message;
  expect_every_request_answered(daemon.stats());

  ASSERT_EQ(::raise(SIGINT), 0);
  EXPECT_EQ(daemon.wait(), 0);
  std::filesystem::remove(model_path);
}

TEST(DaemonSignalTest, SigtermUnderTrafficDrainsCleanAndAnswersEverything) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto socket_path = dir / "cwgl_sig_drain.sock";

  DaemonConfig cfg;
  cfg.endpoint.socket_path = socket_path.string();
  cfg.worker_threads = 2;
  cfg.service_delay = 1ms;  // keep a few requests genuinely in flight
  Daemon daemon(std::make_shared<const Classifier>(tiny_model()), cfg);
  daemon.start();
  daemon.install_signal_handlers();

  // Clients run until the daemon tells them (typed!) that it is going away
  // or hangs up; anything else non-ok is a real failure.
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> shutting_down{0};
  std::atomic<std::uint64_t> failures{0};
  constexpr int kClients = 3;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      Client client(cfg.endpoint);
      std::uint64_t id = 0;
      for (;;) {
        try {
          const Response r = client.call(classify_request(++id));
          if (r.status == ResponseStatus::Ok) {
            ok.fetch_add(1);
          } else if (r.status == ResponseStatus::ShuttingDown) {
            shutting_down.fetch_add(1);
            return;
          } else {
            failures.fetch_add(1);
            return;
          }
        } catch (const ProtocolError&) {
          return;  // drained daemon hung up between requests: clean end
        }
      }
    });
  }

  ASSERT_TRUE(eventually(10s, [&] { return daemon.stats().served >= 20; }));
  ASSERT_EQ(::raise(SIGTERM), 0);
  EXPECT_EQ(daemon.wait(), 0);
  for (auto& t : clients) t.join();

  EXPECT_EQ(failures.load(), 0u);
  const DaemonStats s = daemon.stats();
  EXPECT_GE(s.served, 20u);
  EXPECT_EQ(s.errors, 0u);
  EXPECT_EQ(s.timeouts, 0u) << "drain budget must cover this tiny backlog";
  expect_every_request_answered(s);
  EXPECT_EQ(s.served, ok.load());
  EXPECT_EQ(s.rejected_draining, shutting_down.load());
}

}  // namespace
}  // namespace cwgl::serve

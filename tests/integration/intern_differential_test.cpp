// The tentpole guarantee of shape interning: running the characterization
// pipeline over DISTINCT shapes (count-weighted) reproduces the direct
// per-job run — same cluster assignments, same Gram entries, same group
// statistics, same figure reports — on every configuration. Three synthetic
// traces with different sampling modes, cluster counts, and the conflated
// ablation cover the paths scripts/check.sh re-runs under ASan/UBSan/TSan.

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "core/report_json.hpp"
#include "trace/generator.hpp"
#include "util/thread_pool.hpp"

namespace cwgl::core {
namespace {

trace::Trace make_trace(std::size_t jobs, std::uint64_t seed) {
  trace::GeneratorConfig cfg;
  cfg.num_jobs = jobs;
  cfg.seed = seed;
  cfg.emit_instances = false;
  return trace::TraceGenerator(cfg).generate();
}

template <typename Report>
std::string as_json(const Report& report) {
  std::ostringstream out;
  write_json(out, report);
  return out.str();
}

/// Runs the same configuration twice — direct and interned — and asserts
/// the interned run is an exact reproduction.
void expect_interned_matches_direct(PipelineConfig cfg,
                                    const trace::Trace& data,
                                    const std::string& which) {
  SCOPED_TRACE(which);
  util::ThreadPool pool;

  cfg.intern_shapes = false;
  const PipelineResult direct = CharacterizationPipeline(cfg).run(data, &pool);
  cfg.intern_shapes = true;
  const PipelineResult interned =
      CharacterizationPipeline(cfg).run(data, &pool);

  ASSERT_FALSE(direct.interned.has_value());
  ASSERT_TRUE(interned.interned.has_value());
  const InternedAnalysis& analysis = *interned.interned;
  ASSERT_EQ(analysis.shape_of.size(), direct.sample.size());
  EXPECT_EQ(analysis.stats.total_jobs, direct.sample.size());
  EXPECT_LE(analysis.table.shapes.size(), direct.sample.size());
  EXPECT_GT(analysis.table.shapes.size(), 0u);

  // Cluster assignments: exactly equal, job for job — not merely the same
  // partition. The weighted stages reproduce the direct label ids.
  ASSERT_EQ(interned.clustering.labels.size(), direct.clustering.labels.size());
  for (std::size_t i = 0; i < direct.clustering.labels.size(); ++i) {
    EXPECT_EQ(interned.clustering.labels[i], direct.clustering.labels[i])
        << "job " << i << " (" << direct.sample[i].job_name << ")";
  }

  // Gram matrix: the interned expansion must agree entry-wise. Same-shape
  // jobs carry identical WL vectors, so the arithmetic is the same.
  ASSERT_EQ(interned.similarity.gram.rows(), direct.similarity.gram.rows());
  ASSERT_EQ(interned.similarity.gram.cols(), direct.similarity.gram.cols());
  for (std::size_t r = 0; r < direct.similarity.gram.rows(); ++r) {
    for (std::size_t c = 0; c < direct.similarity.gram.cols(); ++c) {
      EXPECT_NEAR(interned.similarity.gram(r, c), direct.similarity.gram(r, c),
                  1e-12)
          << "gram(" << r << ", " << c << ")";
    }
  }
  EXPECT_EQ(interned.similarity.job_names, direct.similarity.job_names);

  // Group statistics (Fig. 9): populations and order statistics exact,
  // means to summation-order tolerance.
  ASSERT_EQ(interned.clustering.groups.size(), direct.clustering.groups.size());
  for (std::size_t g = 0; g < direct.clustering.groups.size(); ++g) {
    const ClusterGroupStats& a = interned.clustering.groups[g];
    const ClusterGroupStats& b = direct.clustering.groups[g];
    EXPECT_EQ(a.group, b.group);
    EXPECT_EQ(a.population, b.population);
    EXPECT_DOUBLE_EQ(a.population_fraction, b.population_fraction);
    EXPECT_EQ(a.medoid, b.medoid);
    EXPECT_DOUBLE_EQ(a.chain_fraction, b.chain_fraction);
    EXPECT_DOUBLE_EQ(a.short_job_fraction, b.short_job_fraction);
    const auto expect_distribution = [&](const util::Distribution& w,
                                         const util::Distribution& d,
                                         const char* name) {
      SCOPED_TRACE(name);
      EXPECT_EQ(w.count, d.count);
      EXPECT_DOUBLE_EQ(w.min, d.min);
      EXPECT_DOUBLE_EQ(w.p25, d.p25);
      EXPECT_DOUBLE_EQ(w.median, d.median);
      EXPECT_DOUBLE_EQ(w.p75, d.p75);
      EXPECT_DOUBLE_EQ(w.max, d.max);
      EXPECT_NEAR(w.mean, d.mean, 1e-12 * (1.0 + std::abs(d.mean)));
    };
    expect_distribution(a.size, b.size, "size");
    expect_distribution(a.critical_path, b.critical_path, "critical_path");
    expect_distribution(a.parallelism, b.parallelism, "parallelism");
  }
  EXPECT_NEAR(interned.clustering.silhouette, direct.clustering.silhouette,
              1e-9);
  EXPECT_EQ(interned.clustering.suggested_k, direct.clustering.suggested_k);
  ASSERT_EQ(interned.clustering.eigenvalues.size(),
            direct.clustering.eigenvalues.size());
  for (std::size_t i = 0; i < direct.clustering.eigenvalues.size(); ++i) {
    EXPECT_NEAR(interned.clustering.eigenvalues[i],
                direct.clustering.eigenvalues[i], 1e-8)
        << "eigenvalue " << i;
  }

  // Figure reports that must match byte for byte as JSON documents.
  EXPECT_EQ(as_json(interned.conflation), as_json(direct.conflation));
  EXPECT_EQ(as_json(interned.structure_before), as_json(direct.structure_before));
  EXPECT_EQ(as_json(interned.structure_after), as_json(direct.structure_after));
  EXPECT_EQ(as_json(interned.patterns), as_json(direct.patterns));

  // Fig. 6: the programming-model counters aggregate with multiplicity and
  // match exactly; the row set is per-shape by design, so only its total
  // weight is comparable.
  EXPECT_EQ(interned.task_types.map_reduce_jobs,
            direct.task_types.map_reduce_jobs);
  EXPECT_EQ(interned.task_types.map_join_reduce_jobs,
            direct.task_types.map_join_reduce_jobs);
  EXPECT_EQ(interned.task_types.map_reduce_merge_jobs,
            direct.task_types.map_reduce_merge_jobs);
  EXPECT_EQ(interned.task_types.multi_stage_jobs,
            direct.task_types.multi_stage_jobs);
  EXPECT_LE(interned.task_types.rows.size(), direct.task_types.rows.size());
}

TEST(InternDifferential, PaperMixVariabilitySample) {
  PipelineConfig cfg;
  cfg.sample_size = 60;
  cfg.clustering.clusters = 5;
  expect_interned_matches_direct(cfg, make_trace(1200, 42),
                                 "paper-mix / variability / k=5");
}

TEST(InternDifferential, NaturalSamplingDifferentSeedAndK) {
  PipelineConfig cfg;
  cfg.sample_size = 50;
  cfg.sampling = SamplingMode::Natural;
  cfg.clustering.clusters = 3;
  cfg.similarity.wl.iterations = 2;
  expect_interned_matches_direct(cfg, make_trace(900, 1234),
                                 "natural / seed 1234 / k=3 / h=2");
}

TEST(InternDifferential, ConflatedAblation) {
  PipelineConfig cfg;
  cfg.sample_size = 50;
  cfg.clustering.clusters = 4;
  cfg.analyze_conflated = true;
  expect_interned_matches_direct(cfg, make_trace(1000, 7),
                                 "conflated ablation / k=4");
}

}  // namespace
}  // namespace cwgl::core

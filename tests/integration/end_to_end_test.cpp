// End-to-end integration: synthetic trace -> disk -> reload -> filters ->
// pipeline -> scheduling, asserting the cross-module invariants that the
// unit tests can only check in isolation.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>

#include "core/pipeline.hpp"
#include "core/topology_census.hpp"
#include "linalg/eigen.hpp"
#include "sched/simulator.hpp"
#include "trace/generator.hpp"
#include "trace/io.hpp"

namespace cwgl {
namespace {

class EndToEnd : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    trace::GeneratorConfig cfg;
    cfg.seed = 2026;
    cfg.num_jobs = 2500;
    cfg.emit_instances = true;
    trace_ = new trace::Trace(trace::TraceGenerator(cfg).generate());
  }
  static void TearDownTestSuite() {
    delete trace_;
    trace_ = nullptr;
  }
  static const trace::Trace& trace() { return *trace_; }

 private:
  static trace::Trace* trace_;
};

trace::Trace* EndToEnd::trace_ = nullptr;

TEST_F(EndToEnd, DiskRoundTripPreservesPipelineResults) {
  const auto dir = std::filesystem::temp_directory_path() / "cwgl_e2e";
  std::filesystem::remove_all(dir);
  trace::write_trace(trace(), dir);
  std::size_t skipped = 0;
  const trace::Trace reloaded = trace::read_trace(dir, &skipped);
  EXPECT_EQ(skipped, 0u);

  core::PipelineConfig cfg;
  cfg.sample_size = 50;
  const core::CharacterizationPipeline pipeline(cfg);
  const auto direct = pipeline.run(trace());
  const auto from_disk = pipeline.run(reloaded);

  // Every analysis must be bit-identical across the round trip.
  EXPECT_EQ(direct.census.dag_jobs, from_disk.census.dag_jobs);
  EXPECT_EQ(direct.sample.size(), from_disk.sample.size());
  for (std::size_t i = 0; i < direct.sample.size(); ++i) {
    EXPECT_EQ(direct.sample[i].job_name, from_disk.sample[i].job_name);
    EXPECT_EQ(direct.sample[i].dag, from_disk.sample[i].dag);
  }
  EXPECT_EQ(direct.similarity.gram, from_disk.similarity.gram);
  EXPECT_EQ(direct.clustering.labels, from_disk.clustering.labels);
  std::filesystem::remove_all(dir);
}

TEST_F(EndToEnd, StreamingGroupsMatchIndexGroups) {
  const auto dir = std::filesystem::temp_directory_path() / "cwgl_e2e_stream";
  std::filesystem::remove_all(dir);
  trace::write_trace(trace(), dir);

  const trace::TraceIndex index(trace());
  std::ifstream in(dir / "batch_task.csv");
  ASSERT_TRUE(in.is_open());
  std::size_t groups = 0;
  const auto stats = trace::for_each_job_in_task_csv(
      in, [&](const std::string& job, const std::vector<trace::TaskRecord>& tasks) {
        EXPECT_EQ(index.jobs()[groups].job_name, job);
        EXPECT_EQ(index.jobs()[groups].tasks.size(), tasks.size());
        ++groups;
        return true;
      });
  EXPECT_EQ(groups, index.jobs().size());
  EXPECT_EQ(stats.fragmented, 0u);
  std::filesystem::remove_all(dir);
}

TEST_F(EndToEnd, PipelineInvariantsHold) {
  core::PipelineConfig cfg;
  cfg.sample_size = 80;
  const auto result = core::CharacterizationPipeline(cfg).run(trace());

  // Gram matrix is a valid normalized kernel over the sample.
  EXPECT_TRUE(result.similarity.gram.is_symmetric(1e-12));
  EXPECT_TRUE(linalg::is_positive_semidefinite(result.similarity.gram, 1e-7));
  for (std::size_t i = 0; i < result.similarity.gram.rows(); ++i) {
    EXPECT_NEAR(result.similarity.gram(i, i), 1.0, 1e-12);
  }

  // Cluster labels cover exactly k groups with consistent stats.
  std::set<int> labels(result.clustering.labels.begin(),
                       result.clustering.labels.end());
  EXPECT_LE(static_cast<int>(labels.size()), cfg.clustering.clusters);
  std::size_t pop = 0;
  for (const auto& g : result.clustering.groups) pop += g.population;
  EXPECT_EQ(pop, result.sample.size());

  // Structural figures agree with the sample.
  EXPECT_EQ(result.structure_before.size_histogram.total(), result.sample.size());
  EXPECT_EQ(result.task_types.rows.size(), result.sample.size());

  // Conflation can only shrink and recurs more in small jobs.
  const auto census = core::TopologyCensus::compute(result.sample);
  EXPECT_LE(census.distinct_topologies, census.total_jobs);
}

TEST_F(EndToEnd, CharacterizationDrivesSimulatorWithoutContradiction) {
  core::PipelineConfig cfg;
  cfg.sample_size = 60;
  cfg.sampling = core::SamplingMode::Natural;
  const core::CharacterizationPipeline pipeline(cfg);
  const auto sample = pipeline.build_sample(trace());
  const auto similarity = core::SimilarityAnalysis::compute(sample);
  const auto clustering =
      core::ClusteringAnalysis::compute(similarity.gram, sample, {});

  auto jobs = sched::jobs_from_dags(sample, 1.0);
  sched::attach_hints(jobs, clustering.labels);
  const auto profiles =
      sched::profiles_from_groups(sample, clustering.labels, 5);

  sched::SimulatorConfig sim_cfg;
  sim_cfg.machines = 4;
  const sched::Simulator sim(sim_cfg);
  const sched::FifoPolicy fifo;
  const sched::GroupHintPolicy hint;
  const auto fifo_result = sim.run(jobs, fifo, profiles);
  const auto hint_result = sim.run(jobs, hint, profiles);

  // Both policies execute the whole workload and respect global bounds.
  std::size_t total_tasks = 0;
  for (const auto& j : jobs) total_tasks += j.tasks.size();
  EXPECT_EQ(fifo_result.tasks_executed, total_tasks);
  EXPECT_EQ(hint_result.tasks_executed, total_tasks);
  EXPECT_GT(fifo_result.makespan, 0.0);
  EXPECT_LE(fifo_result.mean_utilization, 1.0 + 1e-9);
  EXPECT_LE(hint_result.mean_utilization, 1.0 + 1e-9);
  // Work-conserving single-queue policies: identical total work, so
  // makespans stay within a factor of each other's ballpark.
  EXPECT_GT(hint_result.makespan, 0.5 * fifo_result.makespan);
  EXPECT_LT(hint_result.makespan, 2.0 * fifo_result.makespan);
}

}  // namespace
}  // namespace cwgl

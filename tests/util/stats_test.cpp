#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace cwgl::util {
namespace {

TEST(RunningSummary, EmptyIsAllZero) {
  RunningSummary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningSummary, SingleValue) {
  RunningSummary s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(RunningSummary, KnownMoments) {
  RunningSummary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningSummary, MergeEqualsSequential) {
  RunningSummary whole, left, right;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    whole.add(x);
    (i < 25 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningSummary, MergeWithEmptyIsIdentity) {
  RunningSummary a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Quantiles, EmptyReturnsZero) {
  Quantiles q({});
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.median(), 0.0);
}

TEST(Quantiles, MedianOfOddSample) {
  const std::vector<double> v{5.0, 1.0, 3.0};
  Quantiles q(v);
  EXPECT_DOUBLE_EQ(q.median(), 3.0);
  EXPECT_DOUBLE_EQ(q.min(), 1.0);
  EXPECT_DOUBLE_EQ(q.max(), 5.0);
}

TEST(Quantiles, InterpolatedMedianOfEvenSample) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  Quantiles q(v);
  EXPECT_DOUBLE_EQ(q.median(), 2.5);
}

TEST(Quantiles, QuantileClampedAtEnds) {
  const std::vector<double> v{1.0, 2.0, 3.0};
  Quantiles q(v);
  EXPECT_DOUBLE_EQ(q.quantile(-0.5), 1.0);
  EXPECT_DOUBLE_EQ(q.quantile(1.5), 3.0);
}

TEST(Quantiles, MonotoneInQ) {
  const std::vector<double> v{9.0, 2.0, 7.0, 4.0, 6.0, 1.0};
  Quantiles q(v);
  double prev = q.quantile(0.0);
  for (double p = 0.05; p <= 1.0; p += 0.05) {
    const double cur = q.quantile(p);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(IntHistogram, CountsAndFractions) {
  IntHistogram h;
  h.add(3);
  h.add(3);
  h.add(7, 2);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(3), 2u);
  EXPECT_EQ(h.count(7), 2u);
  EXPECT_EQ(h.count(99), 0u);
  EXPECT_DOUBLE_EQ(h.fraction(3), 0.5);
  EXPECT_EQ(h.distinct(), 2u);
}

TEST(IntHistogram, ItemsAscending) {
  IntHistogram h;
  h.add(9);
  h.add(-2);
  h.add(5);
  const auto items = h.items();
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0].first, -2);
  EXPECT_EQ(items[1].first, 5);
  EXPECT_EQ(items[2].first, 9);
}

TEST(IntHistogram, EmptyFractionIsZero) {
  IntHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_DOUBLE_EQ(h.fraction(1), 0.0);
}

TEST(Describe, FiveNumberSummary) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0};
  const Distribution d = describe(v);
  EXPECT_EQ(d.count, 5u);
  EXPECT_DOUBLE_EQ(d.mean, 3.0);
  EXPECT_DOUBLE_EQ(d.min, 1.0);
  EXPECT_DOUBLE_EQ(d.median, 3.0);
  EXPECT_DOUBLE_EQ(d.max, 5.0);
  EXPECT_DOUBLE_EQ(d.p25, 2.0);
  EXPECT_DOUBLE_EQ(d.p75, 4.0);
}

TEST(Describe, EmptyInput) {
  const Distribution d = describe({});
  EXPECT_EQ(d.count, 0u);
  EXPECT_EQ(d.mean, 0.0);
}

/// Expands (values, weights) into a flat multiset for the reference path.
std::vector<double> expand_weighted(const std::vector<double>& values,
                                    const std::vector<std::uint64_t>& weights) {
  std::vector<double> out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    for (std::uint64_t c = 0; c < weights[i]; ++c) out.push_back(values[i]);
  }
  return out;
}

TEST(DescribeWeighted, MatchesExpandedDescribeExactly) {
  const std::vector<double> values{4.0, 1.0, 7.5, 2.0, 3.0};
  const std::vector<std::uint64_t> weights{3, 1, 2, 5, 4};
  const Distribution expanded = describe(expand_weighted(values, weights));
  const Distribution weighted = describe_weighted(values, weights);
  EXPECT_EQ(weighted.count, expanded.count);
  // Order statistics must be bit-identical: the weighted quantile mirrors
  // Quantiles::quantile on the expanded multiset.
  EXPECT_EQ(weighted.min, expanded.min);
  EXPECT_EQ(weighted.p25, expanded.p25);
  EXPECT_EQ(weighted.median, expanded.median);
  EXPECT_EQ(weighted.p75, expanded.p75);
  EXPECT_EQ(weighted.max, expanded.max);
  // The mean differs only in summation order.
  EXPECT_NEAR(weighted.mean, expanded.mean, 1e-12);
}

TEST(DescribeWeighted, AllWeightsOneMatchesDescribe) {
  const std::vector<double> values{9.0, 2.0, 5.0, 5.0};
  const std::vector<std::uint64_t> ones(values.size(), 1);
  const Distribution plain = describe(values);
  const Distribution weighted = describe_weighted(values, ones);
  EXPECT_EQ(weighted.count, plain.count);
  EXPECT_EQ(weighted.median, plain.median);
  EXPECT_EQ(weighted.p25, plain.p25);
  EXPECT_EQ(weighted.p75, plain.p75);
  EXPECT_NEAR(weighted.mean, plain.mean, 1e-15);
}

TEST(DescribeWeighted, IgnoresZeroWeights) {
  const std::vector<double> values{1.0, 100.0, 3.0};
  const std::vector<std::uint64_t> weights{2, 0, 2};
  const Distribution d = describe_weighted(values, weights);
  EXPECT_EQ(d.count, 4u);
  EXPECT_EQ(d.max, 3.0);  // the zero-weight value never appears
  EXPECT_DOUBLE_EQ(d.mean, 2.0);
}

TEST(DescribeWeighted, EmptyAndAllZeroWeights) {
  EXPECT_EQ(describe_weighted({}, {}).count, 0u);
  const std::vector<double> values{1.0, 2.0};
  const std::vector<std::uint64_t> zeros{0, 0};
  const Distribution d = describe_weighted(values, zeros);
  EXPECT_EQ(d.count, 0u);
  EXPECT_EQ(d.mean, 0.0);
}

TEST(DescribeWeighted, SingleHeavyValue) {
  const std::vector<double> values{42.0};
  const std::vector<std::uint64_t> weights{1000};
  const Distribution d = describe_weighted(values, weights);
  EXPECT_EQ(d.count, 1000u);
  EXPECT_DOUBLE_EQ(d.mean, 42.0);
  EXPECT_DOUBLE_EQ(d.median, 42.0);
  EXPECT_DOUBLE_EQ(d.min, 42.0);
  EXPECT_DOUBLE_EQ(d.max, 42.0);
}

TEST(Pearson, PerfectPositiveCorrelation) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{2, 4, 6, 8};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
}

TEST(Pearson, PerfectNegativeCorrelation) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, y), -1.0, 1e-12);
}

TEST(JensenShannon, IdenticalDistributionsScoreZero) {
  IntHistogram p, q;
  for (int i = 0; i < 10; ++i) {
    p.add(i % 3);
    q.add(i % 3);
  }
  EXPECT_NEAR(jensen_shannon(p, q), 0.0, 1e-12);
}

TEST(JensenShannon, ScaleInvariant) {
  IntHistogram p, q;
  p.add(1, 2);
  p.add(2, 4);
  q.add(1, 200);
  q.add(2, 400);
  EXPECT_NEAR(jensen_shannon(p, q), 0.0, 1e-12);
}

TEST(JensenShannon, DisjointSupportsScoreLn2) {
  IntHistogram p, q;
  p.add(1);
  q.add(2);
  EXPECT_NEAR(jensen_shannon(p, q), std::log(2.0), 1e-12);
}

TEST(JensenShannon, SymmetricAndBounded) {
  IntHistogram p, q;
  p.add(1, 3);
  p.add(2, 1);
  q.add(1, 1);
  q.add(3, 2);
  const double pq = jensen_shannon(p, q);
  EXPECT_NEAR(pq, jensen_shannon(q, p), 1e-12);
  EXPECT_GT(pq, 0.0);
  EXPECT_LT(pq, std::log(2.0) + 1e-12);
}

TEST(JensenShannon, EmptyCases) {
  IntHistogram empty, p;
  p.add(5);
  EXPECT_EQ(jensen_shannon(empty, empty), 0.0);
  EXPECT_NEAR(jensen_shannon(empty, p), std::log(2.0), 1e-12);
}

TEST(JensenShannon, MoreDifferentScoresHigher) {
  IntHistogram base, near, far;
  for (int i = 0; i < 100; ++i) base.add(i % 5);
  for (int i = 0; i < 100; ++i) near.add(i % 5 == 0 ? 1 : i % 5);
  for (int i = 0; i < 100; ++i) far.add(10 + i % 2);
  EXPECT_LT(jensen_shannon(base, near), jensen_shannon(base, far));
}

TEST(Pearson, DegenerateInputsReturnZero) {
  const std::vector<double> x{1, 1, 1};
  const std::vector<double> y{1, 2, 3};
  EXPECT_EQ(pearson(x, y), 0.0);                      // zero variance
  EXPECT_EQ(pearson(x, std::vector<double>{1.0}), 0.0);  // size mismatch
}

}  // namespace
}  // namespace cwgl::util

#include "util/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/error.hpp"

namespace cwgl::util {
namespace {

std::string render(void (*build)(JsonWriter&)) {
  std::ostringstream out;
  JsonWriter j(out);
  build(j);
  EXPECT_TRUE(j.complete());
  return out.str();
}

TEST(JsonWriter, EmptyObjectAndArray) {
  EXPECT_EQ(render([](JsonWriter& j) {
              j.begin_object();
              j.end_object();
            }),
            "{}");
  EXPECT_EQ(render([](JsonWriter& j) {
              j.begin_array();
              j.end_array();
            }),
            "[]");
}

TEST(JsonWriter, ObjectWithMixedFields) {
  const std::string text = render([](JsonWriter& j) {
    j.begin_object();
    j.field("name", "cwgl");
    j.field("count", 42);
    j.field("ratio", 0.5);
    j.field("ok", true);
    j.key("nothing");
    j.null();
    j.end_object();
  });
  EXPECT_EQ(text,
            "{\"name\":\"cwgl\",\"count\":42,\"ratio\":0.5,\"ok\":true,"
            "\"nothing\":null}");
}

TEST(JsonWriter, ArrayCommas) {
  const std::string text = render([](JsonWriter& j) {
    j.begin_array();
    j.value(1);
    j.value(2);
    j.value(3);
    j.end_array();
  });
  EXPECT_EQ(text, "[1,2,3]");
}

TEST(JsonWriter, NestedStructures) {
  const std::string text = render([](JsonWriter& j) {
    j.begin_object();
    j.key("rows");
    j.begin_array();
    j.begin_object();
    j.field("x", 1);
    j.end_object();
    j.begin_object();
    j.field("x", 2);
    j.end_object();
    j.end_array();
    j.end_object();
  });
  EXPECT_EQ(text, "{\"rows\":[{\"x\":1},{\"x\":2}]}");
}

TEST(JsonWriter, StringEscaping) {
  const std::string text = render([](JsonWriter& j) {
    j.value("a\"b\\c\nd\te");
  });
  EXPECT_EQ(text, "\"a\\\"b\\\\c\\nd\\te\"");
}

TEST(JsonWriter, ControlCharactersEscaped) {
  std::ostringstream out;
  JsonWriter j(out);
  j.value(std::string_view("\x01", 1));
  EXPECT_EQ(out.str(), "\"\\u0001\"");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  const std::string text = render([](JsonWriter& j) {
    j.begin_array();
    j.value(std::nan(""));
    j.value(std::numeric_limits<double>::infinity());
    j.value(1.5);
    j.end_array();
  });
  EXPECT_EQ(text, "[null,null,1.5]");
}

TEST(JsonWriter, MisuseThrows) {
  std::ostringstream out;
  {
    JsonWriter j(out);
    EXPECT_THROW(j.key("k"), InvalidArgument);  // key outside object
  }
  {
    JsonWriter j(out);
    j.begin_object();
    EXPECT_THROW(j.value(1), InvalidArgument);  // value without key
  }
  {
    JsonWriter j(out);
    j.begin_array();
    EXPECT_THROW(j.end_object(), InvalidArgument);  // mismatched close
  }
  {
    JsonWriter j(out);
    j.value(1);
    EXPECT_THROW(j.value(2), InvalidArgument);  // two roots
  }
}

TEST(JsonWriter, CompleteOnlyWhenBalanced) {
  std::ostringstream out;
  JsonWriter j(out);
  EXPECT_FALSE(j.complete());
  j.begin_object();
  EXPECT_FALSE(j.complete());
  j.end_object();
  EXPECT_TRUE(j.complete());
}

TEST(JsonWriter, RawEmbedsPreSerializedValue) {
  std::ostringstream out;
  JsonWriter j(out);
  j.begin_object();
  j.key("metrics");
  j.raw(R"({"counters":{"a.b.c":1}})");
  j.field("after", 2);
  j.end_object();
  EXPECT_TRUE(j.complete());
  EXPECT_EQ(out.str(), R"({"metrics":{"counters":{"a.b.c":1}},"after":2})");
}

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_EQ(parse_json("true").as_bool(), true);
  EXPECT_EQ(parse_json("false").as_bool(), false);
  EXPECT_EQ(parse_json("42").as_number(), 42.0);
  EXPECT_EQ(parse_json("-1.5e2").as_number(), -150.0);
  EXPECT_EQ(parse_json(R"("hi")").as_string(), "hi");
}

TEST(JsonParse, NestedContainers) {
  const JsonValue doc = parse_json(
      R"({"name":"cwgl","tags":[1,2,3],"nested":{"ok":true,"x":null}})");
  EXPECT_EQ(doc.at("name").as_string(), "cwgl");
  const auto& tags = doc.at("tags").as_array();
  ASSERT_EQ(tags.size(), 3u);
  EXPECT_EQ(tags[1].as_number(), 2.0);
  EXPECT_TRUE(doc.at("nested").at("ok").as_bool());
  EXPECT_TRUE(doc.at("nested").at("x").is_null());
  EXPECT_TRUE(doc.contains("name"));
  EXPECT_FALSE(doc.contains("missing"));
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parse_json(R"("a\"b\\c\nd\t")").as_string(), "a\"b\\c\nd\t");
  // \u via BMP and a surrogate pair (U+1F600 -> 4-byte UTF-8).
  EXPECT_EQ(parse_json(R"("\u0041")").as_string(), "A");
  EXPECT_EQ(parse_json(R"("\uD83D\uDE00")").as_string(), "\xF0\x9F\x98\x80");
}

TEST(JsonParse, RoundTripsWriterOutput) {
  std::ostringstream out;
  JsonWriter j(out);
  j.begin_object();
  j.field("count", 3);
  j.field("label", "a \"quoted\" name");
  j.key("values");
  j.begin_array();
  j.value(1.5);
  j.value(false);
  j.end_array();
  j.end_object();
  const JsonValue doc = parse_json(out.str());
  EXPECT_EQ(doc.at("count").as_number(), 3.0);
  EXPECT_EQ(doc.at("label").as_string(), "a \"quoted\" name");
  EXPECT_EQ(doc.at("values").as_array()[0].as_number(), 1.5);
}

TEST(JsonSerialize, ToJsonStringRoundTripsParsedDocuments) {
  // The serve protocol re-serializes parsed `payload` subtrees with
  // to_json_string: semantics must survive, keys come out sorted, and
  // integral doubles print without a fraction.
  const std::string canonical =
      R"({"a":[1,2.5,true,null,"x"],"b":{"nested":-7},"c":false})";
  EXPECT_EQ(to_json_string(parse_json(canonical)), canonical);

  // Unsorted input keys are normalized; a second round trip is stable.
  const std::string normalized =
      to_json_string(parse_json(R"({"z":1,"a":{"k":0.125}})"));
  EXPECT_EQ(normalized, R"({"a":{"k":0.125},"z":1})");
  EXPECT_EQ(to_json_string(parse_json(normalized)), normalized);

  // Escapes survive the round trip.
  EXPECT_EQ(to_json_string(parse_json(R"(["a\"b\\c\nd"])")),
            R"(["a\"b\\c\nd"])");

  std::ostringstream out;
  write_json(out, parse_json("[0,9007199254740992]"));
  EXPECT_EQ(out.str(), "[0,9007199254740992]");  // exact up to 2^53
}

TEST(JsonParse, RejectsMalformedDocuments) {
  EXPECT_THROW(parse_json(""), ParseError);
  EXPECT_THROW(parse_json("{"), ParseError);
  EXPECT_THROW(parse_json("[1,]"), ParseError);
  EXPECT_THROW(parse_json("{\"a\":1,}"), ParseError);
  EXPECT_THROW(parse_json("01"), ParseError);       // leading zero
  EXPECT_THROW(parse_json("1 2"), ParseError);      // trailing content
  EXPECT_THROW(parse_json("\"\\x\""), ParseError);  // bad escape
  EXPECT_THROW(parse_json("nul"), ParseError);
}

TEST(JsonParse, RejectsRunawayNesting) {
  std::string deep(300, '[');
  deep += std::string(300, ']');
  EXPECT_THROW(parse_json(deep), ParseError);
}

TEST(JsonParse, AccessorsCheckKind) {
  const JsonValue doc = parse_json("[1]");
  EXPECT_THROW(doc.as_object(), InvalidArgument);
  EXPECT_THROW(doc.at("key"), InvalidArgument);
  EXPECT_EQ(doc.as_array()[0].as_number(), 1.0);
  EXPECT_THROW(doc.as_array()[0].as_string(), InvalidArgument);
}

}  // namespace
}  // namespace cwgl::util

#include "util/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/error.hpp"

namespace cwgl::util {
namespace {

std::string render(void (*build)(JsonWriter&)) {
  std::ostringstream out;
  JsonWriter j(out);
  build(j);
  EXPECT_TRUE(j.complete());
  return out.str();
}

TEST(JsonWriter, EmptyObjectAndArray) {
  EXPECT_EQ(render([](JsonWriter& j) {
              j.begin_object();
              j.end_object();
            }),
            "{}");
  EXPECT_EQ(render([](JsonWriter& j) {
              j.begin_array();
              j.end_array();
            }),
            "[]");
}

TEST(JsonWriter, ObjectWithMixedFields) {
  const std::string text = render([](JsonWriter& j) {
    j.begin_object();
    j.field("name", "cwgl");
    j.field("count", 42);
    j.field("ratio", 0.5);
    j.field("ok", true);
    j.key("nothing");
    j.null();
    j.end_object();
  });
  EXPECT_EQ(text,
            "{\"name\":\"cwgl\",\"count\":42,\"ratio\":0.5,\"ok\":true,"
            "\"nothing\":null}");
}

TEST(JsonWriter, ArrayCommas) {
  const std::string text = render([](JsonWriter& j) {
    j.begin_array();
    j.value(1);
    j.value(2);
    j.value(3);
    j.end_array();
  });
  EXPECT_EQ(text, "[1,2,3]");
}

TEST(JsonWriter, NestedStructures) {
  const std::string text = render([](JsonWriter& j) {
    j.begin_object();
    j.key("rows");
    j.begin_array();
    j.begin_object();
    j.field("x", 1);
    j.end_object();
    j.begin_object();
    j.field("x", 2);
    j.end_object();
    j.end_array();
    j.end_object();
  });
  EXPECT_EQ(text, "{\"rows\":[{\"x\":1},{\"x\":2}]}");
}

TEST(JsonWriter, StringEscaping) {
  const std::string text = render([](JsonWriter& j) {
    j.value("a\"b\\c\nd\te");
  });
  EXPECT_EQ(text, "\"a\\\"b\\\\c\\nd\\te\"");
}

TEST(JsonWriter, ControlCharactersEscaped) {
  std::ostringstream out;
  JsonWriter j(out);
  j.value(std::string_view("\x01", 1));
  EXPECT_EQ(out.str(), "\"\\u0001\"");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  const std::string text = render([](JsonWriter& j) {
    j.begin_array();
    j.value(std::nan(""));
    j.value(std::numeric_limits<double>::infinity());
    j.value(1.5);
    j.end_array();
  });
  EXPECT_EQ(text, "[null,null,1.5]");
}

TEST(JsonWriter, MisuseThrows) {
  std::ostringstream out;
  {
    JsonWriter j(out);
    EXPECT_THROW(j.key("k"), InvalidArgument);  // key outside object
  }
  {
    JsonWriter j(out);
    j.begin_object();
    EXPECT_THROW(j.value(1), InvalidArgument);  // value without key
  }
  {
    JsonWriter j(out);
    j.begin_array();
    EXPECT_THROW(j.end_object(), InvalidArgument);  // mismatched close
  }
  {
    JsonWriter j(out);
    j.value(1);
    EXPECT_THROW(j.value(2), InvalidArgument);  // two roots
  }
}

TEST(JsonWriter, CompleteOnlyWhenBalanced) {
  std::ostringstream out;
  JsonWriter j(out);
  EXPECT_FALSE(j.complete());
  j.begin_object();
  EXPECT_FALSE(j.complete());
  j.end_object();
  EXPECT_TRUE(j.complete());
}

}  // namespace
}  // namespace cwgl::util

#include "util/bounded_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

namespace cwgl::util {
namespace {

TEST(BoundedQueue, FifoOrderSingleThread) {
  BoundedQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(queue.push(i));
  for (int i = 0; i < 5; ++i) {
    const auto item = queue.pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);
  }
}

TEST(BoundedQueue, CloseDrainsThenEnds) {
  BoundedQueue<int> queue(8);
  EXPECT_TRUE(queue.push(1));
  EXPECT_TRUE(queue.push(2));
  queue.close();
  EXPECT_FALSE(queue.push(3));
  EXPECT_EQ(queue.pop(), std::optional<int>(1));
  EXPECT_EQ(queue.pop(), std::optional<int>(2));
  EXPECT_FALSE(queue.pop().has_value());
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(BoundedQueue, ZeroCapacityClampedToOne) {
  BoundedQueue<int> queue(0);
  EXPECT_EQ(queue.capacity(), 1u);
}

TEST(BoundedQueue, BackpressureBlocksProducerUntilConsumed) {
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.push(0));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    queue.push(1);  // blocks until the main thread pops
    second_pushed = true;
  });
  // The producer cannot complete while the queue is full.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_pushed.load());
  EXPECT_EQ(queue.pop(), std::optional<int>(0));
  EXPECT_EQ(queue.pop(), std::optional<int>(1));
  producer.join();
  EXPECT_TRUE(second_pushed.load());
}

TEST(BoundedQueue, CloseUnblocksWaitingProducer) {
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.push(0));
  std::atomic<bool> push_result{true};
  std::thread producer([&] { push_result = queue.push(1); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.close();
  producer.join();
  EXPECT_FALSE(push_result.load());
}

TEST(BoundedQueue, ManyProducersManyConsumersDeliverEverythingOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 2000;
  BoundedQueue<int> queue(16);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        EXPECT_TRUE(queue.push(p * kPerProducer + i));
      }
    });
  }
  std::vector<std::thread> consumers;
  std::vector<std::vector<int>> received(kConsumers);
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&queue, &received, c] {
      while (auto item = queue.pop()) received[static_cast<std::size_t>(c)].push_back(*item);
    });
  }
  for (auto& t : producers) t.join();
  queue.close();
  for (auto& t : consumers) t.join();

  std::vector<int> all;
  for (const auto& r : received) all.insert(all.end(), r.begin(), r.end());
  ASSERT_EQ(all.size(), static_cast<std::size_t>(kProducers * kPerProducer));
  std::sort(all.begin(), all.end());
  std::vector<int> expected(all.size());
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(all, expected);
}

}  // namespace
}  // namespace cwgl::util

#include "util/bounded_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

namespace cwgl::util {
namespace {

TEST(BoundedQueue, FifoOrderSingleThread) {
  BoundedQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(queue.push(i));
  for (int i = 0; i < 5; ++i) {
    const auto item = queue.pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);
  }
}

TEST(BoundedQueue, CloseDrainsThenEnds) {
  BoundedQueue<int> queue(8);
  EXPECT_TRUE(queue.push(1));
  EXPECT_TRUE(queue.push(2));
  queue.close();
  EXPECT_FALSE(queue.push(3));
  EXPECT_EQ(queue.pop(), std::optional<int>(1));
  EXPECT_EQ(queue.pop(), std::optional<int>(2));
  EXPECT_FALSE(queue.pop().has_value());
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(BoundedQueue, ZeroCapacityClampedToOne) {
  BoundedQueue<int> queue(0);
  EXPECT_EQ(queue.capacity(), 1u);
}

TEST(BoundedQueue, BackpressureBlocksProducerUntilConsumed) {
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.push(0));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    queue.push(1);  // blocks until the main thread pops
    second_pushed = true;
  });
  // The producer cannot complete while the queue is full.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_pushed.load());
  EXPECT_EQ(queue.pop(), std::optional<int>(0));
  EXPECT_EQ(queue.pop(), std::optional<int>(1));
  producer.join();
  EXPECT_TRUE(second_pushed.load());
}

TEST(BoundedQueue, CloseUnblocksWaitingProducer) {
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.push(0));
  std::atomic<bool> push_result{true};
  std::thread producer([&] { push_result = queue.push(1); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.close();
  producer.join();
  EXPECT_FALSE(push_result.load());
}

TEST(BoundedQueue, ManyProducersManyConsumersDeliverEverythingOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 2000;
  BoundedQueue<int> queue(16);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        EXPECT_TRUE(queue.push(p * kPerProducer + i));
      }
    });
  }
  std::vector<std::thread> consumers;
  std::vector<std::vector<int>> received(kConsumers);
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&queue, &received, c] {
      while (auto item = queue.pop()) received[static_cast<std::size_t>(c)].push_back(*item);
    });
  }
  for (auto& t : producers) t.join();
  queue.close();
  for (auto& t : consumers) t.join();

  std::vector<int> all;
  for (const auto& r : received) all.insert(all.end(), r.begin(), r.end());
  ASSERT_EQ(all.size(), static_cast<std::size_t>(kProducers * kPerProducer));
  std::sort(all.begin(), all.end());
  std::vector<int> expected(all.size());
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(all, expected);
}

TEST(BoundedQueueTimed, PushTimesOutOnFullQueue) {
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.push(0));
  EXPECT_EQ(queue.try_push_for(1, std::chrono::milliseconds(5)),
            QueueResult::TimedOut);
  // The shed item was dropped, not enqueued out of order.
  EXPECT_EQ(queue.pop(), std::optional<int>(0));
  EXPECT_EQ(queue.try_push_for(2, std::chrono::milliseconds(0)),
            QueueResult::Ok);
  EXPECT_EQ(queue.pop(), std::optional<int>(2));
}

TEST(BoundedQueueTimed, PopTimesOutOnEmptyQueue) {
  BoundedQueue<int> queue(4);
  int out = -1;
  EXPECT_EQ(queue.try_pop_for(std::chrono::milliseconds(5), out),
            QueueResult::TimedOut);
  EXPECT_EQ(out, -1);
  ASSERT_TRUE(queue.push(7));
  EXPECT_EQ(queue.try_pop_for(std::chrono::milliseconds(0), out),
            QueueResult::Ok);
  EXPECT_EQ(out, 7);
}

TEST(BoundedQueueTimed, ZeroTimeoutIsAPureTry) {
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.push(0));
  EXPECT_EQ(queue.try_push_for(1, std::chrono::seconds(0)),
            QueueResult::TimedOut);
  int out = 0;
  EXPECT_EQ(queue.try_pop_for(std::chrono::seconds(0), out), QueueResult::Ok);
  EXPECT_EQ(queue.try_pop_for(std::chrono::seconds(0), out),
            QueueResult::TimedOut);
}

TEST(BoundedQueueTimed, CloseWakesTimedPusherWithClosedNotTimeout) {
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.push(0));
  std::atomic<QueueResult> result{QueueResult::Ok};
  std::thread producer([&] {
    // Far longer than the test runs: only close() can release this waiter,
    // and it must report Closed — not let the deadline win the race.
    result = queue.try_push_for(1, std::chrono::seconds(60));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.close();
  producer.join();
  EXPECT_EQ(result.load(), QueueResult::Closed);
}

TEST(BoundedQueueTimed, CloseWakesTimedPopperWithClosedNotTimeout) {
  BoundedQueue<int> queue(1);
  std::atomic<QueueResult> result{QueueResult::Ok};
  std::thread consumer([&] {
    int out = 0;
    result = queue.try_pop_for(std::chrono::seconds(60), out);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.close();
  consumer.join();
  EXPECT_EQ(result.load(), QueueResult::Closed);
}

TEST(BoundedQueueTimed, ClosedQueueStillDrainsViaTimedPop) {
  BoundedQueue<int> queue(4);
  ASSERT_TRUE(queue.push(1));
  ASSERT_TRUE(queue.push(2));
  queue.close();
  EXPECT_EQ(queue.try_push_for(3, std::chrono::milliseconds(5)),
            QueueResult::Closed);
  int out = 0;
  EXPECT_EQ(queue.try_pop_for(std::chrono::milliseconds(0), out),
            QueueResult::Ok);
  EXPECT_EQ(out, 1);
  EXPECT_EQ(queue.try_pop_for(std::chrono::milliseconds(0), out),
            QueueResult::Ok);
  EXPECT_EQ(out, 2);
  // Drained + closed is the definitive stop signal.
  EXPECT_EQ(queue.try_pop_for(std::chrono::milliseconds(0), out),
            QueueResult::Closed);
}

TEST(BoundedQueueTimed, MixedTimedAndBlockingTrafficDeliversEverythingOnce) {
  constexpr int kProducers = 2;
  constexpr int kPerProducer = 500;
  BoundedQueue<int> queue(8);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int item = p * kPerProducer + i;
        // Retry a timed push until it lands; exercises the timeout path
        // under real contention without ever losing an item.
        while (queue.try_push_for(item, std::chrono::microseconds(50)) !=
               QueueResult::Ok) {
        }
      }
    });
  }
  std::vector<int> received;
  std::thread consumer([&] {
    int out = 0;
    while (true) {
      const QueueResult r = queue.try_pop_for(std::chrono::milliseconds(1), out);
      if (r == QueueResult::Ok) received.push_back(out);
      if (r == QueueResult::Closed) break;
    }
  });
  for (auto& t : producers) t.join();
  queue.close();
  consumer.join();
  ASSERT_EQ(received.size(), static_cast<std::size_t>(kProducers * kPerProducer));
  std::sort(received.begin(), received.end());
  std::vector<int> expected(received.size());
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(received, expected);
}

}  // namespace
}  // namespace cwgl::util

#include "util/failpoint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <vector>

#include "util/error.hpp"

namespace cwgl::util {
namespace {

// The registry is process-global: every test restores the clean state so
// ordering cannot matter.
class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::clear(); }
};

TEST_F(FailpointTest, UnconfiguredSitesAreNoOps) {
  failpoint::clear();
  EXPECT_FALSE(failpoint::configured("nothing.here"));
  failpoint::hit("nothing.here");                       // must not throw
  EXPECT_EQ(failpoint::clamp("nothing.here", 42u), 42u);
}

TEST_F(FailpointTest, ConfigureParsesSitesAndModes) {
  failpoint::configure("a.b=error;c.d=delay:2ms@0.5;e.f=short-read:3*2");
  EXPECT_TRUE(failpoint::configured("a.b"));
  EXPECT_TRUE(failpoint::configured("c.d"));
  EXPECT_TRUE(failpoint::configured("e.f"));
  EXPECT_FALSE(failpoint::configured("a.c"));
}

TEST_F(FailpointTest, MalformedSpecThrows) {
  EXPECT_THROW(failpoint::configure("novalue"), InvalidArgument);
  EXPECT_THROW(failpoint::configure("a.b=bogusmode"), InvalidArgument);
  EXPECT_THROW(failpoint::configure("a.b=error@notanumber"), InvalidArgument);
  EXPECT_THROW(failpoint::configure("a.b=error@1.5"), InvalidArgument);
}

TEST_F(FailpointTest, ErrorModeThrowsFailpointError) {
  failpoint::configure("x.y=error");
  EXPECT_THROW(failpoint::hit("x.y"), FailpointError);
  // FailpointError is an Error, so library catch sites treat it like a
  // genuine failure.
  EXPECT_THROW(failpoint::hit("x.y"), Error);
}

TEST_F(FailpointTest, ThrowModeThrowsForeignException) {
  failpoint::configure("x.y=throw");
  EXPECT_THROW(failpoint::hit("x.y"), std::runtime_error);
}

TEST_F(FailpointTest, LimitStopsTriggering) {
  failpoint::configure("x.y=error*2");
  EXPECT_THROW(failpoint::hit("x.y"), FailpointError);
  EXPECT_THROW(failpoint::hit("x.y"), FailpointError);
  failpoint::hit("x.y");  // third visit: limit exhausted, no throw
  const auto report = failpoint::report();
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(report[0].site, "x.y");
  EXPECT_EQ(report[0].visits, 3u);
  EXPECT_EQ(report[0].triggers, 2u);
}

TEST_F(FailpointTest, ProbabilityIsDeterministicForSeed) {
  const auto run = [] {
    failpoint::configure("x.y=error@0.5;seed=1234");
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      bool threw = false;
      try {
        failpoint::hit("x.y");
      } catch (const FailpointError&) {
        threw = true;
      }
      fired.push_back(threw);
    }
    return fired;
  };
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first, second);
  // p=0.5 over 64 visits: statistically certain to both fire and not fire.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), false), 0);
}

TEST_F(FailpointTest, ShortReadClampsRequestedSize) {
  failpoint::configure("io.block=short-read:7");
  EXPECT_EQ(failpoint::clamp("io.block", 100u), 7u);
  EXPECT_EQ(failpoint::clamp("io.block", 3u), 3u);  // already smaller
  // A short-read site never fires through hit() (control path).
  failpoint::hit("io.block");
}

TEST_F(FailpointTest, ErrorSiteDoesNotClamp) {
  failpoint::configure("io.block=error");
  // clamp() is the size path; an error-mode site must not mangle sizes.
  EXPECT_EQ(failpoint::clamp("io.block", 100u), 100u);
}

TEST_F(FailpointTest, DelayModeSleeps) {
  failpoint::configure("x.y=delay:5ms");
  const auto start = std::chrono::steady_clock::now();
  failpoint::hit("x.y");
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::milliseconds(4));
}

TEST_F(FailpointTest, ClearDeactivatesEverything) {
  failpoint::configure("x.y=error");
  failpoint::clear();
  failpoint::hit("x.y");  // no throw
  EXPECT_TRUE(failpoint::report().empty());
}

TEST_F(FailpointTest, EmptySpecDeactivates) {
  failpoint::configure("x.y=error");
  failpoint::configure("");
  failpoint::hit("x.y");  // no throw
}

TEST_F(FailpointTest, CompiledInReflectsBuildFlag) {
#if defined(CWGL_FAILPOINTS_ENABLED)
  EXPECT_TRUE(failpoint::compiled_in());
#else
  EXPECT_FALSE(failpoint::compiled_in());
#endif
}

}  // namespace
}  // namespace cwgl::util

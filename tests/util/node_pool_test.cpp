#include "util/node_pool.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace cwgl::util {
namespace {

TEST(NodePool, CreateReturnsStableAddresses) {
  NodePool<int> pool(4);  // tiny chunks so several are allocated
  std::vector<int*> ptrs;
  for (int i = 0; i < 100; ++i) ptrs.push_back(pool.create(i));
  ASSERT_EQ(pool.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(*ptrs[i], i);
}

TEST(NodePool, SizeCountsAcrossChunks) {
  NodePool<int> pool(8);
  EXPECT_EQ(pool.size(), 0u);
  for (int i = 0; i < 17; ++i) pool.create(i);
  EXPECT_EQ(pool.size(), 17u);  // 2 full chunks + 1 in the third
}

TEST(NodePool, ForwardsConstructorArguments) {
  NodePool<std::string> pool;
  std::string* s = pool.create(3, 'x');
  EXPECT_EQ(*s, "xxx");
}

struct Tracked {
  static int live;
  int payload;
  explicit Tracked(int p) : payload(p) { ++live; }
  ~Tracked() { --live; }
};
int Tracked::live = 0;

TEST(NodePool, DestroysEveryConstructedObject) {
  Tracked::live = 0;
  {
    NodePool<Tracked> pool(4);
    for (int i = 0; i < 11; ++i) pool.create(i);
    EXPECT_EQ(Tracked::live, 11);
  }
  EXPECT_EQ(Tracked::live, 0);
}

struct ThrowsOnN {
  static int constructed;
  static int threshold;
  explicit ThrowsOnN(int) {
    if (constructed >= threshold) throw std::runtime_error("boom");
    ++constructed;
  }
  ~ThrowsOnN() { --constructed; }
};
int ThrowsOnN::constructed = 0;
int ThrowsOnN::threshold = 0;

TEST(NodePool, ThrowingConstructorLeavesPoolConsistent) {
  ThrowsOnN::constructed = 0;
  ThrowsOnN::threshold = 5;
  NodePool<ThrowsOnN> pool(2);
  for (int i = 0; i < 5; ++i) pool.create(i);
  EXPECT_EQ(pool.size(), 5u);
  EXPECT_THROW(pool.create(5), std::runtime_error);
  // The failed slot is not counted and must not be destroyed later.
  EXPECT_EQ(pool.size(), 5u);
  ThrowsOnN::threshold = 10;
  pool.create(6);
  EXPECT_EQ(pool.size(), 6u);
}

TEST(NodePool, MoveTransfersOwnership) {
  NodePool<int> a(4);
  int* p = a.create(42);
  NodePool<int> b(std::move(a));
  EXPECT_EQ(b.size(), 1u);
  EXPECT_EQ(*p, 42);  // address survives the move
}

TEST(NodePool, HoldsMoveOnlyTypes) {
  NodePool<std::unique_ptr<int>> pool(4);
  auto* slot = pool.create(std::make_unique<int>(7));
  EXPECT_EQ(**slot, 7);
}

}  // namespace
}  // namespace cwgl::util

#include "util/crc32.hpp"

#include <gtest/gtest.h>

#include <string>

namespace cwgl::util {
namespace {

TEST(Crc32Test, KnownVectors) {
  // The CRC-32/ISO-HDLC check value every implementation must reproduce.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0x00000000u);
  EXPECT_EQ(crc32("a"), 0xE8B7BE43u);
}

TEST(Crc32Test, IncrementalUpdateMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  for (std::size_t split = 0; split <= data.size(); ++split) {
    std::uint32_t crc = kCrc32Init;
    crc = crc32_update(crc, data.data(), split);
    crc = crc32_update(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc32_finish(crc), crc32(data)) << "split at " << split;
  }
}

TEST(Crc32Test, DetectsSingleBitFlips) {
  std::string data = "cwgl model snapshot payload";
  const std::uint32_t clean = crc32(data);
  for (std::size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      data[byte] ^= static_cast<char>(1 << bit);
      EXPECT_NE(crc32(data), clean) << "byte " << byte << " bit " << bit;
      data[byte] ^= static_cast<char>(1 << bit);
    }
  }
}

}  // namespace
}  // namespace cwgl::util

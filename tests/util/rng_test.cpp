#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

namespace cwgl::util {
namespace {

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro, DeterministicForSeed) {
  Xoshiro256StarStar a(99), b(99);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, UniformIntStaysInClosedRange) {
  Xoshiro256StarStar rng(7);
  for (int i = 0; i < 10000; ++i) {
    const int v = rng.uniform_int(-3, 12);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 12);
  }
}

TEST(Xoshiro, UniformIntDegenerateRange) {
  Xoshiro256StarStar rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Xoshiro, UniformIntCoversAllValues) {
  Xoshiro256StarStar rng(11);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Xoshiro, Uniform01InHalfOpenUnitInterval) {
  Xoshiro256StarStar rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro, Uniform01MeanNearHalf) {
  Xoshiro256StarStar rng(5);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Xoshiro, BernoulliEdgeProbabilities) {
  Xoshiro256StarStar rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-1.0));
    EXPECT_TRUE(rng.bernoulli(2.0));
  }
}

TEST(Xoshiro, BernoulliFrequencyMatchesP) {
  Xoshiro256StarStar rng(17);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Xoshiro, DiscretePicksOnlyPositiveWeightIndices) {
  Xoshiro256StarStar rng(23);
  const double weights[] = {0.0, 1.0, 0.0, 2.0};
  for (int i = 0; i < 1000; ++i) {
    const std::size_t pick = rng.discrete(weights);
    EXPECT_TRUE(pick == 1 || pick == 3);
  }
}

TEST(Xoshiro, DiscreteProportions) {
  Xoshiro256StarStar rng(29);
  const double weights[] = {1.0, 3.0};
  int ones = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) ones += (rng.discrete(weights) == 1);
  EXPECT_NEAR(static_cast<double>(ones) / kN, 0.75, 0.01);
}

TEST(Xoshiro, DiscreteZeroTotalFallsBackToZero) {
  Xoshiro256StarStar rng(31);
  const double weights[] = {0.0, 0.0};
  EXPECT_EQ(rng.discrete(weights), 0u);
}

TEST(Xoshiro, TruncatedGeometricRespectsBounds) {
  Xoshiro256StarStar rng(37);
  for (int i = 0; i < 10000; ++i) {
    const int v = rng.truncated_geometric(2, 31, 0.3);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 31);
  }
}

TEST(Xoshiro, TruncatedGeometricDecays) {
  Xoshiro256StarStar rng(41);
  int low = 0, high = 0;
  for (int i = 0; i < 20000; ++i) {
    const int v = rng.truncated_geometric(2, 31, 0.3);
    low += (v <= 5);
    high += (v >= 20);
  }
  EXPECT_GT(low, high * 10);
}

TEST(Xoshiro, TruncatedGeometricPOneReturnsLo) {
  Xoshiro256StarStar rng(43);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.truncated_geometric(4, 9, 1.0), 4);
}

TEST(Xoshiro, NormalMomentsMatch) {
  Xoshiro256StarStar rng(47);
  double sum = 0.0, sq = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Xoshiro, ShufflePreservesMultiset) {
  Xoshiro256StarStar rng(53);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto w = v;
  rng.shuffle(w);
  EXPECT_NE(v, w);  // astronomically unlikely to be identity
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Xoshiro, SampleWithoutReplacementDistinct) {
  Xoshiro256StarStar rng(59);
  for (int trial = 0; trial < 100; ++trial) {
    const auto picks = rng.sample_without_replacement(50, 10);
    ASSERT_EQ(picks.size(), 10u);
    std::set<std::size_t> unique(picks.begin(), picks.end());
    EXPECT_EQ(unique.size(), 10u);
    for (std::size_t p : picks) EXPECT_LT(p, 50u);
  }
}

TEST(Xoshiro, SampleWithoutReplacementAllWhenKGeN) {
  Xoshiro256StarStar rng(61);
  const auto picks = rng.sample_without_replacement(5, 9);
  ASSERT_EQ(picks.size(), 5u);
  std::set<std::size_t> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(HashCombine, OrderSensitive) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

TEST(HashCombine, Deterministic) {
  EXPECT_EQ(hash_combine(42, 99), hash_combine(42, 99));
}

}  // namespace
}  // namespace cwgl::util

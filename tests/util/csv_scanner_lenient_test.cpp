#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "util/csv_scanner.hpp"
#include "util/diagnostics.hpp"
#include "util/error.hpp"

namespace cwgl::util {
namespace {

std::vector<std::vector<std::string>> scan_all(std::istream& in,
                                               CsvScanPolicy policy,
                                               std::size_t block = 16) {
  CsvScanner scanner(in, block, policy);
  std::vector<std::vector<std::string>> records;
  while (const auto fields = scanner.next()) {
    records.emplace_back(fields->begin(), fields->end());
  }
  return records;
}

TEST(CsvScannerLenient, StrictStillThrowsOnUnterminatedQuote) {
  std::istringstream in("a,b\n\"unterminated");
  CsvScanner scanner(in);
  ASSERT_TRUE(scanner.next().has_value());
  EXPECT_THROW(scanner.next(), ParseError);
}

TEST(CsvScannerLenient, QuarantinesDamagedTailRecord) {
  std::istringstream in("a,b\nc,d\n\"unterminated");
  const auto records = scan_all(in, {.lenient = true});
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(records[1], (std::vector<std::string>{"c", "d"}));
}

TEST(CsvScannerLenient, ResyncsAtNextLineAndKeepsGoing) {
  // The unterminated quote swallows the rest of its line plus the newline;
  // lenient mode must resume at the line after the damage.
  std::istringstream in("a,b\n\"oops,x\nc,d\ne,f\n");
  Diagnostics diagnostics;
  CsvScanner scanner(in, 8, {.lenient = true, .diagnostics = &diagnostics});
  std::vector<std::vector<std::string>> records;
  while (const auto fields = scanner.next()) {
    records.emplace_back(fields->begin(), fields->end());
  }
  // The damaged record consumes until EOF (no closing quote), so everything
  // after "a,b" is quarantined as ONE record and resync lands... wherever
  // the first newline inside the swallowed bytes is: "c,d" and "e,f" are
  // recovered.
  ASSERT_GE(records.size(), 1u);
  EXPECT_EQ(records[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(scanner.quarantined(), 1u);
  EXPECT_EQ(diagnostics.count_of("csv", "unterminated-quote"), 1u);
  // Recovery: the records after the damaged line came through.
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[1], (std::vector<std::string>{"c", "d"}));
  EXPECT_EQ(records[2], (std::vector<std::string>{"e", "f"}));
}

TEST(CsvScannerLenient, CleanInputIdenticalUnderBothPolicies) {
  const std::string csv =
      "a,b,c\n\"quoted,comma\",2,3\r\nx,\"doubled\"\"quote\",z\n";
  std::istringstream strict_in(csv);
  std::istringstream lenient_in(csv);
  const auto strict = scan_all(strict_in, {});
  const auto lenient = scan_all(lenient_in, {.lenient = true});
  EXPECT_EQ(strict, lenient);
  std::istringstream counter(csv);
  CsvScanner scanner(counter, 16, {.lenient = true});
  while (scanner.next()) {
  }
  EXPECT_EQ(scanner.quarantined(), 0u);
}

TEST(CsvScannerLenient, ScanCsvRecordsForwardsPolicy) {
  std::istringstream in("a,b\n\"unterminated");
  std::size_t visited = 0;
  const auto total = scan_csv_records(
      in,
      [&](std::span<const std::string_view>) {
        ++visited;
        return true;
      },
      {.lenient = true});
  EXPECT_EQ(visited, 1u);
  EXPECT_EQ(total, 1u);
}

}  // namespace
}  // namespace cwgl::util

#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace cwgl::util {
namespace {

std::vector<std::vector<std::string>> parse_all(const std::string& text) {
  std::istringstream in(text);
  std::vector<std::vector<std::string>> rows;
  CsvReader reader(in);
  std::vector<std::string> fields;
  while (reader.next(fields)) rows.push_back(fields);
  return rows;
}

TEST(CsvReader, SimpleRows) {
  const auto rows = parse_all("a,b,c\n1,2,3\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2", "3"}));
}

TEST(CsvReader, MissingTrailingNewline) {
  const auto rows = parse_all("a,b\nc,d");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], (std::vector<std::string>{"c", "d"}));
}

TEST(CsvReader, CrLfLineEndings) {
  const auto rows = parse_all("a,b\r\nc,d\r\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
}

TEST(CsvReader, EmptyFields) {
  const auto rows = parse_all(",,\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"", "", ""}));
}

TEST(CsvReader, QuotedFieldWithComma) {
  const auto rows = parse_all("\"a,b\",c\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a,b", "c"}));
}

TEST(CsvReader, QuotedFieldWithEscapedQuote) {
  const auto rows = parse_all("\"he said \"\"hi\"\"\",x\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "he said \"hi\"");
}

TEST(CsvReader, QuotedFieldWithEmbeddedNewline) {
  const auto rows = parse_all("\"line1\nline2\",x\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "line1\nline2");
}

TEST(CsvReader, UnterminatedQuoteThrows) {
  std::istringstream in("\"oops");
  CsvReader reader(in);
  std::vector<std::string> fields;
  EXPECT_THROW(reader.next(fields), ParseError);
}

TEST(CsvReader, EmptyInputYieldsNoRecords) {
  const auto rows = parse_all("");
  EXPECT_TRUE(rows.empty());
}

TEST(CsvReader, RecordNumberAdvances) {
  std::istringstream in("a\nb\n");
  CsvReader reader(in);
  std::vector<std::string> fields;
  EXPECT_TRUE(reader.next(fields));
  EXPECT_EQ(reader.record_number(), 1u);
  EXPECT_TRUE(reader.next(fields));
  EXPECT_EQ(reader.record_number(), 2u);
  EXPECT_FALSE(reader.next(fields));
}

TEST(CsvEscape, PlainFieldUnchanged) { EXPECT_EQ(csv_escape("abc"), "abc"); }

TEST(CsvEscape, CommaTriggersQuoting) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
}

TEST(CsvEscape, QuoteDoubling) {
  EXPECT_EQ(csv_escape("a\"b"), "\"a\"\"b\"");
}

TEST(CsvEscape, NewlineTriggersQuoting) {
  EXPECT_EQ(csv_escape("a\nb"), "\"a\nb\"");
}

TEST(CsvRoundTrip, ArbitraryFieldsSurvive) {
  const std::vector<std::string> original{"plain", "with,comma", "with\"quote",
                                          "multi\nline", ""};
  std::ostringstream out;
  write_csv_record(out, original);
  const auto rows = parse_all(out.str());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], original);
}

TEST(ForEachCsvRecord, EarlyStop) {
  std::istringstream in("a\nb\nc\n");
  int seen = 0;
  const std::size_t visited =
      for_each_csv_record(in, [&](const std::vector<std::string>&) {
        ++seen;
        return seen < 2;
      });
  EXPECT_EQ(visited, 2u);
  EXPECT_EQ(seen, 2);
}

}  // namespace
}  // namespace cwgl::util

#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace cwgl::util {
namespace {

TEST(Split, BasicSplit) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Split, AdjacentSeparatorsYieldEmpties) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(Split, LeadingAndTrailingSeparators) {
  const auto parts = split(",x,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[2], "");
}

TEST(Split, EmptyInputGivesOneEmptyField) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Trim, StripsBothEnds) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim("hi"), "hi");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Join, WithSeparator) {
  const std::vector<std::string> parts{"a", "b", "c"};
  EXPECT_EQ(join(parts, "-"), "a-b-c");
  EXPECT_EQ(join({}, "-"), "");
}

TEST(ToInt, ParsesValidIntegers) {
  EXPECT_EQ(to_int("42").value(), 42);
  EXPECT_EQ(to_int("-17").value(), -17);
  EXPECT_EQ(to_int("0").value(), 0);
}

TEST(ToInt, RejectsGarbage) {
  EXPECT_FALSE(to_int("").has_value());
  EXPECT_FALSE(to_int("12x").has_value());
  EXPECT_FALSE(to_int("x12").has_value());
  EXPECT_FALSE(to_int("1.5").has_value());
  EXPECT_FALSE(to_int(" 1").has_value());
  EXPECT_FALSE(to_int("99999999999999999999999").has_value());
}

TEST(ToDouble, ParsesValidDoubles) {
  EXPECT_DOUBLE_EQ(to_double("2.5").value(), 2.5);
  EXPECT_DOUBLE_EQ(to_double("-0.25").value(), -0.25);
  EXPECT_DOUBLE_EQ(to_double("3").value(), 3.0);
}

TEST(ToDouble, RejectsGarbage) {
  EXPECT_FALSE(to_double("").has_value());
  EXPECT_FALSE(to_double("1.2.3").has_value());
  EXPECT_FALSE(to_double("abc").has_value());
}

TEST(AllDigits, OnlyAcceptsNonEmptyDigitRuns) {
  EXPECT_TRUE(all_digits("0123"));
  EXPECT_FALSE(all_digits(""));
  EXPECT_FALSE(all_digits("12a"));
  EXPECT_FALSE(all_digits("-1"));
}

TEST(Pad, LeftAndRight) {
  EXPECT_EQ(pad_left("ab", 5), "   ab");
  EXPECT_EQ(pad_right("ab", 5), "ab   ");
  EXPECT_EQ(pad_left("abcdef", 3), "abcdef");  // never truncates
  EXPECT_EQ(pad_right("abcdef", 3), "abcdef");
}

TEST(FormatDouble, FixedDecimals) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 0), "2");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
}

}  // namespace
}  // namespace cwgl::util

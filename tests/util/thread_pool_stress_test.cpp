// Stress coverage for the thread pool under the access patterns the
// concurrent featurization path creates: many external producers, failure
// propagation at scale, parallel_for_chunked re-entered from pool tasks
// (which requires the help-while-waiting protocol to avoid deadlock), and
// shutdown with work still queued.

#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace cwgl::util {
namespace {

TEST(ThreadPoolStress, ManyProducerSubmitStorm) {
  ThreadPool pool(4);
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 250;
  std::atomic<int> counter{0};
  std::vector<std::thread> producers;
  std::vector<std::vector<std::future<int>>> futures(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&pool, &futures, &counter, p] {
      futures[p].reserve(kPerProducer);
      for (int i = 0; i < kPerProducer; ++i) {
        futures[p].push_back(pool.submit([&counter, p, i] {
          ++counter;
          return p * kPerProducer + i;
        }));
      }
    });
  }
  for (auto& t : producers) t.join();
  for (int p = 0; p < kProducers; ++p) {
    for (int i = 0; i < kPerProducer; ++i) {
      EXPECT_EQ(futures[p][i].get(), p * kPerProducer + i);
    }
  }
  EXPECT_EQ(counter.load(), kProducers * kPerProducer);
}

TEST(ThreadPoolStress, EveryFailingTaskPropagatesItsOwnException) {
  ThreadPool pool(4);
  constexpr int kTasks = 64;
  std::vector<std::future<int>> futures;
  for (int i = 0; i < kTasks; ++i) {
    futures.push_back(pool.submit([i]() -> int {
      if (i % 2 == 1) throw std::runtime_error("task " + std::to_string(i));
      return i;
    }));
  }
  for (int i = 0; i < kTasks; ++i) {
    if (i % 2 == 1) {
      try {
        futures[i].get();
        FAIL() << "task " << i << " should have thrown";
      } catch (const std::runtime_error& e) {
        EXPECT_EQ(std::string(e.what()), "task " + std::to_string(i));
      }
    } else {
      EXPECT_EQ(futures[i].get(), i);
    }
  }
}

TEST(ThreadPoolStress, ReentrantParallelForFromSaturatedPool) {
  // Every worker simultaneously enters parallel_for_chunked on the SAME
  // pool. Without help-while-waiting each would block on futures no free
  // worker could run — a deadlock. With helping, all must finish.
  ThreadPool pool(2);
  constexpr int kOuter = 4;
  constexpr std::size_t kRange = 2000;
  std::vector<std::future<long long>> outer;
  for (int o = 0; o < kOuter; ++o) {
    outer.push_back(pool.submit([&pool] {
      std::atomic<long long> total{0};
      parallel_for_chunked(pool, 0, kRange, 64,
                           [&total](std::size_t lo, std::size_t hi) {
                             long long acc = 0;
                             for (std::size_t i = lo; i < hi; ++i) {
                               acc += static_cast<long long>(i);
                             }
                             total += acc;
                           });
      return total.load();
    }));
  }
  const long long expected =
      static_cast<long long>(kRange) * (kRange - 1) / 2;
  for (auto& f : outer) EXPECT_EQ(f.get(), expected);
}

TEST(ThreadPoolStress, TwoLevelNestedParallelFor) {
  ThreadPool pool(4);
  static constexpr std::size_t kOuter = 8;
  static constexpr std::size_t kInner = 300;
  std::atomic<long long> total{0};
  parallel_for(pool, 0, kOuter, [&](std::size_t o) {
    parallel_for_chunked(pool, 0, kInner, 32,
                         [&total, o](std::size_t lo, std::size_t hi) {
                           long long acc = 0;
                           for (std::size_t i = lo; i < hi; ++i) {
                             acc += static_cast<long long>(o * kInner + i);
                           }
                           total += acc;
                         });
  });
  const long long n = static_cast<long long>(kOuter * kInner);
  EXPECT_EQ(total.load(), n * (n - 1) / 2);
}

TEST(ThreadPoolStress, ExceptionEscapesNestedParallelFor) {
  ThreadPool pool(2);
  auto outer = pool.submit([&pool] {
    parallel_for(pool, 0, 100, [](std::size_t i) {
      if (i == 31) throw std::runtime_error("nested failure");
    });
  });
  EXPECT_THROW(outer.get(), std::runtime_error);
}

TEST(ThreadPoolStress, ShutdownDrainsQueuedTasks) {
  // Gate the single worker so a backlog provably builds up, then release
  // and shut down: shutdown must run every queued task before joining.
  ThreadPool pool(1);
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  std::atomic<int> completed{0};
  std::vector<std::future<void>> futures;
  futures.push_back(pool.submit([opened, &completed] {
    opened.wait();
    ++completed;
  }));
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.submit([&completed] { ++completed; }));
  }
  gate.set_value();
  pool.shutdown();
  EXPECT_EQ(completed.load(), 51);
  for (auto& f : futures) EXPECT_NO_THROW(f.get());
  EXPECT_THROW(pool.submit([] {}), std::runtime_error);
}

TEST(ThreadPoolStress, RunPendingTaskExecutesQueuedWorkInline) {
  // Occupy the only worker, queue a task, and drain it from the calling
  // thread — the mechanism parallel_for_chunked's helping rests on.
  ThreadPool pool(1);
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  std::promise<void> started;
  auto blocker = pool.submit([opened, &started] {
    started.set_value();
    opened.wait();
  });
  // Wait until the worker holds the blocker, so the queued task below can
  // only ever run via run_pending_task.
  started.get_future().wait();

  std::atomic<bool> ran{false};
  const auto caller = std::this_thread::get_id();
  std::thread::id ran_on;
  auto queued = pool.submit([&ran, &ran_on] {
    ran_on = std::this_thread::get_id();
    ran = true;
  });

  EXPECT_TRUE(pool.run_pending_task());
  EXPECT_TRUE(ran.load());
  EXPECT_EQ(ran_on, caller);
  EXPECT_FALSE(pool.run_pending_task());  // queue is empty again

  gate.set_value();
  blocker.get();
  queued.get();
}

}  // namespace
}  // namespace cwgl::util

#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <limits>
#include <mutex>
#include <numeric>
#include <span>
#include <stdexcept>
#include <vector>

namespace cwgl::util {
namespace {

TEST(ThreadPool, ExecutesSubmittedWork) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ZeroRequestsHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, SubmitAfterShutdownThrows) {
  ThreadPool pool(1);
  pool.shutdown();
  EXPECT_THROW(pool.submit([] {}), std::runtime_error);
}

TEST(ThreadPool, ShutdownIsIdempotent) {
  ThreadPool pool(1);
  pool.shutdown();
  pool.shutdown();  // must not hang or crash
}

TEST(ThreadPool, ArgumentsForwarded) {
  ThreadPool pool(1);
  auto f = pool.submit([](int a, int b) { return a + b; }, 3, 4);
  EXPECT_EQ(f.get(), 7);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(1000);
  parallel_for(pool, 0, visits.size(), [&](std::size_t i) { ++visits[i]; });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for(pool, 5, 5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, SumMatchesSequential) {
  ThreadPool pool(4);
  std::atomic<long long> total{0};
  parallel_for_chunked(pool, 0, 10000, 128,
                       [&](std::size_t lo, std::size_t hi) {
                         long long acc = 0;
                         for (std::size_t i = lo; i < hi; ++i) {
                           acc += static_cast<long long>(i);
                         }
                         total += acc;
                       });
  EXPECT_EQ(total.load(), 10000LL * 9999 / 2);
}

TEST(ParallelFor, ExceptionFromChunkRethrown) {
  ThreadPool pool(2);
  EXPECT_THROW(
      parallel_for(pool, 0, 100,
                   [](std::size_t i) {
                     if (i == 57) throw std::runtime_error("bad index");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, SingleWorkerRunsInline) {
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::thread::id seen;
  parallel_for_chunked(pool, 0, 10, 1,
                       [&](std::size_t, std::size_t) { seen = std::this_thread::get_id(); });
  EXPECT_EQ(seen, caller);
}

TEST(ParallelForWeighted, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  // Quadratic skew — the Gram-tile shape this helper exists for.
  std::vector<double> work(500);
  for (std::size_t i = 0; i < work.size(); ++i) {
    work[i] = static_cast<double>(i * i);
  }
  std::vector<std::atomic<int>> visits(work.size());
  parallel_for_weighted(pool, work, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) ++visits[i];
  });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelForWeighted, BalancesSkewedWork) {
  // One chunk must never swallow most of the weight: with w[i] = i the
  // heaviest chunk of a balanced split carries ~1/chunks of the total,
  // where the old per-row split would give the first chunk ~30x the last.
  ThreadPool pool(4);
  const std::size_t n = 1000;
  std::vector<double> work(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    work[i] = static_cast<double>(i);
    total += work[i];
  }
  std::mutex mu;
  double heaviest = 0.0;
  parallel_for_weighted(pool, work, [&](std::size_t lo, std::size_t hi) {
    double chunk = 0.0;
    for (std::size_t i = lo; i < hi; ++i) chunk += work[i];
    std::lock_guard lock(mu);
    heaviest = std::max(heaviest, chunk);
  });
  // 16 chunks on a 4-thread pool; allow 2x slack over the ideal share for
  // boundary rounding.
  EXPECT_LE(heaviest, 2.0 * total / static_cast<double>(pool.size() * 4));
}

TEST(ParallelForWeighted, DegenerateWeightsFallBackToUniform) {
  ThreadPool pool(2);
  for (const double w : {0.0, -1.0, std::numeric_limits<double>::quiet_NaN(),
                         std::numeric_limits<double>::infinity()}) {
    std::vector<double> work(64, w);
    std::vector<std::atomic<int>> visits(work.size());
    parallel_for_weighted(pool, work, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) ++visits[i];
    });
    for (const auto& v : visits) EXPECT_EQ(v.load(), 1) << "weight " << w;
  }
}

TEST(ParallelForWeighted, EmptyAndSingleItem) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for_weighted(pool, {}, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  const double one = 5.0;
  std::size_t seen_lo = 99, seen_hi = 99;
  parallel_for_weighted(pool, std::span(&one, 1),
                        [&](std::size_t lo, std::size_t hi) {
                          seen_lo = lo;
                          seen_hi = hi;
                        });
  EXPECT_EQ(seen_lo, 0u);
  EXPECT_EQ(seen_hi, 1u);
}

TEST(ParallelForWeighted, ExceptionFromChunkRethrown) {
  ThreadPool pool(2);
  std::vector<double> work(100, 1.0);
  EXPECT_THROW(parallel_for_weighted(pool, work,
                                     [](std::size_t lo, std::size_t hi) {
                                       for (std::size_t i = lo; i < hi; ++i) {
                                         if (i == 57) {
                                           throw std::runtime_error("bad index");
                                         }
                                       }
                                     }),
               std::runtime_error);
}

TEST(ParallelForWeighted, SingleWorkerRunsInline) {
  ThreadPool pool(1);
  const std::vector<double> work(10, 1.0);
  const auto caller = std::this_thread::get_id();
  std::thread::id seen;
  parallel_for_weighted(pool, work, [&](std::size_t, std::size_t) {
    seen = std::this_thread::get_id();
  });
  EXPECT_EQ(seen, caller);
}

}  // namespace
}  // namespace cwgl::util

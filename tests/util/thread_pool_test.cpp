#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace cwgl::util {
namespace {

TEST(ThreadPool, ExecutesSubmittedWork) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ZeroRequestsHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, SubmitAfterShutdownThrows) {
  ThreadPool pool(1);
  pool.shutdown();
  EXPECT_THROW(pool.submit([] {}), std::runtime_error);
}

TEST(ThreadPool, ShutdownIsIdempotent) {
  ThreadPool pool(1);
  pool.shutdown();
  pool.shutdown();  // must not hang or crash
}

TEST(ThreadPool, ArgumentsForwarded) {
  ThreadPool pool(1);
  auto f = pool.submit([](int a, int b) { return a + b; }, 3, 4);
  EXPECT_EQ(f.get(), 7);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(1000);
  parallel_for(pool, 0, visits.size(), [&](std::size_t i) { ++visits[i]; });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for(pool, 5, 5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, SumMatchesSequential) {
  ThreadPool pool(4);
  std::atomic<long long> total{0};
  parallel_for_chunked(pool, 0, 10000, 128,
                       [&](std::size_t lo, std::size_t hi) {
                         long long acc = 0;
                         for (std::size_t i = lo; i < hi; ++i) {
                           acc += static_cast<long long>(i);
                         }
                         total += acc;
                       });
  EXPECT_EQ(total.load(), 10000LL * 9999 / 2);
}

TEST(ParallelFor, ExceptionFromChunkRethrown) {
  ThreadPool pool(2);
  EXPECT_THROW(
      parallel_for(pool, 0, 100,
                   [](std::size_t i) {
                     if (i == 57) throw std::runtime_error("bad index");
                   }),
      std::runtime_error);
}

TEST(ParallelFor, SingleWorkerRunsInline) {
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::thread::id seen;
  parallel_for_chunked(pool, 0, 10, 1,
                       [&](std::size_t, std::size_t) { seen = std::this_thread::get_id(); });
  EXPECT_EQ(seen, caller);
}

}  // namespace
}  // namespace cwgl::util

#include "util/diagnostics.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace cwgl::util {
namespace {

TEST(Diagnostics, StartsEmpty) {
  Diagnostics d;
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.total(), 0u);
  EXPECT_EQ(d.count_of("ingest", "malformed-row"), 0u);
  EXPECT_TRUE(d.entries().empty());
}

TEST(Diagnostics, CountAndRecordAccumulate) {
  Diagnostics d;
  d.count("ingest", "malformed-row", 3);
  d.record("ingest", "malformed-row", "bad,row,here");
  d.record("csv", "unterminated-quote", "\"oops");
  EXPECT_EQ(d.total(), 5u);
  EXPECT_EQ(d.count_of("ingest", "malformed-row"), 4u);
  EXPECT_EQ(d.count_of("csv", "unterminated-quote"), 1u);
  const auto entries = d.entries();
  ASSERT_EQ(entries.size(), 2u);
  // Sorted by (stage, kind): "csv" < "ingest".
  EXPECT_EQ(entries[0].stage, "csv");
  ASSERT_EQ(entries[0].samples.size(), 1u);
  EXPECT_EQ(entries[0].samples[0], "\"oops");
  EXPECT_EQ(entries[1].stage, "ingest");
  ASSERT_EQ(entries[1].samples.size(), 1u);
}

TEST(Diagnostics, SamplesAreBounded) {
  Diagnostics d(/*max_samples=*/2);
  for (int i = 0; i < 10; ++i) {
    d.record("s", "k", "sample " + std::to_string(i));
  }
  const auto entries = d.entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].count, 10u);
  EXPECT_EQ(entries[0].samples.size(), 2u);
}

TEST(Diagnostics, LongSamplesAreClipped) {
  Diagnostics d;
  d.record("s", "k", std::string(1000, 'x'));
  const auto entries = d.entries();
  ASSERT_EQ(entries.size(), 1u);
  ASSERT_EQ(entries[0].samples.size(), 1u);
  EXPECT_LT(entries[0].samples[0].size(), 200u);
}

TEST(Diagnostics, TextReportCleanAndDirty) {
  Diagnostics d;
  std::ostringstream clean;
  d.write_text(clean);
  EXPECT_NE(clean.str().find("clean"), std::string::npos);

  d.record("ingest", "malformed-row", "garbage");
  std::ostringstream dirty;
  d.write_text(dirty);
  EXPECT_NE(dirty.str().find("ingest/malformed-row"), std::string::npos);
  EXPECT_NE(dirty.str().find("garbage"), std::string::npos);
}

TEST(Diagnostics, JsonReportIsWellFormedEnough) {
  Diagnostics d;
  d.record("csv", "unterminated-quote", "\"oops");
  d.count("dag", "cycle");
  std::ostringstream out;
  d.write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"total\":"), std::string::npos);
  EXPECT_NE(json.find("\"csv\""), std::string::npos);
  EXPECT_NE(json.find("\"cycle\""), std::string::npos);
  // The embedded quote must be escaped, not emitted raw.
  EXPECT_NE(json.find("\\\"oops"), std::string::npos);
}

TEST(Diagnostics, ConcurrentReportersDoNotLoseCounts) {
  Diagnostics d;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&d, t] {
      for (int i = 0; i < kPerThread; ++i) {
        if (i % 2 == 0) {
          d.count("stage", "kind");
        } else {
          d.record("stage", "kind", "thread " + std::to_string(t));
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(d.total(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace cwgl::util

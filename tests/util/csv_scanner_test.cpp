#include "util/csv_scanner.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "support/proptest.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"

namespace cwgl::util {
namespace {

std::vector<std::vector<std::string>> scan_all(const std::string& text,
                                               std::size_t block_size) {
  std::istringstream in(text);
  CsvScanner scanner(in, block_size);
  std::vector<std::vector<std::string>> rows;
  while (const auto record = scanner.next()) {
    rows.emplace_back(record->begin(), record->end());
  }
  return rows;
}

std::vector<std::vector<std::string>> read_all(const std::string& text) {
  std::istringstream in(text);
  CsvReader reader(in);
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> fields;
  while (reader.next(fields)) rows.push_back(fields);
  return rows;
}

/// The contract: the scanner yields byte-identical records to CsvReader on
/// every input, at every block size (boundaries may fall anywhere, including
/// inside quotes, CRLF pairs, and doubled quotes).
void expect_matches_reader(const std::string& text) {
  const auto expected = read_all(text);
  for (const std::size_t block : {1u, 2u, 3u, 7u, 16u, 4096u}) {
    EXPECT_EQ(scan_all(text, block), expected)
        << "block=" << block << " input=" << testing::PrintToString(text);
  }
}

TEST(CsvScanner, SimpleRows) {
  const auto rows = scan_all("a,b,c\n1,2,3\n", CsvScanner::kDefaultBlockSize);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2", "3"}));
}

TEST(CsvScanner, DifferentialCorpus) {
  const char* corpus[] = {
      "",
      "\n",
      "a",
      "a\n",
      "a,b\nc,d",
      "a,b\r\nc,d\r\n",
      "a,b\rc,d\r",
      ",,\n",
      ",\n,\n",
      "\"a,b\",c\n",
      "\"he said \"\"hi\"\"\",x\n",
      "\"line1\nline2\",x\n",
      "\"line1\r\nline2\",x\r\n",
      "\"\",x\n",
      "\"\"\"\"\n",
      "a\"b,c\"d\n",
      "\"a\"tail,x\n",
      "\"\"reopen\"\",x\n",
      "field,\"quoted\",plain\r\nnext,\"\",\"q\"\"q\"\n",
      "trailing,comma,\n",
      "\r\n",
      "\r",
  };
  for (const char* text : corpus) expect_matches_reader(text);
}

TEST(CsvScanner, DifferentialRandomized) {
  // Random strings over a quote/comma/newline-heavy alphabet hammer the
  // state machine and every block-boundary interaction.
  proptest::run_cases(0xC5Cu, 300, [&](util::Xoshiro256StarStar& rng) {
    const char alphabet[] = {'a', 'b', ',', '"', '\n', '\r', 'x'};
    const int len = rng.uniform_int(0, 40);
    std::string text;
    for (int i = 0; i < len; ++i) {
      text += alphabet[rng.uniform_int(0, 6)];
    }
    // Skip inputs where an unterminated quote makes both sides throw —
    // equivalence of the error case is asserted separately below.
    try {
      read_all(text);
    } catch (const ParseError&) {
      EXPECT_THROW(scan_all(text, 7), ParseError);
      return;
    }
    expect_matches_reader(text);
  });
}

TEST(CsvScanner, UnterminatedQuoteThrowsLikeReader) {
  for (const char* text : {"\"oops", "a,\"x\nnope", "\"\"\""}) {
    EXPECT_THROW(read_all(text), ParseError) << text;
    EXPECT_THROW(scan_all(text, 4), ParseError) << text;
  }
}

TEST(CsvScanner, RecordLargerThanBlockSize) {
  std::string big(10000, 'z');
  const std::string text = big + ",tail\nnext,row\n";
  const auto rows = scan_all(text, 16);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{big, "tail"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"next", "row"}));
}

TEST(CsvScanner, RecordNumberAndBytesConsumed) {
  std::istringstream in("a,b\nc,d\n");
  CsvScanner scanner(in);
  EXPECT_EQ(scanner.record_number(), 0u);
  ASSERT_TRUE(scanner.next().has_value());
  EXPECT_EQ(scanner.record_number(), 1u);
  EXPECT_EQ(scanner.bytes_consumed(), 4u);
  ASSERT_TRUE(scanner.next().has_value());
  EXPECT_EQ(scanner.record_number(), 2u);
  EXPECT_EQ(scanner.bytes_consumed(), 8u);
  EXPECT_FALSE(scanner.next().has_value());
}

TEST(CsvScanner, ViewsPointIntoBufferForUnquotedFields) {
  // Zero-copy invariant: unquoted fields are views over the internal
  // buffer, not copies — consecutive fields of one record are contiguous
  // (separated by exactly the delimiter byte).
  std::istringstream in("alpha,beta,gamma\n");
  CsvScanner scanner(in);
  const auto record = scanner.next();
  ASSERT_TRUE(record.has_value());
  ASSERT_EQ(record->size(), 3u);
  EXPECT_EQ((*record)[0].data() + (*record)[0].size() + 1, (*record)[1].data());
  EXPECT_EQ((*record)[1].data() + (*record)[1].size() + 1, (*record)[2].data());
}

TEST(ScanCsvRecords, EarlyStop) {
  std::istringstream in("a\nb\nc\n");
  int seen = 0;
  const std::size_t visited =
      scan_csv_records(in, [&](std::span<const std::string_view>) {
        ++seen;
        return seen < 2;
      });
  EXPECT_EQ(visited, 2u);
  EXPECT_EQ(seen, 2);
}

}  // namespace
}  // namespace cwgl::util

#include "trace/taskname.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace cwgl::trace {
namespace {

TEST(ParseTaskName, SimpleMapTask) {
  const auto t = parse_task_name("M1");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->type, 'M');
  EXPECT_EQ(t->index, 1);
  EXPECT_TRUE(t->deps.empty());
}

TEST(ParseTaskName, SingleDependency) {
  const auto t = parse_task_name("R2_1");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->type, 'R');
  EXPECT_EQ(t->index, 2);
  EXPECT_EQ(t->deps, (std::vector<int>{1}));
}

TEST(ParseTaskName, PaperExampleFullFanIn) {
  const auto t = parse_task_name("R5_4_3_2_1");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->type, 'R');
  EXPECT_EQ(t->index, 5);
  EXPECT_EQ(t->deps, (std::vector<int>{4, 3, 2, 1}));
}

TEST(ParseTaskName, JoinTask) {
  const auto t = parse_task_name("J3_1_2");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->type, 'J');
  EXPECT_EQ(t->deps, (std::vector<int>{1, 2}));
}

TEST(ParseTaskName, MultiLetterPrefixUsesFirstLetter) {
  const auto t = parse_task_name("MR12_3");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->type, 'M');
  EXPECT_EQ(t->index, 12);
  EXPECT_EQ(t->deps, (std::vector<int>{3}));
}

TEST(ParseTaskName, MultiDigitIndices) {
  const auto t = parse_task_name("R23_11_9");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->index, 23);
  EXPECT_EQ(t->deps, (std::vector<int>{11, 9}));
}

TEST(ParseTaskName, IndependentTaskRejected) {
  EXPECT_FALSE(parse_task_name("task_Zxg3Fh9q").has_value());
}

TEST(ParseTaskName, RejectsMalformedNames) {
  EXPECT_FALSE(parse_task_name("").has_value());
  EXPECT_FALSE(parse_task_name("M").has_value());        // no index
  EXPECT_FALSE(parse_task_name("123").has_value());      // no letter
  EXPECT_FALSE(parse_task_name("M1_").has_value());      // trailing underscore
  EXPECT_FALSE(parse_task_name("M1__2").has_value());    // double underscore
  EXPECT_FALSE(parse_task_name("M_1").has_value());      // underscore before index
  EXPECT_FALSE(parse_task_name("M1_x").has_value());     // non-numeric dep
  EXPECT_FALSE(parse_task_name("M0").has_value());       // indices are 1-based
  EXPECT_FALSE(parse_task_name("M1_0").has_value());     // deps are 1-based
  EXPECT_FALSE(parse_task_name("M1 ").has_value());      // stray whitespace
  EXPECT_FALSE(parse_task_name("M1_2a").has_value());    // residue after dep
}

TEST(EncodeTaskName, MatchesTraceSpelling) {
  EXPECT_EQ(encode_task_name('M', 1, {}), "M1");
  const std::vector<int> deps{4, 3, 2, 1};
  EXPECT_EQ(encode_task_name('R', 5, deps), "R5_4_3_2_1");
}

TEST(IsDagTaskName, Classification) {
  EXPECT_TRUE(is_dag_task_name("M1"));
  EXPECT_TRUE(is_dag_task_name("R2_1"));
  EXPECT_FALSE(is_dag_task_name("task_abc"));
  EXPECT_FALSE(is_dag_task_name(""));
}

/// Property: encode(parse(x)) == x for generated names across the grammar.
class TaskNameRoundTripP : public ::testing::TestWithParam<int> {};

TEST_P(TaskNameRoundTripP, EncodeParseRoundTrip) {
  util::Xoshiro256StarStar rng(static_cast<std::uint64_t>(GetParam()));
  static constexpr char kTypes[] = {'M', 'R', 'J'};
  for (int trial = 0; trial < 200; ++trial) {
    TaskName t;
    t.type = kTypes[rng.uniform_int(0, 2)];
    t.index = rng.uniform_int(1, 99);
    const int ndeps = rng.uniform_int(0, 6);
    for (int d = 0; d < ndeps; ++d) t.deps.push_back(rng.uniform_int(1, 99));
    const std::string encoded = encode_task_name(t);
    const auto parsed = parse_task_name(encoded);
    ASSERT_TRUE(parsed.has_value()) << encoded;
    EXPECT_EQ(*parsed, t) << encoded;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TaskNameRoundTripP, ::testing::Range(1, 6));

}  // namespace
}  // namespace cwgl::trace

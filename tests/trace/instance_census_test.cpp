#include "trace/instance_census.hpp"

#include <gtest/gtest.h>

#include "trace/generator.hpp"

namespace cwgl::trace {
namespace {

InstanceRecord instance(std::string machine, std::string job, std::string task,
                        std::int64_t start, std::int64_t end, int seq = 1,
                        int total = 1, double cpu_avg = 50.0) {
  InstanceRecord r;
  r.instance_name = "i";
  r.task_name = std::move(task);
  r.job_name = std::move(job);
  r.status = Status::Terminated;
  r.start_time = start;
  r.end_time = end;
  r.machine_id = std::move(machine);
  r.seq_no = seq;
  r.total_seq_no = total;
  r.cpu_avg = cpu_avg;
  r.mem_avg = 0.25;
  return r;
}

TaskRecord task(std::string job, std::string name, double cpu, double mem) {
  TaskRecord t;
  t.task_name = std::move(name);
  t.job_name = std::move(job);
  t.instance_num = 1;
  t.status = Status::Terminated;
  t.start_time = 1;
  t.end_time = 2;
  t.plan_cpu = cpu;
  t.plan_mem = mem;
  return t;
}

TEST(InstanceCensus, EmptyTrace) {
  const auto census = InstanceCensus::compute(Trace{});
  EXPECT_EQ(census.instances, 0u);
  EXPECT_EQ(census.machines_used, 0u);
}

TEST(InstanceCensus, MachineCountsAndSkew) {
  Trace trace;
  // Nine instances on m_1, one on m_2: m_1 is a clear hot spot.
  for (int i = 0; i < 9; ++i) {
    trace.instances.push_back(instance("m_1", "j_1", "M1", 1, 101));
  }
  trace.instances.push_back(instance("m_2", "j_1", "M1", 1, 101));
  const auto census = InstanceCensus::compute(trace);
  EXPECT_EQ(census.instances, 10u);
  EXPECT_EQ(census.machines_used, 2u);
  EXPECT_DOUBLE_EQ(census.per_machine_instances.max, 9.0);
  // Busiest 10% of 2 machines = 1 machine = m_1 with 90% of the time.
  EXPECT_NEAR(census.top_decile_share, 0.9, 1e-12);
}

TEST(InstanceCensus, RetryStatistics) {
  Trace trace;
  trace.instances.push_back(instance("m_1", "j", "M1", 0, 10));
  trace.instances.push_back(instance("m_1", "j", "M1", 0, 10, 3, 3));
  trace.instances.push_back(instance("m_1", "j", "M1", 0, 10, 2, 2));
  trace.instances.push_back(instance("m_1", "j", "M1", 0, 10));
  const auto census = InstanceCensus::compute(trace);
  EXPECT_DOUBLE_EQ(census.retry_fraction, 0.5);
  EXPECT_EQ(census.max_total_seq_no, 3);
}

TEST(InstanceCensus, UsageRatiosAgainstPlan) {
  Trace trace;
  trace.tasks.push_back(task("j_1", "M1", 100.0, 0.5));
  trace.instances.push_back(instance("m_1", "j_1", "M1", 0, 10, 1, 1, 60.0));
  trace.instances.push_back(instance("m_1", "j_1", "M1", 0, 10, 1, 1, 40.0));
  // Unmatched instance: counted but contributes no ratio.
  trace.instances.push_back(instance("m_1", "j_2", "task_x", 0, 10, 1, 1, 99.0));
  const auto census = InstanceCensus::compute(trace);
  EXPECT_EQ(census.cpu_usage_ratio.count, 2u);
  EXPECT_DOUBLE_EQ(census.cpu_usage_ratio.mean, 0.5);  // (0.6 + 0.4) / 2
  EXPECT_DOUBLE_EQ(census.mem_usage_ratio.mean, 0.5);  // 0.25 / 0.5
}

TEST(InstanceCensus, GeneratedTraceLooksProduction) {
  GeneratorConfig cfg;
  cfg.seed = 13;
  cfg.num_jobs = 300;
  cfg.emit_instances = true;
  const auto trace = TraceGenerator(cfg).generate();
  const auto census = InstanceCensus::compute(trace);
  ASSERT_GT(census.instances, 500u);
  EXPECT_GT(census.machines_used, 100u);
  // Retry injection near the configured 5%.
  EXPECT_NEAR(census.retry_fraction, cfg.p_instance_retry, 0.03);
  EXPECT_GE(census.max_total_seq_no, 2);
  // Actual usage sits below plan (over-provisioning headroom).
  EXPECT_GT(census.cpu_usage_ratio.mean, 0.2);
  EXPECT_LT(census.cpu_usage_ratio.mean, 1.0);
  EXPECT_LT(census.cpu_usage_ratio.max, 1.0 + 1e-9);
}

}  // namespace
}  // namespace cwgl::trace

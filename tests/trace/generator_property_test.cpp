// Property sweeps over generator configurations: every combination must
// yield structurally valid, deterministic workloads whose realized
// statistics track the configured knobs.

#include <gtest/gtest.h>

#include <tuple>

#include "graph/algorithms.hpp"
#include "trace/filter.hpp"
#include "trace/generator.hpp"
#include "trace/taskname.hpp"

namespace cwgl::trace {
namespace {

class GeneratorConfigP
    : public ::testing::TestWithParam<std::tuple<double, double, int>> {
 protected:
  GeneratorConfig make_config() const {
    const auto [dag_fraction, p_tiny, seed] = GetParam();
    GeneratorConfig cfg;
    cfg.seed = static_cast<std::uint64_t>(seed);
    cfg.num_jobs = 600;
    cfg.dag_fraction = dag_fraction;
    cfg.p_tiny = p_tiny;
    cfg.emit_instances = false;
    return cfg;
  }
};

TEST_P(GeneratorConfigP, EveryDagJobIsValidAndDepthBounded) {
  const auto cfg = make_config();
  const auto jobs = TraceGenerator(cfg).generate_jobs();
  for (const auto& job : jobs) {
    ASSERT_TRUE(graph::is_dag(job.dag)) << job.job_name;
    if (!job.is_dag) continue;
    EXPECT_GE(job.dag.num_vertices(), cfg.min_tasks);
    EXPECT_LE(job.dag.num_vertices(), cfg.max_tasks);
    EXPECT_LE(graph::critical_path_length(job.dag), cfg.max_depth)
        << job.job_name;
    // Every emitted name must decode and agree with the vertex count.
    for (const auto& t : job.tasks) {
      EXPECT_TRUE(is_dag_task_name(t.task_name)) << t.task_name;
    }
  }
}

TEST_P(GeneratorConfigP, DagFractionTracksConfig) {
  const auto cfg = make_config();
  const auto jobs = TraceGenerator(cfg).generate_jobs();
  std::size_t dags = 0;
  for (const auto& job : jobs) dags += job.is_dag;
  EXPECT_NEAR(static_cast<double>(dags) / jobs.size(), cfg.dag_fraction, 0.08);
}

TEST_P(GeneratorConfigP, TinyShareGrowsWithPTiny) {
  const auto cfg = make_config();
  if (cfg.p_tiny < 0.5) return;  // only meaningful at the high setting
  const auto jobs = TraceGenerator(cfg).generate_jobs();
  std::size_t dags = 0, tiny = 0;
  for (const auto& job : jobs) {
    if (!job.is_dag) continue;
    ++dags;
    tiny += job.dag.num_vertices() <= 4;
  }
  ASSERT_GT(dags, 0u);
  EXPECT_GT(static_cast<double>(tiny) / dags, 0.5);
}

TEST_P(GeneratorConfigP, DeterministicPerConfig) {
  const auto cfg = make_config();
  const auto a = TraceGenerator(cfg).generate_job(7);
  const auto b = TraceGenerator(cfg).generate_job(7);
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_EQ(a.tasks[i].to_fields(), b.tasks[i].to_fields());
  }
}

INSTANTIATE_TEST_SUITE_P(
    ConfigGrid, GeneratorConfigP,
    ::testing::Combine(::testing::Values(0.2, 0.5, 0.8),   // dag_fraction
                       ::testing::Values(0.0, 0.45, 0.8),  // p_tiny
                       ::testing::Values(1, 2)));          // seed

/// Filters must stay consistent under every config: selected jobs always
/// satisfy the criteria they were selected by.
class FilterConsistencyP : public ::testing::TestWithParam<int> {};

TEST_P(FilterConsistencyP, SelectedJobsSatisfyCriteria) {
  GeneratorConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(GetParam());
  cfg.num_jobs = 800;
  cfg.emit_instances = false;
  const Trace trace = TraceGenerator(cfg).generate();
  const TraceIndex index(trace);
  SamplingCriteria criteria;
  criteria.min_tasks = 3;
  criteria.max_tasks = 12;
  for (std::size_t j : select_jobs(index, criteria)) {
    const JobGroup& job = index.jobs()[j];
    EXPECT_GE(job.tasks.size(), 3u);
    EXPECT_LE(job.tasks.size(), 12u);
    EXPECT_TRUE(passes_integrity(trace, job));
    EXPECT_TRUE(passes_availability(trace, job));
    EXPECT_TRUE(is_dag_job(trace, job));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FilterConsistencyP, ::testing::Range(1, 5));

}  // namespace
}  // namespace cwgl::trace

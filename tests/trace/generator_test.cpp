#include "trace/generator.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "graph/algorithms.hpp"
#include "trace/filter.hpp"
#include "trace/taskname.hpp"
#include "util/error.hpp"

namespace cwgl::trace {
namespace {

GeneratorConfig small_config() {
  GeneratorConfig cfg;
  cfg.seed = 123;
  cfg.num_jobs = 400;
  cfg.emit_instances = false;
  return cfg;
}

TEST(TraceGenerator, DeterministicForSeed) {
  const TraceGenerator gen_a(small_config());
  const TraceGenerator gen_b(small_config());
  const Trace a = gen_a.generate();
  const Trace b = gen_b.generate();
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_EQ(a.tasks[i].to_fields(), b.tasks[i].to_fields());
  }
}

TEST(TraceGenerator, DifferentSeedsDiffer) {
  GeneratorConfig cfg = small_config();
  const Trace a = TraceGenerator(cfg).generate();
  cfg.seed = 456;
  const Trace b = TraceGenerator(cfg).generate();
  bool any_diff = a.tasks.size() != b.tasks.size();
  for (std::size_t i = 0; !any_diff && i < a.tasks.size(); ++i) {
    any_diff = a.tasks[i].task_name != b.tasks[i].task_name;
  }
  EXPECT_TRUE(any_diff);
}

TEST(TraceGenerator, JobsRegenerableInIsolation) {
  const TraceGenerator gen(small_config());
  const auto all = gen.generate_jobs();
  const GeneratedJob lone = gen.generate_job(17);
  ASSERT_LT(17u, all.size());
  EXPECT_EQ(lone.job_name, all[17].job_name);
  ASSERT_EQ(lone.tasks.size(), all[17].tasks.size());
  for (std::size_t i = 0; i < lone.tasks.size(); ++i) {
    EXPECT_EQ(lone.tasks[i].to_fields(), all[17].tasks[i].to_fields());
  }
}

TEST(TraceGenerator, DagFractionNearConfig) {
  GeneratorConfig cfg = small_config();
  cfg.num_jobs = 2000;
  const auto jobs = TraceGenerator(cfg).generate_jobs();
  std::size_t dags = 0;
  for (const auto& j : jobs) dags += j.is_dag;
  EXPECT_NEAR(static_cast<double>(dags) / jobs.size(), cfg.dag_fraction, 0.05);
}

TEST(TraceGenerator, DagJobsAreValidDags) {
  const auto jobs = TraceGenerator(small_config()).generate_jobs();
  for (const auto& job : jobs) {
    EXPECT_TRUE(graph::is_dag(job.dag)) << job.job_name;
    if (job.is_dag) {
      EXPECT_GE(job.dag.num_vertices(), 2);
      EXPECT_LE(job.dag.num_vertices(), 31);
    }
  }
}

TEST(TraceGenerator, TaskNamesEncodeTheGroundTruthDag) {
  const auto jobs = TraceGenerator(small_config()).generate_jobs();
  for (const auto& job : jobs) {
    if (!job.is_dag) continue;
    // Rebuild the DAG from the emitted task names and compare edge sets.
    std::map<int, int> index_to_vertex;
    std::vector<TaskName> parsed;
    for (std::size_t v = 0; v < job.tasks.size(); ++v) {
      const auto t = parse_task_name(job.tasks[v].task_name);
      ASSERT_TRUE(t.has_value()) << job.tasks[v].task_name;
      index_to_vertex[t->index] = static_cast<int>(v);
      parsed.push_back(*t);
    }
    std::vector<graph::Edge> edges;
    for (std::size_t v = 0; v < parsed.size(); ++v) {
      for (int dep : parsed[v].deps) {
        ASSERT_TRUE(index_to_vertex.count(dep));
        edges.push_back({index_to_vertex[dep], static_cast<int>(v)});
      }
    }
    EXPECT_EQ(graph::Digraph(job.dag.num_vertices(), edges), job.dag)
        << job.job_name;
  }
}

TEST(TraceGenerator, NonDagJobsUseOpaqueNames) {
  const auto jobs = TraceGenerator(small_config()).generate_jobs();
  for (const auto& job : jobs) {
    if (job.is_dag) continue;
    for (const auto& t : job.tasks) {
      EXPECT_FALSE(is_dag_task_name(t.task_name)) << t.task_name;
      EXPECT_EQ(t.task_name.rfind("task_", 0), 0u) << t.task_name;
    }
  }
}

TEST(TraceGenerator, ParentIndicesAlwaysSmaller) {
  // The trace numbering convention: dependencies carry smaller indices.
  const auto jobs = TraceGenerator(small_config()).generate_jobs();
  for (const auto& job : jobs) {
    if (!job.is_dag) continue;
    for (const auto& t : job.tasks) {
      const auto parsed = parse_task_name(t.task_name);
      ASSERT_TRUE(parsed.has_value());
      for (int dep : parsed->deps) EXPECT_LT(dep, parsed->index);
    }
  }
}

TEST(TraceGenerator, TerminatedTasksHaveCoherentTimes) {
  GeneratorConfig cfg = small_config();
  const auto trace = TraceGenerator(cfg).generate();
  for (const auto& t : trace.tasks) {
    if (t.status == Status::Terminated && t.start_time > 0) {
      EXPECT_GT(t.end_time, t.start_time) << t.task_name;
      EXPECT_GE(t.start_time, cfg.window_start);
    }
    if (t.status == Status::Waiting) {
      EXPECT_EQ(t.end_time, 0) << t.task_name;
    }
    if (t.status == Status::Running) {
      EXPECT_EQ(t.end_time, 0) << t.task_name;
    }
  }
}

TEST(TraceGenerator, ChildStartsAfterParentEnds) {
  const auto jobs = TraceGenerator(small_config()).generate_jobs();
  for (const auto& job : jobs) {
    if (!job.is_dag) continue;
    for (const auto& e : job.dag.edges()) {
      const auto& parent = job.tasks[e.from];
      const auto& child = job.tasks[e.to];
      if (parent.status == Status::Terminated &&
          child.status == Status::Terminated && parent.start_time > 0 &&
          child.start_time > 0) {
        EXPECT_GE(child.start_time, parent.end_time);
      }
    }
  }
}

TEST(TraceGenerator, ShapeMixRoughlyHonored) {
  GeneratorConfig cfg = small_config();
  cfg.num_jobs = 4000;
  const auto jobs = TraceGenerator(cfg).generate_jobs();
  std::size_t chains = 0, triangles = 0, dags = 0;
  for (const auto& job : jobs) {
    if (!job.is_dag) continue;
    ++dags;
    chains += job.intended_shape == graph::ShapePattern::StraightChain;
    triangles += job.intended_shape == graph::ShapePattern::InvertedTriangle;
  }
  ASSERT_GT(dags, 0u);
  // Small sizes force some non-chain draws back to chains/triangles, so
  // tolerances are loose; the ordering chain > triangle >> rest must hold.
  EXPECT_NEAR(static_cast<double>(chains) / dags, 0.58, 0.08);
  EXPECT_NEAR(static_cast<double>(triangles) / dags, 0.37, 0.08);
}

TEST(TraceGenerator, EmitsInstancesAlignedWithTasks) {
  GeneratorConfig cfg = small_config();
  cfg.num_jobs = 50;
  cfg.emit_instances = true;
  const auto jobs = TraceGenerator(cfg).generate_jobs();
  for (const auto& job : jobs) {
    std::size_t expected = 0;
    std::set<std::string> names;
    for (const auto& t : job.tasks) {
      expected += static_cast<std::size_t>(t.instance_num);
      names.insert(t.task_name);
    }
    EXPECT_EQ(job.instances.size(), expected);
    for (const auto& inst : job.instances) {
      EXPECT_TRUE(names.count(inst.task_name));
      EXPECT_EQ(inst.job_name, job.job_name);
      EXPECT_EQ(inst.machine_id.rfind("m_", 0), 0u);
    }
  }
}

TEST(TraceGenerator, MostJobsPassIntegrityAndSomeFail) {
  GeneratorConfig cfg = small_config();
  cfg.num_jobs = 2000;
  const Trace trace = TraceGenerator(cfg).generate();
  const TraceIndex index(trace);
  std::size_t pass = 0;
  for (const auto& job : index.jobs()) pass += passes_integrity(trace, job);
  const double frac = static_cast<double>(pass) / index.jobs().size();
  EXPECT_GT(frac, 0.9);
  EXPECT_LT(frac, 1.0);  // fate injection must produce some violations
}

TEST(TraceGenerator, InvalidConfigThrows) {
  GeneratorConfig cfg;
  cfg.num_jobs = 0;
  EXPECT_THROW(TraceGenerator{cfg}, util::InvalidArgument);
  cfg = GeneratorConfig{};
  cfg.min_tasks = 1;
  EXPECT_THROW(TraceGenerator{cfg}, util::InvalidArgument);
  cfg = GeneratorConfig{};
  cfg.max_tasks = 1;
  EXPECT_THROW(TraceGenerator{cfg}, util::InvalidArgument);
  cfg = GeneratorConfig{};
  cfg.window_end = cfg.window_start;
  EXPECT_THROW(TraceGenerator{cfg}, util::InvalidArgument);
}

TEST(SynthesizeWidths, SumsToN) {
  util::Xoshiro256StarStar rng(5);
  for (int n = 2; n <= 31; ++n) {
    for (auto shape : {graph::ShapePattern::StraightChain,
                       graph::ShapePattern::InvertedTriangle,
                       graph::ShapePattern::Diamond,
                       graph::ShapePattern::Hourglass,
                       graph::ShapePattern::Trapezium,
                       graph::ShapePattern::Combination}) {
      const auto widths = synthesize_widths(shape, n, rng);
      int sum = 0;
      for (int w : widths) {
        EXPECT_GT(w, 0);
        sum += w;
      }
      EXPECT_EQ(sum, n);
    }
  }
}

TEST(SynthesizeWidths, InvalidNThrows) {
  util::Xoshiro256StarStar rng(5);
  EXPECT_THROW(synthesize_widths(graph::ShapePattern::StraightChain, 0, rng),
               util::InvalidArgument);
}

TEST(SynthesizeDag, RealizesExactWidthProfile) {
  util::Xoshiro256StarStar rng(9);
  const std::vector<int> widths{3, 5, 2, 1};
  for (int trial = 0; trial < 50; ++trial) {
    const auto g = synthesize_dag(widths, rng);
    EXPECT_EQ(graph::width_profile(g), widths);
    EXPECT_TRUE(graph::is_dag(g));
  }
}

TEST(SynthesizeDag, RejectsNonPositiveWidths) {
  util::Xoshiro256StarStar rng(9);
  const std::vector<int> widths{2, 0, 1};
  EXPECT_THROW(synthesize_dag(widths, rng), util::InvalidArgument);
}

}  // namespace
}  // namespace cwgl::trace

// Property/fuzz suite for trace::parse_task_name over adversarial inputs.
//
// The parser is the pipeline's first line of defense: every byte of the
// task_name column of a 270 GB trace flows through it, so it must never
// crash, never loop, and never accept a string that encode_task_name cannot
// reproduce.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "support/proptest.hpp"
#include "trace/taskname.hpp"
#include "util/rng.hpp"

namespace cwgl::trace {
namespace {

/// Random bytes drawn from a hostile alphabet: digits, letters, separators,
/// signs, NULs, high bytes — everything a corrupt CSV column could contain.
std::string random_hostile_string(util::Xoshiro256StarStar& rng,
                                  int max_len = 24) {
  static constexpr char kAlphabet[] =
      "MRJmrj0123456789__--++..  \t\",\0\x7f\xff";
  // sizeof includes the terminating NUL, which we deliberately keep: NUL
  // bytes inside names must not confuse the parser.
  const int len = rng.uniform_int(0, max_len);
  std::string s;
  s.reserve(static_cast<std::size_t>(len));
  for (int i = 0; i < len; ++i) {
    s.push_back(kAlphabet[rng.uniform_int(0, sizeof(kAlphabet) - 1)]);
  }
  return s;
}

TEST(TaskNameProperty, NeverCrashesOnHostileInput) {
  proptest::run_cases(0xF00D, 3000, [](util::Xoshiro256StarStar& rng) {
    const std::string name = random_hostile_string(rng);
    // Must return (nullopt or a value) — never throw, never crash.
    const auto parsed = parse_task_name(name);
    if (parsed) {
      // Accepted names normalize: encoding the parse and re-parsing must be
      // a fixed point. (Exact string round-trip does not hold — the grammar
      // tolerates multi-letter prefixes and leading zeros, which the
      // encoder canonicalizes away.)
      const auto again = parse_task_name(encode_task_name(*parsed));
      ASSERT_TRUE(again.has_value()) << name;
      EXPECT_EQ(*again, *parsed) << name;
    }
  });
}

TEST(TaskNameProperty, RoundTripsEveryGrammaticalName) {
  proptest::run_cases(0xBEEF, 2000, [](util::Xoshiro256StarStar& rng) {
    TaskName t;
    static constexpr char kTypes[] = {'M', 'R', 'J', 'A', 'z'};
    t.type = kTypes[rng.uniform_int(0, 4)];
    t.index = rng.uniform_int(1, 9999);
    const int deps = rng.uniform_int(0, 6);
    for (int i = 0; i < deps; ++i) {
      t.deps.push_back(rng.uniform_int(1, 9999));
    }
    const std::string encoded = encode_task_name(t);
    const auto parsed = parse_task_name(encoded);
    ASSERT_TRUE(parsed.has_value()) << encoded;
    EXPECT_EQ(parsed->type, t.type);
    EXPECT_EQ(parsed->index, t.index);
    EXPECT_EQ(parsed->deps, t.deps);
  });
}

TEST(TaskNameProperty, AdversarialEdgeCases) {
  // Hand-picked strings that historically break hand-rolled parsers.
  const char* rejected[] = {
      "",            // empty
      "M",           // type but no index
      "1",           // index but no type
      "M0",          // zero index (grammar says positive)
      "M-1",         // negative index
      "M1_",         // trailing separator, no dep
      "M1__2",       // empty dep between separators
      "M1_0",        // zero dep
      "M1_-3",       // negative dep
      "M1_2_",       // trailing separator after deps
      "M 1",         // interior space
      "M1 ",         // trailing space
      " M1",         // leading space
      "M1_2x",       // trailing junk after dep
      "M1x_2",       // junk between index and separator
      "task_Zxg3Fh", // the trace's independent-task spelling
      "M99999999999999999999",      // index overflow (> 18 digits)
      "M1_99999999999999999999",    // dep overflow
      "M5000000000",                // fits long long, overflows int
      "M1_5000000000",              // dep that overflows int
      "\xffM1",      // high byte prefix
  };
  for (const char* name : rejected) {
    EXPECT_FALSE(parse_task_name(name).has_value()) << '"' << name << '"';
  }

  // Embedded NUL needs an explicit length (a literal would truncate).
  EXPECT_FALSE(parse_task_name(std::string("M1\0_2", 5)).has_value());

  // And grammatical names that must parse.
  EXPECT_TRUE(parse_task_name("M1").has_value());
  EXPECT_TRUE(parse_task_name("R2_1").has_value());
  EXPECT_TRUE(parse_task_name("J4_2_3").has_value());
  EXPECT_TRUE(parse_task_name("MRGG12_10_9_8").has_value());
}

TEST(TaskNameProperty, LongInputsStayLinear) {
  // A pathological 1 MB name must be rejected quickly, not crash or hang.
  std::string huge(1 << 20, '_');
  huge[0] = 'M';
  huge[1] = '1';
  EXPECT_FALSE(parse_task_name(huge).has_value());

  std::string digits = "M" + std::string(1 << 20, '9');
  EXPECT_FALSE(parse_task_name(digits).has_value());
}

}  // namespace
}  // namespace cwgl::trace

#include "trace/filter.hpp"

#include <gtest/gtest.h>

#include <set>

#include "trace/generator.hpp"

namespace cwgl::trace {
namespace {

TaskRecord make_task(std::string job, std::string name,
                     Status status = Status::Terminated,
                     std::int64_t start = 100, std::int64_t end = 200) {
  TaskRecord t;
  t.job_name = std::move(job);
  t.task_name = std::move(name);
  t.status = status;
  t.start_time = start;
  t.end_time = end;
  t.instance_num = 2;
  t.plan_cpu = 100.0;
  t.plan_mem = 0.5;
  return t;
}

Trace two_job_trace() {
  Trace trace;
  trace.tasks.push_back(make_task("j_1", "M1"));
  trace.tasks.push_back(make_task("j_1", "R2_1"));
  trace.tasks.push_back(make_task("j_2", "task_xyz"));
  trace.tasks.push_back(make_task("j_1", "R3_2"));
  return trace;
}

TEST(TraceIndex, GroupsByJobPreservingOrder) {
  const Trace trace = two_job_trace();
  const TraceIndex index(trace);
  ASSERT_EQ(index.jobs().size(), 2u);
  EXPECT_EQ(index.jobs()[0].job_name, "j_1");
  EXPECT_EQ(index.jobs()[0].tasks, (std::vector<std::size_t>{0, 1, 3}));
  EXPECT_EQ(index.jobs()[1].job_name, "j_2");
}

TEST(PassesIntegrity, AllTerminatedPasses) {
  const Trace trace = two_job_trace();
  const TraceIndex index(trace);
  EXPECT_TRUE(passes_integrity(trace, index.jobs()[0]));
}

TEST(PassesIntegrity, AnyNonTerminatedFails) {
  for (Status bad : {Status::Running, Status::Waiting, Status::Failed,
                     Status::Cancelled, Status::Interrupted}) {
    Trace trace = two_job_trace();
    trace.tasks[1].status = bad;
    const TraceIndex index(trace);
    EXPECT_FALSE(passes_integrity(trace, index.jobs()[0]))
        << to_string(bad);
  }
}

TEST(PassesAvailability, GoodRecordsPass) {
  const Trace trace = two_job_trace();
  const TraceIndex index(trace);
  EXPECT_TRUE(passes_availability(trace, index.jobs()[0]));
}

TEST(PassesAvailability, ZeroStartFails) {
  Trace trace = two_job_trace();
  trace.tasks[0].start_time = 0;
  const TraceIndex index(trace);
  EXPECT_FALSE(passes_availability(trace, index.jobs()[0]));
}

TEST(PassesAvailability, EndBeforeStartFails) {
  Trace trace = two_job_trace();
  trace.tasks[0].end_time = trace.tasks[0].start_time - 1;
  const TraceIndex index(trace);
  EXPECT_FALSE(passes_availability(trace, index.jobs()[0]));
}

TEST(PassesAvailability, MissingResourcesFail) {
  Trace trace = two_job_trace();
  trace.tasks[0].plan_cpu = 0.0;
  const TraceIndex index(trace);
  EXPECT_FALSE(passes_availability(trace, index.jobs()[0]));
}

TEST(IsDagJob, DependencyJobQualifies) {
  const Trace trace = two_job_trace();
  const TraceIndex index(trace);
  EXPECT_TRUE(is_dag_job(trace, index.jobs()[0]));
}

TEST(IsDagJob, IndependentJobDoesNot) {
  const Trace trace = two_job_trace();
  const TraceIndex index(trace);
  EXPECT_FALSE(is_dag_job(trace, index.jobs()[1]));
}

TEST(IsDagJob, TwoTasksWithoutDepsDoNotQualify) {
  Trace trace;
  trace.tasks.push_back(make_task("j_3", "M1"));
  trace.tasks.push_back(make_task("j_3", "M2"));
  const TraceIndex index(trace);
  EXPECT_FALSE(is_dag_job(trace, index.jobs()[0]));
}

TEST(SelectJobs, AppliesAllCriteria) {
  Trace trace = two_job_trace();
  const TraceIndex index(trace);
  SamplingCriteria criteria;
  const auto picked = select_jobs(index, criteria);
  ASSERT_EQ(picked.size(), 1u);
  EXPECT_EQ(index.jobs()[picked[0]].job_name, "j_1");
}

TEST(SelectJobs, SizeBoundsRespected) {
  const Trace trace = two_job_trace();
  const TraceIndex index(trace);
  SamplingCriteria criteria;
  criteria.min_tasks = 4;
  EXPECT_TRUE(select_jobs(index, criteria).empty());
  criteria.min_tasks = 2;
  criteria.max_tasks = 2;
  EXPECT_TRUE(select_jobs(index, criteria).empty());
}

TEST(SelectJobs, CriteriaCanBeDisabled) {
  Trace trace = two_job_trace();
  trace.tasks[0].status = Status::Failed;
  const TraceIndex index(trace);
  SamplingCriteria criteria;
  EXPECT_TRUE(select_jobs(index, criteria).empty());
  criteria.require_integrity = false;
  EXPECT_EQ(select_jobs(index, criteria).size(), 1u);
}

TEST(VariabilitySample, DeterministicAndWithinCandidates) {
  GeneratorConfig cfg;
  cfg.seed = 3;
  cfg.num_jobs = 500;
  cfg.emit_instances = false;
  const Trace trace = TraceGenerator(cfg).generate();
  const TraceIndex index(trace);
  const auto eligible = select_jobs(index, SamplingCriteria{});
  const auto a = variability_sample(index, eligible, 50, 99);
  const auto b = variability_sample(index, eligible, 50, 99);
  EXPECT_EQ(a, b);
  const std::set<std::size_t> eligible_set(eligible.begin(), eligible.end());
  for (std::size_t j : a) EXPECT_TRUE(eligible_set.count(j));
  const std::set<std::size_t> unique(a.begin(), a.end());
  EXPECT_EQ(unique.size(), a.size());
}

TEST(VariabilitySample, StratifiesAcrossSizes) {
  GeneratorConfig cfg;
  cfg.seed = 5;
  cfg.num_jobs = 3000;
  cfg.emit_instances = false;
  const Trace trace = TraceGenerator(cfg).generate();
  const TraceIndex index(trace);
  const auto eligible = select_jobs(index, SamplingCriteria{});
  const auto picked = variability_sample(index, eligible, 100, 7);
  ASSERT_EQ(picked.size(), 100u);
  std::set<std::size_t> sizes_in_sample, sizes_available;
  for (std::size_t j : eligible) sizes_available.insert(index.jobs()[j].tasks.size());
  for (std::size_t j : picked) sizes_in_sample.insert(index.jobs()[j].tasks.size());
  // Round-robin stratification must cover every size available (there are
  // far fewer than 100 distinct sizes in range 2..31).
  EXPECT_EQ(sizes_in_sample, sizes_available);
  EXPECT_GE(sizes_in_sample.size(), 15u);  // the paper reports 17
}

TEST(VariabilitySample, CountLargerThanCandidatesReturnsAll) {
  const Trace trace = two_job_trace();
  const TraceIndex index(trace);
  const std::vector<std::size_t> candidates{0, 1};
  const auto picked = variability_sample(index, candidates, 10, 1);
  EXPECT_EQ(picked.size(), 2u);
}

TEST(VariabilitySample, EmptyCandidates) {
  const Trace trace = two_job_trace();
  const TraceIndex index(trace);
  EXPECT_TRUE(variability_sample(index, {}, 10, 1).empty());
}

TEST(NaturalSample, DeterministicDistinctSubset) {
  std::vector<std::size_t> candidates(200);
  for (std::size_t i = 0; i < candidates.size(); ++i) candidates[i] = i * 3;
  const auto a = natural_sample(candidates, 50, 9);
  const auto b = natural_sample(candidates, 50, 9);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 50u);
  const std::set<std::size_t> unique(a.begin(), a.end());
  EXPECT_EQ(unique.size(), 50u);
  const std::set<std::size_t> pool(candidates.begin(), candidates.end());
  for (std::size_t v : a) EXPECT_TRUE(pool.count(v));
}

TEST(NaturalSample, CountExceedingPoolReturnsAll) {
  const std::vector<std::size_t> candidates{4, 7, 9};
  const auto picked = natural_sample(candidates, 10, 1);
  EXPECT_EQ(picked.size(), 3u);
}

TEST(NaturalSample, FollowsPopulationWeights) {
  // 90% of candidates marked "small" (even) -> sample should be ~90% even.
  std::vector<std::size_t> candidates;
  for (std::size_t i = 0; i < 900; ++i) candidates.push_back(i * 2);
  for (std::size_t i = 0; i < 100; ++i) candidates.push_back(i * 2 + 1);
  const auto picked = natural_sample(candidates, 200, 5);
  std::size_t even = 0;
  for (std::size_t v : picked) even += (v % 2 == 0);
  EXPECT_NEAR(static_cast<double>(even) / picked.size(), 0.9, 0.07);
}

}  // namespace
}  // namespace cwgl::trace

#include "trace/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "trace/generator.hpp"
#include "util/error.hpp"

namespace cwgl::trace {
namespace {

Trace small_trace() {
  GeneratorConfig cfg;
  cfg.seed = 77;
  cfg.num_jobs = 60;
  cfg.emit_instances = true;
  return TraceGenerator(cfg).generate();
}

TEST(TraceIo, TaskCsvRoundTrip) {
  const Trace trace = small_trace();
  std::stringstream buffer;
  write_batch_task_csv(buffer, trace.tasks);
  std::size_t skipped = 99;
  const auto back = read_batch_task_csv(buffer, &skipped);
  EXPECT_EQ(skipped, 0u);
  ASSERT_EQ(back.size(), trace.tasks.size());
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back[i].to_fields(), trace.tasks[i].to_fields());
  }
}

TEST(TraceIo, InstanceCsvRoundTrip) {
  const Trace trace = small_trace();
  ASSERT_FALSE(trace.instances.empty());
  std::stringstream buffer;
  write_batch_instance_csv(buffer, trace.instances);
  std::size_t skipped = 99;
  const auto back = read_batch_instance_csv(buffer, &skipped);
  EXPECT_EQ(skipped, 0u);
  ASSERT_EQ(back.size(), trace.instances.size());
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back[i].to_fields(), trace.instances[i].to_fields());
  }
}

TEST(TraceIo, MalformedRowsSkippedNotFatal) {
  std::stringstream buffer;
  buffer << "M1,2,j_1,1,Terminated,10,20,100.00,0.50\n";
  buffer << "this,row,is,broken\n";
  buffer << "R2_1,ten,j_1,1,Terminated,10,20,100.00,0.50\n";  // bad numeric
  buffer << "R2_1,4,j_1,1,Terminated,30,40,100.00,0.50\n";
  std::size_t skipped = 0;
  const auto tasks = read_batch_task_csv(buffer, &skipped);
  EXPECT_EQ(tasks.size(), 2u);
  EXPECT_EQ(skipped, 2u);
}

TEST(TraceIo, DirectoryRoundTrip) {
  const Trace trace = small_trace();
  const auto dir = std::filesystem::temp_directory_path() / "cwgl_io_test";
  std::filesystem::remove_all(dir);
  write_trace(trace, dir);
  ASSERT_TRUE(std::filesystem::exists(dir / "batch_task.csv"));
  ASSERT_TRUE(std::filesystem::exists(dir / "batch_instance.csv"));
  std::size_t skipped = 0;
  const Trace back = read_trace(dir, &skipped);
  EXPECT_EQ(skipped, 0u);
  EXPECT_EQ(back.tasks.size(), trace.tasks.size());
  EXPECT_EQ(back.instances.size(), trace.instances.size());
  std::filesystem::remove_all(dir);
}

TEST(TraceIo, MissingInstanceFileTolerated) {
  const Trace trace = small_trace();
  const auto dir = std::filesystem::temp_directory_path() / "cwgl_io_test2";
  std::filesystem::remove_all(dir);
  write_trace(trace, dir);
  std::filesystem::remove(dir / "batch_instance.csv");
  const Trace back = read_trace(dir);
  EXPECT_EQ(back.tasks.size(), trace.tasks.size());
  EXPECT_TRUE(back.instances.empty());
  std::filesystem::remove_all(dir);
}

TEST(TraceIoStream, GroupsConsecutiveRowsByJob) {
  const Trace trace = small_trace();
  std::stringstream buffer;
  write_batch_task_csv(buffer, trace.tasks);
  std::vector<std::string> jobs_seen;
  std::size_t rows_seen = 0;
  const auto stats = for_each_job_in_task_csv(
      buffer, [&](const std::string& job, const std::vector<TaskRecord>& tasks) {
        jobs_seen.push_back(job);
        rows_seen += tasks.size();
        for (const auto& t : tasks) EXPECT_EQ(t.job_name, job);
        return true;
      });
  EXPECT_EQ(stats.rows, trace.tasks.size());
  EXPECT_EQ(rows_seen, trace.tasks.size());
  EXPECT_EQ(stats.jobs, jobs_seen.size());
  EXPECT_EQ(stats.malformed, 0u);
  EXPECT_EQ(stats.fragmented, 0u);
  // The generator emits jobs contiguously, so groups == distinct jobs.
  const std::set<std::string> distinct(jobs_seen.begin(), jobs_seen.end());
  EXPECT_EQ(distinct.size(), jobs_seen.size());
}

TEST(TraceIoStream, FragmentedJobsDetected) {
  std::stringstream buffer;
  buffer << "M1,1,j_1,1,Terminated,10,20,100.00,0.50\n";
  buffer << "M1,1,j_2,1,Terminated,10,20,100.00,0.50\n";
  buffer << "R2_1,1,j_1,1,Terminated,30,40,100.00,0.50\n";  // j_1 reappears
  std::size_t groups = 0;
  const auto stats = for_each_job_in_task_csv(
      buffer, [&](const std::string&, const std::vector<TaskRecord>&) {
        ++groups;
        return true;
      });
  EXPECT_EQ(groups, 3u);
  EXPECT_EQ(stats.jobs, 3u);
  EXPECT_EQ(stats.fragmented, 1u);
}

TEST(TraceIoStream, EarlyStopHonored) {
  const Trace trace = small_trace();
  std::stringstream buffer;
  write_batch_task_csv(buffer, trace.tasks);
  std::size_t groups = 0;
  const auto stats = for_each_job_in_task_csv(
      buffer, [&](const std::string&, const std::vector<TaskRecord>&) {
        return ++groups < 3;
      });
  EXPECT_EQ(groups, 3u);
  EXPECT_EQ(stats.jobs, 3u);
}

TEST(TraceIoStream, MalformedRowsCountedNotFatal) {
  std::stringstream buffer;
  buffer << "M1,1,j_1,1,Terminated,10,20,100.00,0.50\n";
  buffer << "garbage row\n";
  buffer << "R2_1,1,j_1,1,Terminated,30,40,100.00,0.50\n";
  std::size_t rows = 0;
  const auto stats = for_each_job_in_task_csv(
      buffer, [&](const std::string&, const std::vector<TaskRecord>& tasks) {
        rows += tasks.size();
        return true;
      });
  EXPECT_EQ(stats.malformed, 1u);
  EXPECT_EQ(rows, 2u);
  EXPECT_EQ(stats.jobs, 1u);
}

TEST(TraceIoStream, EmptyInput) {
  std::stringstream buffer;
  const auto stats = for_each_job_in_task_csv(
      buffer,
      [&](const std::string&, const std::vector<TaskRecord>&) { return true; });
  EXPECT_EQ(stats.rows, 0u);
  EXPECT_EQ(stats.jobs, 0u);
}

TEST(TraceIoStream, EarlyStopDoesNotVisitLaterGroups) {
  std::stringstream buffer;
  buffer << "M1,1,j_1,1,Terminated,10,20,100.00,0.50\n";
  buffer << "M1,1,j_2,1,Terminated,10,20,100.00,0.50\n";
  buffer << "M1,1,j_3,1,Terminated,10,20,100.00,0.50\n";
  std::vector<std::string> seen;
  const auto stats = for_each_job_in_task_csv(
      buffer, [&](const std::string& job, const std::vector<TaskRecord>&) {
        seen.push_back(job);
        return false;  // stop after the very first group
      });
  EXPECT_EQ(seen, (std::vector<std::string>{"j_1"}));
  EXPECT_EQ(stats.jobs, 1u);
  // The stop lands when j_2's first row flushes j_1, so exactly one later
  // row was parsed and none of j_3's.
  EXPECT_EQ(stats.rows, 2u);
}

TEST(TraceIoStream, RepeatedReoccurrencesEachCountFragmented) {
  std::stringstream buffer;
  for (int round = 0; round < 3; ++round) {
    buffer << "M1,1,j_a,1,Terminated,10,20,100.00,0.50\n";
    buffer << "M1,1,j_b,1,Terminated,10,20,100.00,0.50\n";
  }
  const auto stats = for_each_job_in_task_csv(
      buffer, [](const std::string&, const std::vector<TaskRecord>&) {
        return true;
      });
  EXPECT_EQ(stats.jobs, 6u);
  // Both jobs re-occur twice after their first group: 4 fragmented groups.
  EXPECT_EQ(stats.fragmented, 4u);
}

TEST(TraceIoStream, ConsumeVariantTransfersOwnership) {
  const Trace trace = small_trace();
  std::stringstream buffer;
  write_batch_task_csv(buffer, trace.tasks);
  std::size_t rows = 0;
  std::vector<std::vector<TaskRecord>> groups;
  const auto stats = consume_jobs_in_task_csv(
      buffer, [&](std::string&&, std::vector<TaskRecord>&& tasks) {
        rows += tasks.size();
        groups.push_back(std::move(tasks));  // keep the moved-in storage
        return true;
      });
  EXPECT_EQ(stats.rows, trace.tasks.size());
  EXPECT_EQ(rows, trace.tasks.size());
  EXPECT_EQ(groups.size(), stats.jobs);
}

TEST(TraceIo, WriteTraceThrowsWhenFileCannotBeOpened) {
  const Trace trace = small_trace();
  const auto dir = std::filesystem::temp_directory_path() / "cwgl_io_blocked";
  std::filesystem::remove_all(dir);
  // A directory squatting on the target filename makes the open fail.
  std::filesystem::create_directories(dir / "batch_task.csv");
  EXPECT_THROW(write_trace(trace, dir), util::Error);
  std::filesystem::remove_all(dir);
}

TEST(TraceIo, InstanceFilePresentButUnopenableThrows) {
  const Trace trace = small_trace();
  const auto dir = std::filesystem::temp_directory_path() / "cwgl_io_unreadable";
  std::filesystem::remove_all(dir);
  write_trace(trace, dir);
  // Replace the instance file with a directory: it exists, so "absent" must
  // not be assumed — read_trace has to raise instead of returning a partial
  // trace with silently empty instances.
  std::filesystem::remove(dir / "batch_instance.csv");
  std::filesystem::create_directories(dir / "batch_instance.csv");
  EXPECT_THROW(read_trace(dir), util::Error);
  std::filesystem::remove_all(dir);
}

TEST(TraceIo, InstanceFileCorruptMidStreamThrows) {
  const Trace trace = small_trace();
  const auto dir = std::filesystem::temp_directory_path() / "cwgl_io_corrupt";
  std::filesystem::remove_all(dir);
  write_trace(trace, dir);
  {
    std::ofstream out(dir / "batch_instance.csv", std::ios::app);
    out << "\"unterminated quoted field";
  }
  TraceReadOptions strict;
  strict.lenient = false;
  EXPECT_THROW(read_trace(dir, nullptr, strict), util::Error);
  // The default (lenient) read quarantines the damaged record instead of
  // failing, and reports it through the skipped counter.
  std::size_t skipped = 0;
  const Trace recovered = read_trace(dir, &skipped);
  EXPECT_EQ(recovered.tasks.size(), trace.tasks.size());
  EXPECT_EQ(recovered.instances.size(), trace.instances.size());
  EXPECT_EQ(skipped, 1u);
  std::filesystem::remove_all(dir);
}

TEST(TraceIo, MissingTaskFileThrows) {
  const auto dir = std::filesystem::temp_directory_path() / "cwgl_io_missing";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  EXPECT_THROW(read_trace(dir), util::Error);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace cwgl::trace

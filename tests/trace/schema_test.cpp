#include "trace/schema.hpp"

#include <gtest/gtest.h>

namespace cwgl::trace {
namespace {

TEST(Status, RoundTripAllKnown) {
  for (Status s : {Status::Waiting, Status::Running, Status::Terminated,
                   Status::Failed, Status::Cancelled, Status::Interrupted}) {
    EXPECT_EQ(parse_status(to_string(s)), s);
  }
}

TEST(Status, UnknownTextMapsToUnknown) {
  EXPECT_EQ(parse_status("Banana"), Status::Unknown);
  EXPECT_EQ(parse_status(""), Status::Unknown);
  EXPECT_EQ(parse_status("terminated"), Status::Unknown);  // case-sensitive
}

TaskRecord sample_task() {
  TaskRecord t;
  t.task_name = "R2_1";
  t.instance_num = 10;
  t.job_name = "j_42";
  t.task_type = 1;
  t.status = Status::Terminated;
  t.start_time = 1000;
  t.end_time = 1500;
  t.plan_cpu = 100.0;
  t.plan_mem = 0.55;
  return t;
}

TEST(TaskRecord, FieldsRoundTrip) {
  const TaskRecord t = sample_task();
  const auto fields = t.to_fields();
  ASSERT_EQ(fields.size(), 9u);
  const auto back = TaskRecord::from_fields(fields);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->task_name, t.task_name);
  EXPECT_EQ(back->instance_num, t.instance_num);
  EXPECT_EQ(back->job_name, t.job_name);
  EXPECT_EQ(back->status, t.status);
  EXPECT_EQ(back->start_time, t.start_time);
  EXPECT_EQ(back->end_time, t.end_time);
  EXPECT_DOUBLE_EQ(back->plan_cpu, t.plan_cpu);
  EXPECT_DOUBLE_EQ(back->plan_mem, t.plan_mem);
}

TEST(TaskRecord, ColumnOrderMatchesAlibabaV2018) {
  const auto fields = sample_task().to_fields();
  // task_name, instance_num, job_name, task_type, status, start, end,
  // plan_cpu, plan_mem
  EXPECT_EQ(fields[0], "R2_1");
  EXPECT_EQ(fields[1], "10");
  EXPECT_EQ(fields[2], "j_42");
  EXPECT_EQ(fields[4], "Terminated");
  EXPECT_EQ(fields[5], "1000");
}

TEST(TaskRecord, FromFieldsRejectsWrongArity) {
  std::vector<std::string> fields = sample_task().to_fields();
  fields.pop_back();
  EXPECT_FALSE(TaskRecord::from_fields(fields).has_value());
  fields.push_back("0.5");
  fields.push_back("extra");
  EXPECT_FALSE(TaskRecord::from_fields(fields).has_value());
}

TEST(TaskRecord, FromFieldsRejectsBadNumerics) {
  auto fields = sample_task().to_fields();
  fields[1] = "ten";
  EXPECT_FALSE(TaskRecord::from_fields(fields).has_value());
  fields = sample_task().to_fields();
  fields[5] = "12.5.1";
  EXPECT_FALSE(TaskRecord::from_fields(fields).has_value());
}

TEST(TaskRecord, UnknownStatusStillParses) {
  auto fields = sample_task().to_fields();
  fields[4] = "Exotic";
  const auto back = TaskRecord::from_fields(fields);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->status, Status::Unknown);
}

InstanceRecord sample_instance() {
  InstanceRecord r;
  r.instance_name = "inst_1";
  r.task_name = "M1";
  r.job_name = "j_42";
  r.task_type = 1;
  r.status = Status::Terminated;
  r.start_time = 1000;
  r.end_time = 1100;
  r.machine_id = "m_77";
  r.seq_no = 1;
  r.total_seq_no = 1;
  r.cpu_avg = 55.5;
  r.cpu_max = 80.0;
  r.mem_avg = 0.4;
  r.mem_max = 0.6;
  return r;
}

TEST(InstanceRecord, FieldsRoundTrip) {
  const InstanceRecord r = sample_instance();
  const auto fields = r.to_fields();
  ASSERT_EQ(fields.size(), 14u);
  const auto back = InstanceRecord::from_fields(fields);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->instance_name, r.instance_name);
  EXPECT_EQ(back->machine_id, r.machine_id);
  EXPECT_DOUBLE_EQ(back->cpu_avg, r.cpu_avg);
  EXPECT_DOUBLE_EQ(back->mem_max, r.mem_max);
}

TEST(InstanceRecord, FromFieldsRejectsWrongArity) {
  auto fields = sample_instance().to_fields();
  fields.pop_back();
  EXPECT_FALSE(InstanceRecord::from_fields(fields).has_value());
}

TEST(InstanceRecord, FromFieldsRejectsBadNumerics) {
  auto fields = sample_instance().to_fields();
  fields[10] = "not-a-number";
  EXPECT_FALSE(InstanceRecord::from_fields(fields).has_value());
}

TEST(TaskRecord, DurationViaMeta) {
  TaskRecord t = sample_task();
  EXPECT_EQ(t.end_time - t.start_time, 500);
}

}  // namespace
}  // namespace cwgl::trace

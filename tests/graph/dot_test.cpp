#include "graph/dot.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace cwgl::graph {
namespace {

TEST(ToDot, ContainsVerticesAndEdges) {
  const std::vector<Edge> edges{{0, 1}, {1, 2}};
  const Digraph g(3, edges);
  const std::vector<std::string> labels{"M1", "R2_1", "R3_2"};
  const std::string dot = to_dot(g, labels, "job_1");
  EXPECT_NE(dot.find("digraph \"job_1\""), std::string::npos);
  EXPECT_NE(dot.find("n0 [label=\"M1\"]"), std::string::npos);
  EXPECT_NE(dot.find("n1 [label=\"R2_1\"]"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1;"), std::string::npos);
  EXPECT_NE(dot.find("n1 -> n2;"), std::string::npos);
}

TEST(ToDot, EmptyLabelsUseIndices) {
  const Digraph g(2, {});
  const std::string dot = to_dot(g, {});
  EXPECT_NE(dot.find("n0;"), std::string::npos);
  EXPECT_NE(dot.find("n1;"), std::string::npos);
  EXPECT_EQ(dot.find("label="), std::string::npos);
}

TEST(ToDot, EscapesQuotesAndBackslashes) {
  const Digraph g(1, {});
  const std::vector<std::string> labels{"a\"b\\c"};
  const std::string dot = to_dot(g, labels);
  EXPECT_NE(dot.find("a\\\"b\\\\c"), std::string::npos);
}

TEST(ToDot, LabelCountMismatchThrows) {
  const Digraph g(2, {});
  const std::vector<std::string> labels{"only-one"};
  EXPECT_THROW(to_dot(g, labels), util::InvalidArgument);
}

TEST(ToDot, WellFormedBraces) {
  const Digraph g(3, std::vector<Edge>{{0, 1}});
  const std::string dot = to_dot(g, {});
  EXPECT_EQ(dot.front(), 'd');
  EXPECT_EQ(dot[dot.size() - 2], '}');
  EXPECT_EQ(dot.back(), '\n');
}

}  // namespace
}  // namespace cwgl::graph

#include "graph/canonical.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "graph/digraph.hpp"
#include "graph/isomorphism.hpp"
#include "support/proptest.hpp"

namespace cwgl::graph {
namespace {

using cwgl::proptest::permuted;
using cwgl::proptest::random_job_graph;
using cwgl::proptest::random_permutation;
using cwgl::proptest::run_cases;

// ---------------------------------------------------------------------------
// Invariance: relabeling vertices through any permutation must never change
// the canonical hash — this is the property ShapeStore's dedup rests on.
// ---------------------------------------------------------------------------

TEST(CanonicalHashProperty, InvariantUnderVertexPermutation) {
  run_cases(0xCA50'0001ULL, 60, [](util::Xoshiro256StarStar& rng) {
    const kernel::LabeledGraph g = random_job_graph(rng, 2, 14);
    const std::uint64_t h = canonical_hash(g.graph, g.labels);
    const auto perm = random_permutation(g.graph.num_vertices(), rng);
    const kernel::LabeledGraph iso = permuted(g, perm);
    EXPECT_EQ(canonical_hash(iso.graph, iso.labels), h);
  });
}

TEST(CanonicalHashProperty, AgreesWithExactIsomorphismOnPermutedCopies) {
  run_cases(0xCA50'0002ULL, 30, [](util::Xoshiro256StarStar& rng) {
    const kernel::LabeledGraph g = random_job_graph(rng, 2, 10);
    const auto perm = random_permutation(g.graph.num_vertices(), rng);
    const kernel::LabeledGraph iso = permuted(g, perm);
    ASSERT_TRUE(are_isomorphic(g.graph, g.labels, iso.graph, iso.labels));
    EXPECT_EQ(canonical_hash(g.graph, g.labels),
              canonical_hash(iso.graph, iso.labels));
  });
}

// ---------------------------------------------------------------------------
// Sensitivity: perturbing a label or an edge must move the hash. WL + a
// 64-bit mix is not a perfect invariant, so this is technically
// probabilistic — but a single collision here would also break the intern
// table's usefulness, so we want to hear about it.
// ---------------------------------------------------------------------------

TEST(CanonicalHashProperty, SensitiveToSingleLabelChange) {
  run_cases(0xCA50'0003ULL, 60, [](util::Xoshiro256StarStar& rng) {
    kernel::LabeledGraph g = random_job_graph(rng, 2, 14);
    const std::uint64_t h = canonical_hash(g.graph, g.labels);
    const int v = rng.uniform_int(0, g.graph.num_vertices() - 1);
    g.labels[static_cast<std::size_t>(v)] += 1;  // a label no vertex has
    EXPECT_NE(canonical_hash(g.graph, g.labels), h);
  });
}

TEST(CanonicalHashProperty, SensitiveToEdgeRemoval) {
  run_cases(0xCA50'0004ULL, 60, [](util::Xoshiro256StarStar& rng) {
    const kernel::LabeledGraph g = random_job_graph(rng, 3, 14);
    const auto edges = g.graph.edges();
    if (edges.empty()) return;
    const std::uint64_t h = canonical_hash(g.graph, g.labels);
    const std::size_t drop = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(edges.size()) - 1));
    std::vector<Edge> pruned;
    for (std::size_t i = 0; i < edges.size(); ++i) {
      if (i != drop) pruned.push_back(edges[i]);
    }
    const Digraph smaller(g.graph.num_vertices(), pruned);
    EXPECT_NE(canonical_hash(smaller, g.labels), h);
  });
}

// ---------------------------------------------------------------------------
// Curated near-isomorphic pairs: same vertex count, same degree sequence or
// same undirected skeleton, yet NOT isomorphic. These are the adversarial
// cases a weaker invariant (degree histogram, undirected WL) would merge.
// ---------------------------------------------------------------------------

struct NamedPair {
  const char* name;
  Digraph a;
  std::vector<int> labels_a;
  Digraph b;
  std::vector<int> labels_b;
};

Digraph make(int n, const std::vector<Edge>& edges) {
  return Digraph(n, edges);
}

std::vector<NamedPair> near_isomorphic_pairs() {
  std::vector<NamedPair> pairs;
  // Chain vs fan-in: same size, same edge count.
  pairs.push_back(NamedPair{"chain3-vs-fanin3",
                            make(3, {{0, 1}, {1, 2}}), {},
                            make(3, {{0, 2}, {1, 2}}), {}});
  // Fan-out vs fan-in: identical undirected skeletons, reversed edges.
  pairs.push_back(NamedPair{"fanout3-vs-fanin3",
                            make(3, {{0, 1}, {0, 2}}), {},
                            make(3, {{1, 0}, {2, 0}}), {}});
  // Diamond vs "double chain": 4 vertices, 4 edges each, one source and one
  // sink each, but different in/out degree multisets at the middle layer.
  pairs.push_back(NamedPair{"diamond-vs-kite",
                            make(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}}), {},
                            make(4, {{0, 1}, {1, 2}, {1, 3}, {2, 3}}), {}});
  // Two chains vs one chain + isolated pair: same vertex count and total
  // edges, different component structure.
  pairs.push_back(NamedPair{"2x-chain2-vs-chain3-plus-isolated",
                            make(4, {{0, 1}, {2, 3}}), {},
                            make(4, {{0, 1}, {1, 2}}), {}});
  // Same topology, different label placement: a chain M->R->R vs M->M->R.
  pairs.push_back(NamedPair{"chain-label-placement",
                            make(3, {{0, 1}, {1, 2}}), {'M', 'R', 'R'},
                            make(3, {{0, 1}, {1, 2}}), {'M', 'M', 'R'}});
  // Inverted triangle vs trapezium-ish merge: 5 vertices, 4 edges.
  pairs.push_back(NamedPair{"invtriangle-vs-deep-merge",
                            make(5, {{0, 4}, {1, 4}, {2, 4}, {3, 4}}), {},
                            make(5, {{0, 3}, {1, 3}, {2, 4}, {3, 4}}), {}});
  return pairs;
}

TEST(CanonicalHashProperty, CuratedNearIsomorphicPairsDoNotCollide) {
  for (const NamedPair& pair : near_isomorphic_pairs()) {
    SCOPED_TRACE(pair.name);
    ASSERT_FALSE(
        are_isomorphic(pair.a, pair.labels_a, pair.b, pair.labels_b));
    EXPECT_NE(canonical_hash(pair.a, pair.labels_a),
              canonical_hash(pair.b, pair.labels_b));
  }
}

// ---------------------------------------------------------------------------
// Cross-corpus consistency: within a random corpus, hash equality must
// coincide with exact isomorphism (both directions) at job scale.
// ---------------------------------------------------------------------------

TEST(CanonicalHashProperty, HashEqualityMatchesIsomorphismWithinCorpus) {
  run_cases(0xCA50'0005ULL, 6, [](util::Xoshiro256StarStar& rng) {
    const auto corpus = cwgl::proptest::random_corpus(rng, 12, 2, 8);
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      for (std::size_t j = i + 1; j < corpus.size(); ++j) {
        const bool same_hash =
            canonical_hash(corpus[i].graph, corpus[i].labels) ==
            canonical_hash(corpus[j].graph, corpus[j].labels);
        const bool iso = are_isomorphic(corpus[i].graph, corpus[i].labels,
                                        corpus[j].graph, corpus[j].labels);
        EXPECT_EQ(same_hash, iso)
            << "pair (" << i << ", " << j << ") disagrees";
      }
    }
  });
}

}  // namespace
}  // namespace cwgl::graph

// Property coverage for node conflation on random job DAGs: conflation is
// a fixpoint operation, so applying it to its own output must change
// nothing — conflate(conflate(g)) == conflate(g) — and the result can
// never be larger than the input. Previously only hand-built examples
// covered this.

#include "graph/conflation.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "support/proptest.hpp"

namespace cwgl::graph {
namespace {

TEST(ConflationProperty, ConflationIsIdempotent) {
  proptest::run_cases(0xC0F1A001, 20, [](util::Xoshiro256StarStar& rng) {
    const auto g = proptest::random_job_graph(rng, 2, 20);
    const ConflationResult once = conflate(g.graph, g.labels);
    const ConflationResult twice = conflate(once.graph, once.labels);

    EXPECT_EQ(twice.graph, once.graph);
    EXPECT_EQ(twice.labels, once.labels);
    // The second pass must find nothing to merge: identity mapping,
    // every group a singleton.
    for (std::size_t v = 0; v < twice.mapping.size(); ++v) {
      EXPECT_EQ(twice.mapping[v], static_cast<int>(v));
    }
    for (int m : twice.multiplicity) EXPECT_EQ(m, 1);
  });
}

TEST(ConflationProperty, ConflationNeverGrowsTheGraph) {
  proptest::run_cases(0xC0F1A002, 20, [](util::Xoshiro256StarStar& rng) {
    const auto g = proptest::random_job_graph(rng, 2, 20);
    const ConflationResult result = conflate(g.graph, g.labels);
    EXPECT_LE(result.graph.num_vertices(), g.graph.num_vertices());
    EXPECT_LE(result.graph.num_edges(), g.graph.num_edges());
    // Multiplicities account for every original vertex exactly once.
    int total = 0;
    for (int m : result.multiplicity) total += m;
    EXPECT_EQ(total, g.graph.num_vertices());
  });
}

TEST(ConflationProperty, ConflationCommutesWithVertexPermutation) {
  // Conflating a relabeled copy must yield an isomorphic result — the
  // merged vertex count and label multiset cannot depend on vertex order.
  proptest::run_cases(0xC0F1A003, 20, [](util::Xoshiro256StarStar& rng) {
    const auto g = proptest::random_job_graph(rng, 2, 16);
    const auto perm = proptest::random_permutation(g.graph.num_vertices(), rng);
    const auto h = proptest::permuted(g, perm);

    const ConflationResult cg = conflate(g.graph, g.labels);
    const ConflationResult ch = conflate(h.graph, h.labels);
    EXPECT_EQ(cg.graph.num_vertices(), ch.graph.num_vertices());
    EXPECT_EQ(cg.graph.num_edges(), ch.graph.num_edges());

    auto sorted_labels = [](std::vector<int> labels) {
      std::sort(labels.begin(), labels.end());
      return labels;
    };
    EXPECT_EQ(sorted_labels(cg.labels), sorted_labels(ch.labels));
  });
}

}  // namespace
}  // namespace cwgl::graph

#include "graph/digraph.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace cwgl::graph {
namespace {

TEST(Digraph, EmptyGraph) {
  Digraph g;
  EXPECT_EQ(g.num_vertices(), 0);
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(Digraph, VerticesWithoutEdges) {
  Digraph g(4, {});
  EXPECT_EQ(g.num_vertices(), 4);
  EXPECT_EQ(g.num_edges(), 0);
  for (int v = 0; v < 4; ++v) {
    EXPECT_TRUE(g.successors(v).empty());
    EXPECT_TRUE(g.predecessors(v).empty());
  }
}

TEST(Digraph, AdjacencyBothDirections) {
  const std::vector<Edge> edges{{0, 1}, {0, 2}, {1, 2}};
  Digraph g(3, edges);
  EXPECT_EQ(g.num_edges(), 3);
  ASSERT_EQ(g.successors(0).size(), 2u);
  EXPECT_EQ(g.successors(0)[0], 1);
  EXPECT_EQ(g.successors(0)[1], 2);
  ASSERT_EQ(g.predecessors(2).size(), 2u);
  EXPECT_EQ(g.predecessors(2)[0], 0);
  EXPECT_EQ(g.predecessors(2)[1], 1);
  EXPECT_EQ(g.in_degree(2), 2);
  EXPECT_EQ(g.out_degree(0), 2);
  EXPECT_EQ(g.in_degree(0), 0);
}

TEST(Digraph, DuplicateEdgesCollapse) {
  const std::vector<Edge> edges{{0, 1}, {0, 1}, {0, 1}};
  Digraph g(2, edges);
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(Digraph, SuccessorsSortedRegardlessOfInsertionOrder) {
  const std::vector<Edge> edges{{0, 3}, {0, 1}, {0, 2}};
  Digraph g(4, edges);
  const auto succ = g.successors(0);
  ASSERT_EQ(succ.size(), 3u);
  EXPECT_TRUE(std::is_sorted(succ.begin(), succ.end()));
}

TEST(Digraph, HasEdge) {
  const std::vector<Edge> edges{{0, 1}, {1, 2}};
  Digraph g(3, edges);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_FALSE(g.has_edge(-1, 0));
  EXPECT_FALSE(g.has_edge(0, 99));
}

TEST(Digraph, OutOfRangeEdgeThrows) {
  const std::vector<Edge> bad{{0, 5}};
  EXPECT_THROW(Digraph(3, bad), util::GraphError);
  const std::vector<Edge> negative{{-1, 0}};
  EXPECT_THROW(Digraph(3, negative), util::GraphError);
}

TEST(Digraph, NegativeVertexCountThrows) {
  EXPECT_THROW(Digraph(-1, {}), util::GraphError);
}

TEST(Digraph, EdgesRoundTrip) {
  const std::vector<Edge> edges{{2, 0}, {0, 1}, {1, 2}};
  Digraph g(3, edges);
  const auto out = g.edges();
  ASSERT_EQ(out.size(), 3u);
  Digraph h(3, out);
  EXPECT_EQ(g, h);
}

TEST(Digraph, EqualityIsStructural) {
  const std::vector<Edge> a{{0, 1}, {1, 2}};
  const std::vector<Edge> b{{1, 2}, {0, 1}};
  EXPECT_EQ(Digraph(3, a), Digraph(3, b));
  EXPECT_NE(Digraph(3, a), Digraph(4, a));
}

TEST(Digraph, SelfLoopPreserved) {
  const std::vector<Edge> edges{{1, 1}};
  Digraph g(2, edges);
  EXPECT_TRUE(g.has_edge(1, 1));
  EXPECT_EQ(g.in_degree(1), 1);
  EXPECT_EQ(g.out_degree(1), 1);
}

TEST(DigraphBuilder, IncrementalConstruction) {
  DigraphBuilder b;
  const int v0 = b.add_vertex();
  const int v1 = b.add_vertex();
  const int v2 = b.add_vertex();
  b.add_edge(v0, v1);
  b.add_edge(v1, v2);
  const Digraph g = b.build();
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
}

TEST(DigraphBuilder, ReserveVerticesNeverShrinks) {
  DigraphBuilder b;
  b.reserve_vertices(5);
  b.reserve_vertices(2);
  EXPECT_EQ(b.num_vertices(), 5);
}

TEST(DigraphBuilder, EdgeBeforeVertexThrows) {
  DigraphBuilder b;
  b.add_vertex();
  EXPECT_THROW(b.add_edge(0, 1), util::GraphError);
}

}  // namespace
}  // namespace cwgl::graph

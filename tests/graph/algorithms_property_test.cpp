// Property sweeps over randomly synthesized job-shaped DAGs: the structural
// algorithms must satisfy their mathematical invariants on every input.

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/conflation.hpp"
#include "graph/digraph.hpp"
#include "trace/generator.hpp"
#include "util/rng.hpp"

namespace cwgl::graph {
namespace {

std::vector<Digraph> random_dags(std::uint64_t seed, std::size_t count) {
  util::Xoshiro256StarStar rng(seed);
  static constexpr ShapePattern kShapes[] = {
      ShapePattern::StraightChain, ShapePattern::InvertedTriangle,
      ShapePattern::Diamond, ShapePattern::Hourglass, ShapePattern::Trapezium,
      ShapePattern::Combination};
  std::vector<Digraph> out;
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(trace::synthesize_shape(kShapes[i % 6],
                                          rng.uniform_int(2, 31), rng));
  }
  return out;
}

class GraphInvariantsP : public ::testing::TestWithParam<int> {};

TEST_P(GraphInvariantsP, TopologicalSortIsValidPermutation) {
  for (const Digraph& g : random_dags(GetParam(), 20)) {
    const auto order = topological_sort(g);
    ASSERT_TRUE(order.has_value());
    ASSERT_EQ(static_cast<int>(order->size()), g.num_vertices());
    std::vector<int> position(g.num_vertices());
    for (int i = 0; i < g.num_vertices(); ++i) position[(*order)[i]] = i;
    for (const Edge& e : g.edges()) {
      EXPECT_LT(position[e.from], position[e.to]);
    }
  }
}

TEST_P(GraphInvariantsP, DepthTimesWidthCoversVertexCount) {
  for (const Digraph& g : random_dags(GetParam() + 100, 20)) {
    const int depth = critical_path_length(g);
    const int width = max_width(g);
    EXPECT_LE(depth, g.num_vertices());
    EXPECT_LE(width, g.num_vertices());
    // Every vertex sits on exactly one of `depth` levels of size <= width.
    EXPECT_GE(depth * width, g.num_vertices());
    // Width profile sums to n.
    int total = 0;
    for (int w : width_profile(g)) total += w;
    EXPECT_EQ(total, g.num_vertices());
  }
}

TEST_P(GraphInvariantsP, CriticalPathMatchesExtractedPath) {
  for (const Digraph& g : random_dags(GetParam() + 200, 20)) {
    const auto path = critical_path(g);
    EXPECT_EQ(static_cast<int>(path.size()), critical_path_length(g));
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      EXPECT_TRUE(g.has_edge(path[i], path[i + 1]));
    }
  }
}

TEST_P(GraphInvariantsP, TransitiveReductionPreservesReachability) {
  for (const Digraph& g : random_dags(GetParam() + 300, 10)) {
    const Digraph reduced = transitive_reduction(g);
    EXPECT_LE(reduced.num_edges(), g.num_edges());
    // Reachable sets (counted per vertex) must be identical.
    EXPECT_EQ(descendant_counts(reduced), descendant_counts(g));
    // Levels (longest paths) are preserved too.
    EXPECT_EQ(longest_path_levels(reduced), longest_path_levels(g));
  }
}

TEST_P(GraphInvariantsP, ConflationNeverGrowsAndPreservesDepth) {
  util::Xoshiro256StarStar rng(GetParam() + 400);
  for (const Digraph& g : random_dags(GetParam() + 400, 20)) {
    std::vector<int> labels(g.num_vertices());
    for (int v = 0; v < g.num_vertices(); ++v) {
      labels[v] = g.in_degree(v) == 0 ? 'M' : (rng.bernoulli(0.3) ? 'J' : 'R');
    }
    const auto merged = conflate(g, labels);
    EXPECT_LE(merged.graph.num_vertices(), g.num_vertices());
    EXPECT_TRUE(is_dag(merged.graph));
    // Merging parallel clones cannot deepen or lengthen the critical path.
    EXPECT_EQ(critical_path_length(merged.graph), critical_path_length(g));
    // Width can only shrink.
    EXPECT_LE(max_width(merged.graph), max_width(g));
    // Multiplicities account for every original vertex.
    int total = 0;
    for (int m : merged.multiplicity) total += m;
    EXPECT_EQ(total, g.num_vertices());
  }
}

TEST_P(GraphInvariantsP, SourcesAndSinksNonEmptyInDags) {
  for (const Digraph& g : random_dags(GetParam() + 500, 20)) {
    EXPECT_FALSE(sources(g).empty());
    EXPECT_FALSE(sinks(g).empty());
    for (int s : sources(g)) EXPECT_EQ(g.in_degree(s), 0);
    for (int s : sinks(g)) EXPECT_EQ(g.out_degree(s), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphInvariantsP, ::testing::Range(1, 6));

}  // namespace
}  // namespace cwgl::graph

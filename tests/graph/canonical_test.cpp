#include "graph/canonical.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace cwgl::graph {
namespace {

/// Relabels vertices of `g` through permutation `perm` (perm[v] = new id).
Digraph permuted(const Digraph& g, const std::vector<int>& perm) {
  std::vector<Edge> edges;
  for (const Edge& e : g.edges()) edges.push_back({perm[e.from], perm[e.to]});
  return Digraph(g.num_vertices(), edges);
}

TEST(CanonicalHash, Deterministic) {
  const std::vector<Edge> edges{{0, 1}, {1, 2}};
  const Digraph g(3, edges);
  EXPECT_EQ(canonical_hash(g, {}), canonical_hash(g, {}));
}

TEST(CanonicalHash, InvariantUnderPermutation) {
  const std::vector<Edge> edges{{0, 1}, {0, 2}, {1, 3}, {2, 3}};
  const Digraph g(4, edges);
  const std::vector<int> labels{1, 2, 2, 3};
  util::Xoshiro256StarStar rng(77);
  std::vector<int> perm{0, 1, 2, 3};
  for (int trial = 0; trial < 20; ++trial) {
    rng.shuffle(perm);
    std::vector<int> permuted_labels(4);
    for (int v = 0; v < 4; ++v) permuted_labels[perm[v]] = labels[v];
    EXPECT_EQ(canonical_hash(permuted(g, perm), permuted_labels),
              canonical_hash(g, labels));
  }
}

TEST(CanonicalHash, DistinguishesChainFromFanIn) {
  const std::vector<Edge> chain{{0, 1}, {1, 2}};
  const std::vector<Edge> fan{{0, 2}, {1, 2}};
  EXPECT_NE(canonical_hash(Digraph(3, chain), {}),
            canonical_hash(Digraph(3, fan), {}));
}

TEST(CanonicalHash, DistinguishesEdgeDirection) {
  const std::vector<Edge> fwd{{0, 1}};
  // A 2-vertex graph with one edge is isomorphic to its reverse via vertex
  // swap, so use an asymmetric 3-vertex case instead.
  const std::vector<Edge> fan_out{{0, 1}, {0, 2}};
  const std::vector<Edge> fan_in{{1, 0}, {2, 0}};
  (void)fwd;
  EXPECT_NE(canonical_hash(Digraph(3, fan_out), {}),
            canonical_hash(Digraph(3, fan_in), {}));
}

TEST(CanonicalHash, LabelsMatter) {
  const std::vector<Edge> edges{{0, 1}};
  const Digraph g(2, edges);
  const std::vector<int> mr{'M', 'R'};
  const std::vector<int> mm{'M', 'M'};
  EXPECT_NE(canonical_hash(g, mr), canonical_hash(g, mm));
}

TEST(CanonicalHash, SizeMatters) {
  EXPECT_NE(canonical_hash(Digraph(2, {}), {}), canonical_hash(Digraph(3, {}), {}));
}

TEST(CanonicalHash, EmptyGraphStable) {
  EXPECT_EQ(canonical_hash(Digraph(), {}), canonical_hash(Digraph(), {}));
}

TEST(CanonicalHash, LabelSizeMismatchThrows) {
  const Digraph g(3, {});
  const std::vector<int> labels{1};
  EXPECT_THROW(canonical_hash(g, labels), util::InvalidArgument);
}

TEST(CanonicalHash, DistinguishesNonIsomorphicSameDegreeSequence) {
  // Two 6-vertex DAGs with the same degree sequence but different wiring:
  // two triangles-of-paths vs one 6-path... use: P3 + P3 vs P6 split point.
  const std::vector<Edge> two_chains{{0, 1}, {1, 2}, {3, 4}, {4, 5}};
  const std::vector<Edge> one_chain_plus{{0, 1}, {1, 2}, {2, 3}, {4, 5}};
  EXPECT_NE(canonical_hash(Digraph(6, two_chains), {}),
            canonical_hash(Digraph(6, one_chain_plus), {}));
}

}  // namespace
}  // namespace cwgl::graph

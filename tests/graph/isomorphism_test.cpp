#include "graph/isomorphism.hpp"

#include <gtest/gtest.h>

#include "graph/canonical.hpp"
#include "trace/generator.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace cwgl::graph {
namespace {

Digraph permuted(const Digraph& g, const std::vector<int>& perm) {
  std::vector<Edge> edges;
  for (const Edge& e : g.edges()) edges.push_back({perm[e.from], perm[e.to]});
  return Digraph(g.num_vertices(), edges);
}

TEST(AreIsomorphic, IdenticalGraphs) {
  const Digraph g(3, std::vector<Edge>{{0, 1}, {1, 2}});
  EXPECT_TRUE(are_isomorphic(g, {}, g, {}));
}

TEST(AreIsomorphic, PermutedCopy) {
  const Digraph g(4, std::vector<Edge>{{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  const std::vector<int> perm{3, 1, 0, 2};
  EXPECT_TRUE(are_isomorphic(g, {}, permuted(g, perm), {}));
}

TEST(AreIsomorphic, DifferentSizesRejectedFast) {
  EXPECT_FALSE(are_isomorphic(Digraph(2, {}), {}, Digraph(3, {}), {}));
}

TEST(AreIsomorphic, DifferentEdgeCounts) {
  const Digraph a(3, std::vector<Edge>{{0, 1}});
  const Digraph b(3, std::vector<Edge>{{0, 1}, {1, 2}});
  EXPECT_FALSE(are_isomorphic(a, {}, b, {}));
}

TEST(AreIsomorphic, ChainVsFanIn) {
  const Digraph chain(3, std::vector<Edge>{{0, 1}, {1, 2}});
  const Digraph fan(3, std::vector<Edge>{{0, 2}, {1, 2}});
  EXPECT_FALSE(are_isomorphic(chain, {}, fan, {}));
}

TEST(AreIsomorphic, DirectionMatters) {
  const Digraph out_star(3, std::vector<Edge>{{0, 1}, {0, 2}});
  const Digraph in_star(3, std::vector<Edge>{{1, 0}, {2, 0}});
  EXPECT_FALSE(are_isomorphic(out_star, {}, in_star, {}));
}

TEST(AreIsomorphic, LabelsBreakSymmetry) {
  const Digraph g(2, std::vector<Edge>{{0, 1}});
  const std::vector<int> mr{'M', 'R'};
  const std::vector<int> rm{'R', 'M'};
  EXPECT_TRUE(are_isomorphic(g, mr, g, mr));
  EXPECT_FALSE(are_isomorphic(g, mr, g, rm));
}

TEST(AreIsomorphic, LabelPermutationConsistent) {
  const Digraph g(3, std::vector<Edge>{{0, 2}, {1, 2}});
  const std::vector<int> labels{'M', 'J', 'R'};
  const std::vector<int> perm{2, 0, 1};
  std::vector<int> plabels(3);
  for (int v = 0; v < 3; ++v) plabels[perm[v]] = labels[v];
  EXPECT_TRUE(are_isomorphic(g, labels, permuted(g, perm), plabels));
}

TEST(AreIsomorphic, SelfLoopsRespected) {
  const Digraph with_loop(2, std::vector<Edge>{{0, 0}, {0, 1}});
  const Digraph without(2, std::vector<Edge>{{0, 1}, {1, 1}});
  // Same size/edge count, different loop placement relative to direction:
  // vertex with loop has out-degree 2 vs in-degree 2 — not isomorphic.
  EXPECT_FALSE(are_isomorphic(with_loop, {}, without, {}));
}

TEST(AreIsomorphic, Validation) {
  const Digraph g(2, {});
  const std::vector<int> wrong{1};
  EXPECT_THROW(are_isomorphic(g, wrong, g, {}), util::InvalidArgument);
  EXPECT_THROW(are_isomorphic(Digraph(40, {}), {}, Digraph(40, {}), {}),
               util::InvalidArgument);
}

/// Cross-validation sweep: on random job-shaped DAGs, canonical_hash and the
/// exact isomorphism test must agree — equal hashes for permuted copies,
/// and (modulo astronomically unlikely collisions) distinct hashes exactly
/// when graphs are non-isomorphic.
class HashVsExactP : public ::testing::TestWithParam<int> {};

TEST_P(HashVsExactP, CanonicalHashMatchesExactIsomorphism) {
  util::Xoshiro256StarStar rng(static_cast<std::uint64_t>(GetParam()));
  static constexpr ShapePattern kShapes[] = {
      ShapePattern::StraightChain, ShapePattern::InvertedTriangle,
      ShapePattern::Diamond, ShapePattern::Trapezium, ShapePattern::Hourglass};
  std::vector<Digraph> graphs;
  for (int i = 0; i < 10; ++i) {
    graphs.push_back(
        trace::synthesize_shape(kShapes[i % 5], rng.uniform_int(3, 10), rng));
  }
  // Permuted copies must hash equal AND test isomorphic.
  for (const Digraph& g : graphs) {
    std::vector<int> perm(g.num_vertices());
    for (int v = 0; v < g.num_vertices(); ++v) perm[v] = v;
    rng.shuffle(perm);
    const Digraph h = permuted(g, perm);
    EXPECT_TRUE(are_isomorphic(g, {}, h, {}));
    EXPECT_EQ(canonical_hash(g, {}), canonical_hash(h, {}));
  }
  // Pairwise: hash equality must coincide with exact isomorphism.
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    for (std::size_t j = i + 1; j < graphs.size(); ++j) {
      const bool same_hash =
          canonical_hash(graphs[i], {}) == canonical_hash(graphs[j], {});
      const bool iso = are_isomorphic(graphs[i], {}, graphs[j], {});
      EXPECT_EQ(same_hash, iso) << "pair " << i << "," << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HashVsExactP, ::testing::Range(1, 7));

}  // namespace
}  // namespace cwgl::graph

#include "graph/patterns.hpp"

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "trace/generator.hpp"
#include "util/rng.hpp"

namespace cwgl::graph {
namespace {

Digraph from_widths(const std::vector<int>& widths) {
  util::Xoshiro256StarStar rng(1234);
  return trace::synthesize_dag(widths, rng);
}

TEST(ClassifyShape, SingleTask) {
  EXPECT_EQ(classify_shape(Digraph(1, {})), ShapePattern::SingleTask);
  EXPECT_EQ(classify_shape(Digraph()), ShapePattern::SingleTask);
}

TEST(ClassifyShape, StraightChain) {
  EXPECT_EQ(classify_shape(from_widths({1, 1})), ShapePattern::StraightChain);
  EXPECT_EQ(classify_shape(from_widths({1, 1, 1, 1, 1})),
            ShapePattern::StraightChain);
}

TEST(ClassifyShape, InvertedTriangle) {
  EXPECT_EQ(classify_shape(from_widths({2, 1})), ShapePattern::InvertedTriangle);
  EXPECT_EQ(classify_shape(from_widths({4, 2, 1})),
            ShapePattern::InvertedTriangle);
  EXPECT_EQ(classify_shape(from_widths({3, 3, 1})),
            ShapePattern::InvertedTriangle);
}

TEST(ClassifyShape, SimpleMapReduceIsInvertedTriangle) {
  // The paper's canonical example: two Maps merging into one Reduce.
  const std::vector<Edge> edges{{0, 2}, {1, 2}};
  EXPECT_EQ(classify_shape(Digraph(3, edges)), ShapePattern::InvertedTriangle);
}

TEST(ClassifyShape, ConvergentButNotEndingAtOne) {
  EXPECT_EQ(classify_shape(from_widths({4, 2, 2})),
            ShapePattern::InvertedTriangle);
}

TEST(ClassifyShape, Diamond) {
  EXPECT_EQ(classify_shape(from_widths({1, 3, 1})), ShapePattern::Diamond);
  EXPECT_EQ(classify_shape(from_widths({1, 2, 4, 2, 1})), ShapePattern::Diamond);
}

TEST(ClassifyShape, DoubleBumpIsNotDiamond) {
  EXPECT_EQ(classify_shape(from_widths({1, 3, 1, 2, 1})),
            ShapePattern::Combination);
}

TEST(ClassifyShape, Hourglass) {
  EXPECT_EQ(classify_shape(from_widths({3, 1, 3})), ShapePattern::Hourglass);
  EXPECT_EQ(classify_shape(from_widths({4, 2, 1, 2, 3})),
            ShapePattern::Hourglass);
}

TEST(ClassifyShape, Trapezium) {
  EXPECT_EQ(classify_shape(from_widths({1, 3})), ShapePattern::Trapezium);
  EXPECT_EQ(classify_shape(from_widths({1, 2, 4})), ShapePattern::Trapezium);
  EXPECT_EQ(classify_shape(from_widths({2, 2, 5})), ShapePattern::Trapezium);
}

TEST(ClassifyShape, CombinationShapes) {
  EXPECT_EQ(classify_shape(from_widths({1, 4, 1, 3})),
            ShapePattern::Combination);
  EXPECT_EQ(classify_shape(from_widths({2, 1, 3, 1})),
            ShapePattern::Combination);
}

TEST(ClassifyShape, EdgelessBagIsCombination) {
  EXPECT_EQ(classify_shape(Digraph(4, {})), ShapePattern::Combination);
}

TEST(ClassifyShape, TriangleHeadWithChainTailStillConvergent) {
  // The paper notes such hybrids read as convergent (group B style).
  EXPECT_EQ(classify_shape(from_widths({4, 2, 1, 1, 1})),
            ShapePattern::InvertedTriangle);
}

TEST(ToString, AllNamesDistinct) {
  const ShapePattern all[] = {
      ShapePattern::SingleTask, ShapePattern::StraightChain,
      ShapePattern::InvertedTriangle, ShapePattern::Diamond,
      ShapePattern::Hourglass, ShapePattern::Trapezium,
      ShapePattern::Combination};
  for (std::size_t i = 0; i < std::size(all); ++i) {
    EXPECT_FALSE(to_string(all[i]).empty());
    for (std::size_t j = i + 1; j < std::size(all); ++j) {
      EXPECT_NE(to_string(all[i]), to_string(all[j]));
    }
  }
}

/// Property sweep: every synthesized shape classifies as requested for all
/// sizes where the shape is realizable.
struct ShapeCase {
  ShapePattern pattern;
  int min_size;
};

class ShapeSynthesisP : public ::testing::TestWithParam<std::tuple<ShapeCase, int>> {};

TEST_P(ShapeSynthesisP, SynthesizedShapeClassifiesAsIntended) {
  const auto [shape_case, seed] = GetParam();
  util::Xoshiro256StarStar rng(static_cast<std::uint64_t>(seed));
  for (int n = shape_case.min_size; n <= 31; ++n) {
    const Digraph g = trace::synthesize_shape(shape_case.pattern, n, rng);
    EXPECT_EQ(g.num_vertices(), n);
    EXPECT_TRUE(is_dag(g));
    EXPECT_EQ(classify_shape(g), shape_case.pattern)
        << "shape " << to_string(shape_case.pattern) << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllShapesAndSeeds, ShapeSynthesisP,
    ::testing::Combine(
        ::testing::Values(ShapeCase{ShapePattern::StraightChain, 2},
                          ShapeCase{ShapePattern::InvertedTriangle, 3},
                          ShapeCase{ShapePattern::Diamond, 4},
                          ShapeCase{ShapePattern::Hourglass, 5},
                          ShapeCase{ShapePattern::Trapezium, 3},
                          ShapeCase{ShapePattern::Combination, 6}),
        ::testing::Values(1, 2, 3, 5, 8)));

}  // namespace
}  // namespace cwgl::graph

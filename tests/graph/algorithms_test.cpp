#include "graph/algorithms.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/error.hpp"

namespace cwgl::graph {
namespace {

Digraph chain(int n) {
  std::vector<Edge> edges;
  for (int i = 0; i + 1 < n; ++i) edges.push_back({i, i + 1});
  return Digraph(n, edges);
}

/// The paper's job 1001388: M1, M3, R2_1, R4_3, R5 depending on R2 and R4.
/// Vertices: 0=M1, 1=R2, 2=M3, 3=R4, 4=R5.
Digraph paper_job() {
  const std::vector<Edge> edges{{0, 1}, {2, 3}, {1, 4}, {3, 4}};
  return Digraph(5, edges);
}

TEST(TopologicalSort, ChainOrder) {
  const auto order = topological_sort(chain(5));
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(*order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(TopologicalSort, RespectsEdges) {
  const Digraph g = paper_job();
  const auto order = topological_sort(g);
  ASSERT_TRUE(order.has_value());
  std::vector<int> position(5);
  for (int i = 0; i < 5; ++i) position[(*order)[i]] = i;
  for (const Edge& e : g.edges()) EXPECT_LT(position[e.from], position[e.to]);
}

TEST(TopologicalSort, CycleReturnsNullopt) {
  const std::vector<Edge> edges{{0, 1}, {1, 2}, {2, 0}};
  EXPECT_FALSE(topological_sort(Digraph(3, edges)).has_value());
}

TEST(TopologicalSort, SelfLoopIsCycle) {
  const std::vector<Edge> edges{{0, 0}};
  EXPECT_FALSE(topological_sort(Digraph(1, edges)).has_value());
}

TEST(TopologicalSort, EmptyGraph) {
  const auto order = topological_sort(Digraph());
  ASSERT_TRUE(order.has_value());
  EXPECT_TRUE(order->empty());
}

TEST(IsDag, Classification) {
  EXPECT_TRUE(is_dag(chain(4)));
  EXPECT_TRUE(is_dag(paper_job()));
  const std::vector<Edge> cyc{{0, 1}, {1, 0}};
  EXPECT_FALSE(is_dag(Digraph(2, cyc)));
}

TEST(SourcesSinks, PaperJob) {
  const Digraph g = paper_job();
  EXPECT_EQ(sources(g), (std::vector<int>{0, 2}));  // M1, M3
  EXPECT_EQ(sinks(g), (std::vector<int>{4}));       // R5
}

TEST(SourcesSinks, EdgelessGraphAllBoth) {
  const Digraph g(3, {});
  EXPECT_EQ(sources(g).size(), 3u);
  EXPECT_EQ(sinks(g).size(), 3u);
}

TEST(Levels, ChainLevelsAreIndices) {
  const auto levels = longest_path_levels(chain(4));
  EXPECT_EQ(levels, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Levels, LongestPathNotShortest) {
  // 0->1->2->3 and shortcut 0->3: vertex 3 must sit at level 3, not 1.
  const std::vector<Edge> edges{{0, 1}, {1, 2}, {2, 3}, {0, 3}};
  const auto levels = longest_path_levels(Digraph(4, edges));
  EXPECT_EQ(levels[3], 3);
}

TEST(Levels, CycleThrows) {
  const std::vector<Edge> cyc{{0, 1}, {1, 0}};
  EXPECT_THROW(longest_path_levels(Digraph(2, cyc)), util::GraphError);
}

TEST(CriticalPath, PaperExamplesCountVertices) {
  EXPECT_EQ(critical_path_length(chain(2)), 2);  // 2-task chain has CP 2
  EXPECT_EQ(critical_path_length(chain(8)), 8);
  EXPECT_EQ(critical_path_length(paper_job()), 3);  // M1 -> R2 -> R5
}

TEST(CriticalPath, EmptyAndSingle) {
  EXPECT_EQ(critical_path_length(Digraph()), 0);
  EXPECT_EQ(critical_path_length(Digraph(1, {})), 1);
}

TEST(CriticalPath, ExtractedPathIsRealAndLongest) {
  const Digraph g = paper_job();
  const auto path = critical_path(g);
  ASSERT_EQ(static_cast<int>(path.size()), critical_path_length(g));
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    EXPECT_TRUE(g.has_edge(path[i], path[i + 1]));
  }
}

TEST(CriticalPath, ExtractedPathOnEdgelessGraph) {
  const auto path = critical_path(Digraph(3, {}));
  EXPECT_EQ(path.size(), 1u);
}

TEST(WidthProfile, PaperJob) {
  // Levels: {M1, M3} at 0, {R2, R4} at 1, {R5} at 2.
  EXPECT_EQ(width_profile(paper_job()), (std::vector<int>{2, 2, 1}));
  EXPECT_EQ(max_width(paper_job()), 2);
}

TEST(WidthProfile, ChainIsAllOnes) {
  EXPECT_EQ(width_profile(chain(3)), (std::vector<int>{1, 1, 1}));
  EXPECT_EQ(max_width(chain(3)), 1);
}

TEST(WidthProfile, EmptyGraph) {
  EXPECT_TRUE(width_profile(Digraph()).empty());
  EXPECT_EQ(max_width(Digraph()), 0);
}

TEST(WidthProfile, ExtremeParallelism) {
  // The paper's extreme case: 30 of 31 tasks in parallel, 1 reducer.
  std::vector<Edge> edges;
  for (int i = 0; i < 30; ++i) edges.push_back({i, 30});
  const Digraph g(31, edges);
  EXPECT_EQ(max_width(g), 30);
  EXPECT_EQ(critical_path_length(g), 2);
}

TEST(WeaklyConnectedComponents, TwoIslands) {
  const std::vector<Edge> edges{{0, 1}, {2, 3}};
  const auto comps = weakly_connected_components(Digraph(4, edges));
  ASSERT_EQ(comps.size(), 2u);
  EXPECT_EQ(comps[0], (std::vector<int>{0, 1}));
  EXPECT_EQ(comps[1], (std::vector<int>{2, 3}));
}

TEST(WeaklyConnectedComponents, DirectionIgnored) {
  const std::vector<Edge> edges{{1, 0}, {1, 2}};
  EXPECT_TRUE(is_weakly_connected(Digraph(3, edges)));
}

TEST(IsWeaklyConnected, TrivialCases) {
  EXPECT_TRUE(is_weakly_connected(Digraph()));
  EXPECT_TRUE(is_weakly_connected(Digraph(1, {})));
  EXPECT_FALSE(is_weakly_connected(Digraph(2, {})));
}

TEST(BfsDistances, DirectedHops) {
  const Digraph g = chain(4);
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d, (std::vector<int>{0, 1, 2, 3}));
  const auto d_from_tail = bfs_distances(g, 3);
  EXPECT_EQ(d_from_tail, (std::vector<int>{-1, -1, -1, 0}));
}

TEST(BfsDistances, UndirectedReachesBackwards) {
  const auto d = bfs_distances(chain(4), 3, /*undirected=*/true);
  EXPECT_EQ(d, (std::vector<int>{3, 2, 1, 0}));
}

TEST(BfsDistances, BadSourceThrows) {
  EXPECT_THROW(bfs_distances(chain(3), 5), util::GraphError);
}

TEST(TransitiveReduction, RemovesImpliedEdge) {
  const std::vector<Edge> edges{{0, 1}, {1, 2}, {0, 2}};
  const Digraph reduced = transitive_reduction(Digraph(3, edges));
  EXPECT_EQ(reduced.num_edges(), 2);
  EXPECT_TRUE(reduced.has_edge(0, 1));
  EXPECT_TRUE(reduced.has_edge(1, 2));
  EXPECT_FALSE(reduced.has_edge(0, 2));
}

TEST(TransitiveReduction, MinimalGraphUnchanged) {
  const Digraph g = paper_job();
  EXPECT_EQ(transitive_reduction(g), g);
}

TEST(TransitiveReduction, CycleThrows) {
  const std::vector<Edge> cyc{{0, 1}, {1, 0}};
  EXPECT_THROW(transitive_reduction(Digraph(2, cyc)), util::GraphError);
}

TEST(DescendantCounts, ChainCountsSuffix) {
  const auto counts = descendant_counts(chain(4));
  EXPECT_EQ(counts, (std::vector<int>{3, 2, 1, 0}));
}

TEST(DescendantCounts, DiamondSharedDescendantCountedOnce) {
  const std::vector<Edge> edges{{0, 1}, {0, 2}, {1, 3}, {2, 3}};
  const auto counts = descendant_counts(Digraph(4, edges));
  EXPECT_EQ(counts[0], 3);
  EXPECT_EQ(counts[1], 1);
  EXPECT_EQ(counts[2], 1);
  EXPECT_EQ(counts[3], 0);
}

}  // namespace
}  // namespace cwgl::graph

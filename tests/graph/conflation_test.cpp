#include "graph/conflation.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/algorithms.hpp"
#include "util/error.hpp"

namespace cwgl::graph {
namespace {

constexpr int kMap = 'M';
constexpr int kReduce = 'R';

TEST(Conflate, MapReduceFanInCollapses) {
  // 4 identical Maps feeding one Reduce -> M -> R (2 vertices).
  std::vector<Edge> edges;
  for (int i = 0; i < 4; ++i) edges.push_back({i, 4});
  const Digraph g(5, edges);
  const std::vector<int> labels{kMap, kMap, kMap, kMap, kReduce};
  const auto r = conflate(g, labels);
  EXPECT_EQ(r.graph.num_vertices(), 2);
  EXPECT_EQ(r.graph.num_edges(), 1);
  EXPECT_EQ(r.multiplicity[0], 4);
  EXPECT_EQ(r.multiplicity[1], 1);
  EXPECT_EQ(r.labels[0], kMap);
  EXPECT_EQ(r.labels[1], kReduce);
}

TEST(Conflate, DifferentLabelsDoNotMerge) {
  std::vector<Edge> edges{{0, 2}, {1, 2}};
  const Digraph g(3, edges);
  const std::vector<int> labels{kMap, kReduce, kReduce};
  const auto r = conflate(g, labels);
  EXPECT_EQ(r.graph.num_vertices(), 3);
}

TEST(Conflate, DifferentNeighborhoodsDoNotMerge) {
  // Two Maps feed different Reduces: nothing merges.
  const std::vector<Edge> edges{{0, 2}, {1, 3}};
  const Digraph g(4, edges);
  const std::vector<int> labels{kMap, kMap, kReduce, kReduce};
  const auto r = conflate(g, labels);
  EXPECT_EQ(r.graph.num_vertices(), 4);
}

TEST(Conflate, CascadeReachesFixpoint) {
  // Two parallel 2-stage pipelines into one sink:
  // (M0 -> R2), (M1 -> R3), R2 -> 4, R3 -> 4.
  // Round 1 merges M0/M1? No: they feed different reduces. But R2/R3 have
  // different preds. Nothing merges until we use clone-symmetric wiring:
  const std::vector<Edge> edges{{0, 2}, {1, 3}, {2, 4}, {3, 4}};
  const Digraph g(5, edges);
  const std::vector<int> labels{kMap, kMap, kReduce, kReduce, kReduce};
  const auto r = conflate(g, labels);
  // No pair has identical neighbor SETS initially, so this is a fixpoint.
  EXPECT_EQ(r.graph.num_vertices(), 5);
}

TEST(Conflate, SharedParentCascades) {
  // One Map feeding two clone Reduces that feed one sink: the Reduces merge,
  // leaving a 3-chain.
  const std::vector<Edge> edges{{0, 1}, {0, 2}, {1, 3}, {2, 3}};
  const Digraph g(4, edges);
  const std::vector<int> labels{kMap, kReduce, kReduce, kReduce};
  const auto r = conflate(g, labels);
  EXPECT_EQ(r.graph.num_vertices(), 3);
  EXPECT_EQ(critical_path_length(r.graph), 3);
  EXPECT_EQ(r.multiplicity[1], 2);
}

TEST(Conflate, ChainIsFixpoint) {
  const std::vector<Edge> edges{{0, 1}, {1, 2}};
  const Digraph g(3, edges);
  const std::vector<int> labels{kMap, kReduce, kReduce};
  const auto r = conflate(g, labels);
  EXPECT_EQ(r.graph, g);
  EXPECT_EQ(r.mapping, (std::vector<int>{0, 1, 2}));
}

TEST(Conflate, Idempotent) {
  std::vector<Edge> edges;
  for (int i = 0; i < 6; ++i) edges.push_back({i, 6});
  const Digraph g(7, edges);
  std::vector<int> labels(7, kMap);
  labels[6] = kReduce;
  const auto once = conflate(g, labels);
  const auto twice = conflate(once.graph, once.labels);
  EXPECT_EQ(twice.graph, once.graph);
}

TEST(Conflate, SizeNeverGrowsAndMultiplicityConserved) {
  const std::vector<Edge> edges{{0, 4}, {1, 4}, {2, 4}, {3, 4}, {4, 5}};
  const Digraph g(6, edges);
  const std::vector<int> labels{kMap, kMap, kMap, kMap, kReduce, kReduce};
  const auto r = conflate(g, labels);
  EXPECT_LE(r.graph.num_vertices(), g.num_vertices());
  EXPECT_EQ(std::accumulate(r.multiplicity.begin(), r.multiplicity.end(), 0),
            g.num_vertices());
}

TEST(Conflate, MappingIsConsistentWithRepresentatives) {
  std::vector<Edge> edges;
  for (int i = 0; i < 3; ++i) edges.push_back({i, 3});
  const Digraph g(4, edges);
  const std::vector<int> labels{kMap, kMap, kMap, kReduce};
  const auto r = conflate(g, labels);
  for (std::size_t v = 0; v < 4; ++v) {
    EXPECT_GE(r.mapping[v], 0);
    EXPECT_LT(r.mapping[v], r.graph.num_vertices());
  }
  for (std::size_t c = 0; c < r.representative.size(); ++c) {
    EXPECT_EQ(r.mapping[r.representative[c]], static_cast<int>(c));
  }
}

TEST(Conflate, PreservesCriticalPath) {
  // Conflation merges parallel clones, never serial stages, so the critical
  // path (in vertices) must be preserved.
  std::vector<Edge> edges;
  for (int i = 0; i < 4; ++i) edges.push_back({i, 4});
  edges.push_back({4, 5});
  edges.push_back({5, 6});
  const Digraph g(7, edges);
  std::vector<int> labels{kMap, kMap, kMap, kMap, kReduce, kReduce, kReduce};
  const auto r = conflate(g, labels);
  EXPECT_EQ(critical_path_length(r.graph), critical_path_length(g));
}

TEST(Conflate, LabelSizeMismatchThrows) {
  const Digraph g(3, {});
  const std::vector<int> labels{1, 2};
  EXPECT_THROW(conflate(g, labels), util::InvalidArgument);
}

TEST(Conflate, CycleThrows) {
  const std::vector<Edge> cyc{{0, 1}, {1, 0}};
  const Digraph g(2, cyc);
  const std::vector<int> labels{1, 1};
  EXPECT_THROW(conflate(g, labels), util::GraphError);
}

TEST(Conflate, IsolatedCloneVerticesMerge) {
  // An edgeless bag of equal-label vertices merges to one.
  const Digraph g(5, {});
  const std::vector<int> labels(5, kMap);
  const auto r = conflate(g, labels);
  EXPECT_EQ(r.graph.num_vertices(), 1);
  EXPECT_EQ(r.multiplicity[0], 5);
}

TEST(Conflate, EmptyGraph) {
  const auto r = conflate(Digraph(), {});
  EXPECT_EQ(r.graph.num_vertices(), 0);
}

}  // namespace
}  // namespace cwgl::graph

#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace cwgl::linalg {
namespace {

TEST(Matrix, ZeroInitialized) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_EQ(m(r, c), 0.0);
  }
}

TEST(Matrix, FromRowsAndAccess) {
  const Matrix m = Matrix::from_rows({{1, 2}, {3, 4}});
  EXPECT_EQ(m(0, 0), 1.0);
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(1, 0), 3.0);
  EXPECT_EQ(m(1, 1), 4.0);
}

TEST(Matrix, FromRowsRejectsRagged) {
  EXPECT_THROW(Matrix::from_rows({{1, 2}, {3}}), util::InvalidArgument);
}

TEST(Matrix, IdentityMultiplication) {
  const Matrix a = Matrix::from_rows({{1, 2}, {3, 4}});
  const Matrix i = Matrix::identity(2);
  EXPECT_EQ(a.multiply(i), a);
  EXPECT_EQ(i.multiply(a), a);
}

TEST(Matrix, KnownProduct) {
  const Matrix a = Matrix::from_rows({{1, 2, 3}, {4, 5, 6}});
  const Matrix b = Matrix::from_rows({{7, 8}, {9, 10}, {11, 12}});
  const Matrix c = a.multiply(b);
  EXPECT_EQ(c.rows(), 2u);
  EXPECT_EQ(c.cols(), 2u);
  EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
}

TEST(Matrix, MultiplyDimensionMismatchThrows) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_THROW(a.multiply(b), util::InvalidArgument);
}

TEST(Matrix, MatVec) {
  const Matrix a = Matrix::from_rows({{1, 2}, {3, 4}});
  const std::vector<double> x{1.0, 1.0};
  const auto y = a.multiply(std::span<const double>(x));
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Matrix, MatVecDimensionMismatchThrows) {
  const Matrix a(2, 3);
  const std::vector<double> x{1.0};
  EXPECT_THROW(a.multiply(std::span<const double>(x)), util::InvalidArgument);
}

TEST(Matrix, Transpose) {
  const Matrix a = Matrix::from_rows({{1, 2, 3}, {4, 5, 6}});
  const Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t(2, 1), 6.0);
  EXPECT_EQ(t.transposed(), a);
}

TEST(Matrix, FrobeniusNorm) {
  const Matrix a = Matrix::from_rows({{3, 0}, {0, 4}});
  EXPECT_DOUBLE_EQ(a.frobenius_norm(), 5.0);
}

TEST(Matrix, MaxAbsDiff) {
  const Matrix a = Matrix::from_rows({{1, 2}, {3, 4}});
  const Matrix b = Matrix::from_rows({{1, 2.5}, {3, 3}});
  EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 1.0);
  EXPECT_THROW(a.max_abs_diff(Matrix(3, 3)), util::InvalidArgument);
}

TEST(Matrix, SymmetryCheck) {
  EXPECT_TRUE(Matrix::from_rows({{1, 2}, {2, 1}}).is_symmetric());
  EXPECT_FALSE(Matrix::from_rows({{1, 2}, {3, 1}}).is_symmetric());
  EXPECT_FALSE(Matrix(2, 3).is_symmetric());  // non-square
  EXPECT_TRUE(Matrix::from_rows({{1, 2}, {2.0 + 1e-13, 1}}).is_symmetric(1e-12));
}

TEST(Matrix, RowSpanIsWritable) {
  Matrix m(2, 2);
  auto r = m.row(1);
  r[0] = 9.0;
  EXPECT_EQ(m(1, 0), 9.0);
}

}  // namespace
}  // namespace cwgl::linalg

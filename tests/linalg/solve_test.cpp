#include "linalg/solve.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace cwgl::linalg {
namespace {

TEST(Cholesky, KnownFactorization) {
  // A = [[4,2],[2,3]] = L L^T with L = [[2,0],[1,sqrt(2)]].
  const Matrix a = Matrix::from_rows({{4, 2}, {2, 3}});
  const Matrix l = cholesky(a);
  EXPECT_NEAR(l(0, 0), 2.0, 1e-12);
  EXPECT_NEAR(l(1, 0), 1.0, 1e-12);
  EXPECT_NEAR(l(1, 1), std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(l(0, 1), 0.0, 1e-12);
  // Reconstruction.
  const Matrix rebuilt = l.multiply(l.transposed());
  EXPECT_LT(a.max_abs_diff(rebuilt), 1e-12);
}

TEST(Cholesky, RejectsNonSpd) {
  const Matrix indefinite = Matrix::from_rows({{0, 1}, {1, 0}});
  EXPECT_THROW(cholesky(indefinite), util::InvalidArgument);
  const Matrix asym = Matrix::from_rows({{1, 2}, {3, 1}});
  EXPECT_THROW(cholesky(asym), util::InvalidArgument);
}

TEST(Cholesky, JitterRescuesSemidefinite) {
  const Matrix psd = Matrix::from_rows({{1, 1}, {1, 1}});  // singular
  EXPECT_THROW(cholesky(psd), util::InvalidArgument);
  EXPECT_NO_THROW(cholesky(psd, 1e-6));
}

TEST(SolveSpd, RandomSystemRoundTrip) {
  util::Xoshiro256StarStar rng(5);
  // Build SPD as B^T B + I.
  const std::size_t n = 8;
  Matrix b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b(i, j) = rng.uniform_real(-1, 1);
  }
  Matrix a = b.transposed().multiply(b);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += 1.0;
  std::vector<double> x_true(n);
  for (auto& v : x_true) v = rng.uniform_real(-2, 2);
  const auto rhs = a.multiply(std::span<const double>(x_true));
  const auto x = solve_spd(a, rhs);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST(SolveSpd, DimensionMismatchThrows) {
  const Matrix a = Matrix::identity(3);
  const std::vector<double> b{1.0, 2.0};
  EXPECT_THROW(solve_spd(a, b), util::InvalidArgument);
}

TEST(LeastSquares, ExactFitOnConsistentSystem) {
  // y = 2 + 3x fitted from exact points.
  Matrix a(4, 2);
  std::vector<double> y(4);
  for (int i = 0; i < 4; ++i) {
    a(i, 0) = 1.0;
    a(i, 1) = i;
    y[i] = 2.0 + 3.0 * i;
  }
  const auto w = solve_least_squares(a, y);
  EXPECT_NEAR(w[0], 2.0, 1e-6);
  EXPECT_NEAR(w[1], 3.0, 1e-6);
}

TEST(LeastSquares, OverdeterminedMinimizesResidual) {
  // Noisy y = 5x: the LS slope must beat any perturbed slope.
  util::Xoshiro256StarStar rng(7);
  Matrix a(50, 1);
  std::vector<double> y(50);
  for (int i = 0; i < 50; ++i) {
    a(i, 0) = i;
    y[i] = 5.0 * i + rng.normal(0.0, 1.0);
  }
  const auto w = solve_least_squares(a, y);
  const auto sse = [&](double slope) {
    double acc = 0.0;
    for (int i = 0; i < 50; ++i) {
      const double e = y[i] - slope * i;
      acc += e * e;
    }
    return acc;
  };
  EXPECT_NEAR(w[0], 5.0, 0.05);
  EXPECT_LE(sse(w[0]), sse(w[0] + 0.01) + 1e-9);
  EXPECT_LE(sse(w[0]), sse(w[0] - 0.01) + 1e-9);
}

TEST(LeastSquares, CollinearColumnsHandledByRidge) {
  Matrix a(5, 2);
  std::vector<double> y(5);
  for (int i = 0; i < 5; ++i) {
    a(i, 0) = i;
    a(i, 1) = 2.0 * i;  // perfectly collinear
    y[i] = 4.0 * i;
  }
  const auto w = solve_least_squares(a, y, 1e-6);  // must not throw
  // Combined effect must still reproduce the targets.
  for (int i = 0; i < 5; ++i) {
    EXPECT_NEAR(w[0] * i + w[1] * 2.0 * i, 4.0 * i, 1e-3);
  }
}

TEST(LeastSquares, Validation) {
  const Matrix a(3, 2);
  const std::vector<double> wrong{1.0};
  EXPECT_THROW(solve_least_squares(a, wrong), util::InvalidArgument);
}

}  // namespace
}  // namespace cwgl::linalg

#include "linalg/eigen.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace cwgl::linalg {
namespace {

Matrix random_symmetric(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256StarStar rng(seed);
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = rng.uniform_real(-1.0, 1.0);
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  return a;
}

TEST(JacobiEigen, DiagonalMatrixTrivial) {
  const Matrix a = Matrix::from_rows({{3, 0}, {0, 1}});
  const auto eig = jacobi_eigen(a);
  ASSERT_EQ(eig.values.size(), 2u);
  EXPECT_NEAR(eig.values[0], 1.0, 1e-12);
  EXPECT_NEAR(eig.values[1], 3.0, 1e-12);
}

TEST(JacobiEigen, Known2x2) {
  // [[2,1],[1,2]] has eigenvalues 1 and 3.
  const Matrix a = Matrix::from_rows({{2, 1}, {1, 2}});
  const auto eig = jacobi_eigen(a);
  EXPECT_NEAR(eig.values[0], 1.0, 1e-10);
  EXPECT_NEAR(eig.values[1], 3.0, 1e-10);
}

TEST(JacobiEigen, ValuesAscending) {
  const auto eig = jacobi_eigen(random_symmetric(12, 42));
  for (std::size_t i = 1; i < eig.values.size(); ++i) {
    EXPECT_LE(eig.values[i - 1], eig.values[i]);
  }
}

TEST(JacobiEigen, ReconstructionQLambdaQt) {
  const Matrix a = random_symmetric(10, 7);
  const auto eig = jacobi_eigen(a);
  // Rebuild A = Q diag(lambda) Q^T.
  Matrix lambda(10, 10);
  for (std::size_t i = 0; i < 10; ++i) lambda(i, i) = eig.values[i];
  const Matrix rebuilt =
      eig.vectors.multiply(lambda).multiply(eig.vectors.transposed());
  EXPECT_LT(a.max_abs_diff(rebuilt), 1e-9);
}

TEST(JacobiEigen, VectorsOrthonormal) {
  const auto eig = jacobi_eigen(random_symmetric(9, 13));
  const Matrix qtq = eig.vectors.transposed().multiply(eig.vectors);
  EXPECT_LT(qtq.max_abs_diff(Matrix::identity(9)), 1e-10);
}

TEST(JacobiEigen, EigenpairsSatisfyAvEqualsLambdaV) {
  const Matrix a = random_symmetric(8, 99);
  const auto eig = jacobi_eigen(a);
  for (std::size_t k = 0; k < 8; ++k) {
    std::vector<double> v(8);
    for (std::size_t i = 0; i < 8; ++i) v[i] = eig.vectors(i, k);
    const auto av = a.multiply(std::span<const double>(v));
    for (std::size_t i = 0; i < 8; ++i) {
      EXPECT_NEAR(av[i], eig.values[k] * v[i], 1e-9);
    }
  }
}

TEST(JacobiEigen, TraceEqualsSumOfEigenvalues) {
  const Matrix a = random_symmetric(15, 5);
  const auto eig = jacobi_eigen(a);
  double trace = 0.0, sum = 0.0;
  for (std::size_t i = 0; i < 15; ++i) trace += a(i, i);
  for (double v : eig.values) sum += v;
  EXPECT_NEAR(trace, sum, 1e-9);
}

TEST(JacobiEigen, AsymmetricThrows) {
  const Matrix a = Matrix::from_rows({{1, 2}, {3, 4}});
  EXPECT_THROW(jacobi_eigen(a), util::InvalidArgument);
}

TEST(JacobiEigen, OneByOne) {
  const Matrix a = Matrix::from_rows({{5}});
  const auto eig = jacobi_eigen(a);
  ASSERT_EQ(eig.values.size(), 1u);
  EXPECT_DOUBLE_EQ(eig.values[0], 5.0);
}

TEST(JacobiEigen, GraphLaplacianHasZeroEigenvalue) {
  // Path graph P3 Laplacian: [[1,-1,0],[-1,2,-1],[0,-1,1]] — eigenvalues
  // 0, 1, 3.
  const Matrix l = Matrix::from_rows({{1, -1, 0}, {-1, 2, -1}, {0, -1, 1}});
  const auto eig = jacobi_eigen(l);
  EXPECT_NEAR(eig.values[0], 0.0, 1e-10);
  EXPECT_NEAR(eig.values[1], 1.0, 1e-10);
  EXPECT_NEAR(eig.values[2], 3.0, 1e-10);
}

TEST(SmallestEigenpairs, MatchesJacobiOnSmallMatrix) {
  const Matrix a = random_symmetric(10, 31);
  const auto full = jacobi_eigen(a);
  const auto partial = smallest_eigenpairs(a, 3);
  ASSERT_EQ(partial.values.size(), 3u);
  for (int c = 0; c < 3; ++c) {
    EXPECT_NEAR(partial.values[c], full.values[c], 1e-8);
  }
}

TEST(SmallestEigenpairs, MatchesJacobiOnLargeMatrix) {
  // n = 60 > the internal Jacobi-fallback threshold: exercises the actual
  // subspace iteration.
  const Matrix a = random_symmetric(60, 33);
  const auto full = jacobi_eigen(a);
  const auto partial = smallest_eigenpairs(a, 5);
  for (int c = 0; c < 5; ++c) {
    EXPECT_NEAR(partial.values[c], full.values[c], 1e-6) << c;
  }
}

TEST(SmallestEigenpairs, EigenpairsSatisfyAvEqualsLambdaV) {
  // Residual tolerance is gap-limited: a random dense spectrum has
  // near-degenerate neighbors, where individual eigenvectors are
  // ill-conditioned even though the invariant subspace (and the Ritz
  // values) are accurate. 1e-4 reflects the solver's documented accuracy.
  const Matrix a = random_symmetric(50, 37);
  const auto partial = smallest_eigenpairs(a, 4);
  for (int c = 0; c < 4; ++c) {
    std::vector<double> v(50);
    for (std::size_t r = 0; r < 50; ++r) v[r] = partial.vectors(r, c);
    const auto av = a.multiply(std::span<const double>(v));
    for (std::size_t r = 0; r < 50; ++r) {
      EXPECT_NEAR(av[r], partial.values[c] * v[r], 1e-4);
    }
  }
}

TEST(SmallestEigenpairs, VectorsOrthonormal) {
  const Matrix a = random_symmetric(40, 41);
  const auto partial = smallest_eigenpairs(a, 6);
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 6; ++j) {
      double dot = 0.0;
      for (std::size_t r = 0; r < 40; ++r) {
        dot += partial.vectors(r, i) * partial.vectors(r, j);
      }
      EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, 1e-8);
    }
  }
}

TEST(SmallestEigenpairs, LaplacianNullVectorFound) {
  // P4 path Laplacian: smallest eigenvalue 0 with the constant eigenvector.
  const Matrix l = Matrix::from_rows({{1, -1, 0, 0},
                                      {-1, 2, -1, 0},
                                      {0, -1, 2, -1},
                                      {0, 0, -1, 1}});
  const auto partial = smallest_eigenpairs(l, 2);
  EXPECT_NEAR(partial.values[0], 0.0, 1e-8);
  const double first = partial.vectors(0, 0);
  for (std::size_t r = 1; r < 4; ++r) {
    EXPECT_NEAR(std::abs(partial.vectors(r, 0)), std::abs(first), 1e-6);
  }
}

TEST(SmallestEigenpairs, Validation) {
  const Matrix a = random_symmetric(5, 43);
  EXPECT_THROW(smallest_eigenpairs(a, 0), util::InvalidArgument);
  EXPECT_THROW(smallest_eigenpairs(a, 6), util::InvalidArgument);
  const Matrix asym = Matrix::from_rows({{1, 2}, {3, 4}});
  EXPECT_THROW(smallest_eigenpairs(asym, 1), util::InvalidArgument);
}

TEST(SmallestEigenpairs, Deterministic) {
  const Matrix a = random_symmetric(48, 47);
  const auto p1 = smallest_eigenpairs(a, 4);
  const auto p2 = smallest_eigenpairs(a, 4);
  for (int c = 0; c < 4; ++c) EXPECT_EQ(p1.values[c], p2.values[c]);
}

TEST(IsPositiveSemidefinite, GramMatrixIsPsd) {
  // B^T B is always PSD.
  const Matrix b = random_symmetric(6, 21);
  const Matrix gram = b.transposed().multiply(b);
  EXPECT_TRUE(is_positive_semidefinite(gram));
}

TEST(IsPositiveSemidefinite, IndefiniteRejected) {
  const Matrix a = Matrix::from_rows({{0, 1}, {1, 0}});  // eigenvalues -1, 1
  EXPECT_FALSE(is_positive_semidefinite(a));
}

TEST(IsPositiveSemidefinite, EmptyMatrixIsPsd) {
  EXPECT_TRUE(is_positive_semidefinite(Matrix()));
}

}  // namespace
}  // namespace cwgl::linalg

#pragma once

// Minimal property-based testing support layered over gtest.
//
// Three pieces:
//  - run_cases: a repeat-N runner that derives one independent RNG stream
//    per case from (suite seed, case index) and SCOPED_TRACEs the derived
//    seed, so any failure message names the exact seed to rerun in
//    isolation: `util::Xoshiro256StarStar rng(<seed>ULL);`.
//  - random job-DAG generators reusing trace::synthesize_shape, so
//    properties are checked over the same shape taxonomy the paper's
//    workloads draw from (chains, inverted triangles, diamonds, ...).
//  - vertex-permutation helpers for isomorphism-invariance properties.
//
// Everything is inline: this header is shared by test sources across
// several test binaries.

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "graph/digraph.hpp"
#include "graph/patterns.hpp"
#include "kernel/types.hpp"
#include "trace/generator.hpp"
#include "util/rng.hpp"

namespace cwgl::proptest {

/// The RNG seed of case `index` under `suite_seed`.
inline std::uint64_t case_seed(std::uint64_t suite_seed, int index) {
  return util::hash_combine(suite_seed, static_cast<std::uint64_t>(index));
}

/// Runs `body(rng)` once per case, each with an independent deterministic
/// RNG stream. Stops early on a fatal (ASSERT_*) failure. Non-fatal
/// (EXPECT_*) failures carry the case's seed via SCOPED_TRACE.
template <typename Body>
void run_cases(std::uint64_t suite_seed, int cases, Body&& body) {
  for (int i = 0; i < cases; ++i) {
    const std::uint64_t seed = case_seed(suite_seed, i);
    SCOPED_TRACE(::testing::Message()
                 << "property case " << i << "/" << cases
                 << " — rerun with util::Xoshiro256StarStar rng(" << seed
                 << "ULL)");
    util::Xoshiro256StarStar rng(seed);
    body(rng);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

/// A random labeled job DAG: shape drawn uniformly from the paper's
/// taxonomy, size in [min_tasks, max_tasks], task-type labels assigned the
/// way the trace does (sources are Maps, sinks sometimes Joins).
inline kernel::LabeledGraph random_job_graph(util::Xoshiro256StarStar& rng,
                                             int min_tasks = 2,
                                             int max_tasks = 14) {
  static constexpr graph::ShapePattern kShapes[] = {
      graph::ShapePattern::StraightChain,
      graph::ShapePattern::InvertedTriangle,
      graph::ShapePattern::Diamond,
      graph::ShapePattern::Hourglass,
      graph::ShapePattern::Trapezium,
      graph::ShapePattern::Combination,
  };
  const auto shape = kShapes[rng.uniform_int(0, 5)];
  const int n = rng.uniform_int(min_tasks, max_tasks);
  kernel::LabeledGraph g;
  g.graph = trace::synthesize_shape(shape, n, rng);
  g.labels.resize(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    if (g.graph.in_degree(v) == 0) {
      g.labels[static_cast<std::size_t>(v)] = 'M';
    } else if (g.graph.out_degree(v) == 0 && rng.bernoulli(0.3)) {
      g.labels[static_cast<std::size_t>(v)] = 'J';
    } else {
      g.labels[static_cast<std::size_t>(v)] = 'R';
    }
  }
  return g;
}

/// A corpus of `count` random job DAGs.
inline std::vector<kernel::LabeledGraph> random_corpus(
    util::Xoshiro256StarStar& rng, std::size_t count, int min_tasks = 2,
    int max_tasks = 14) {
  std::vector<kernel::LabeledGraph> corpus;
  corpus.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    corpus.push_back(random_job_graph(rng, min_tasks, max_tasks));
  }
  return corpus;
}

/// A uniformly random permutation of [0, n).
inline std::vector<int> random_permutation(int n,
                                           util::Xoshiro256StarStar& rng) {
  std::vector<int> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  rng.shuffle(perm);
  return perm;
}

/// The graph with vertex v renamed to perm[v] (an isomorphic copy).
inline kernel::LabeledGraph permuted(const kernel::LabeledGraph& g,
                                     std::span<const int> perm) {
  std::vector<graph::Edge> edges;
  for (const graph::Edge& e : g.graph.edges()) {
    edges.push_back({perm[static_cast<std::size_t>(e.from)],
                     perm[static_cast<std::size_t>(e.to)]});
  }
  kernel::LabeledGraph out;
  out.graph = graph::Digraph(g.graph.num_vertices(), edges);
  out.labels.resize(static_cast<std::size_t>(g.graph.num_vertices()));
  for (int v = 0; v < g.graph.num_vertices(); ++v) {
    out.labels[static_cast<std::size_t>(perm[static_cast<std::size_t>(v)])] =
        g.label(v);
  }
  return out;
}

}  // namespace cwgl::proptest

// Prometheus text-exposition contract: cwgl_ prefix with illegal characters
// replaced, counters get a `_total` suffix, gauges expose level and
// high-water, histograms come out as cumulative `le` buckets whose bounds
// are the bit-width bucket upper bounds (2^b - 1), ending in a `+Inf` bucket
// that equals `_count`.

#include "obs/prometheus.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/metrics.hpp"

namespace cwgl::obs {
namespace {

std::string render(const MetricsSnapshot& snap) {
  std::ostringstream out;
  write_prometheus(out, snap);
  return out.str();
}

TEST(Prometheus, NameSanitization) {
  EXPECT_EQ(prometheus_name("serve.daemon.requests"),
            "cwgl_serve_daemon_requests");
  EXPECT_EQ(prometheus_name("already_legal_name"), "cwgl_already_legal_name");
  EXPECT_EQ(prometheus_name("name:with:colons"), "cwgl_name:with:colons");
  EXPECT_EQ(prometheus_name("odd chars-here/too"), "cwgl_odd_chars_here_too");
  EXPECT_EQ(prometheus_name(""), "cwgl_");
}

TEST(Prometheus, CounterExposition) {
  MetricsSnapshot snap;
  snap.counters.push_back({"serve.daemon.requests", 7});
  const std::string text = render(snap);
  EXPECT_NE(text.find("# TYPE cwgl_serve_daemon_requests_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("cwgl_serve_daemon_requests_total 7\n"),
            std::string::npos);
}

TEST(Prometheus, GaugeExposesLevelAndHighWater) {
  MetricsSnapshot snap;
  snap.gauges.push_back({"serve.daemon.queue_depth", 3, 12});
  const std::string text = render(snap);
  EXPECT_NE(text.find("# TYPE cwgl_serve_daemon_queue_depth gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("cwgl_serve_daemon_queue_depth 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE cwgl_serve_daemon_queue_depth_max gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("cwgl_serve_daemon_queue_depth_max 12\n"),
            std::string::npos);
}

TEST(Prometheus, HistogramCumulativeBuckets) {
  // Samples 0, 1, 3, 6: bit widths 0, 1, 2, 3 — one sample per bucket.
  MetricsRegistry reg;
  Histogram& h = reg.histogram("latency_us");
  h.record(0);
  h.record(1);
  h.record(3);
  h.record(6);
  const std::string text = render(reg.snapshot());

  EXPECT_NE(text.find("# TYPE cwgl_latency_us histogram\n"),
            std::string::npos);
  // Cumulative counts at the bit-width bucket upper bounds.
  EXPECT_NE(text.find("cwgl_latency_us_bucket{le=\"0\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("cwgl_latency_us_bucket{le=\"1\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("cwgl_latency_us_bucket{le=\"3\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("cwgl_latency_us_bucket{le=\"7\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("cwgl_latency_us_bucket{le=\"+Inf\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("cwgl_latency_us_sum 10\n"), std::string::npos);
  EXPECT_NE(text.find("cwgl_latency_us_count 4\n"), std::string::npos);
}

TEST(Prometheus, HistogramInfBucketEqualsCountWithTrimmedBuckets) {
  // The snapshot trims trailing zero buckets; +Inf must still equal count.
  MetricsRegistry reg;
  Histogram& h = reg.histogram("h_us");
  for (int i = 0; i < 5; ++i) h.record(2);  // all in bucket 2
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].buckets.size(), 3u);  // buckets 0..2 kept

  const std::string text = render(snap);
  EXPECT_NE(text.find("cwgl_h_us_bucket{le=\"3\"} 5\n"), std::string::npos);
  EXPECT_NE(text.find("cwgl_h_us_bucket{le=\"+Inf\"} 5\n"), std::string::npos);
  EXPECT_NE(text.find("cwgl_h_us_count 5\n"), std::string::npos);
}

TEST(Prometheus, EmptySnapshotRendersNothing) {
  EXPECT_EQ(render(MetricsSnapshot{}), "");
}

TEST(Prometheus, EveryLineIsTypeOrSample) {
  MetricsRegistry reg;
  reg.counter("c").add(1);
  reg.gauge("g").set(2);
  reg.histogram("h").record(3);
  std::istringstream in(render(reg.snapshot()));
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    ASSERT_FALSE(line.empty());
    if (line.rfind("# TYPE cwgl_", 0) == 0) continue;
    // Sample lines: name[{labels}] SP value — exactly one space outside
    // braces separating metric from value.
    EXPECT_EQ(line.rfind("cwgl_", 0), 0u) << line;
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_GT(space, 0u) << line;
  }
  EXPECT_GT(lines, 10u);
}

}  // namespace
}  // namespace cwgl::obs

#include "obs/tracer.hpp"

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/ingest.hpp"
#include "trace/generator.hpp"
#include "trace/io.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace cwgl::obs {
namespace {

TEST(Tracer, DisabledSpansRecordNothing) {
  Tracer tracer;
  {
    Span span("quiet.scope", tracer);
    span.arg("ignored", 1);
    EXPECT_FALSE(span.active());
  }
  EXPECT_TRUE(tracer.events().empty());
}

TEST(Tracer, SpanProducesBeginEndPairWithArgs) {
  Tracer tracer;
  tracer.start();
  {
    Span span("outer", tracer);
    span.arg("rows", 42);
    { Span inner("inner", tracer); }
  }
  tracer.stop();
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[0].phase, 'B');
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_EQ(events[1].phase, 'B');
  EXPECT_EQ(events[2].name, "inner");
  EXPECT_EQ(events[2].phase, 'E');
  EXPECT_EQ(events[3].name, "outer");
  EXPECT_EQ(events[3].phase, 'E');
  ASSERT_EQ(events[3].args.size(), 1u);
  EXPECT_EQ(events[3].args[0].first, "rows");
  EXPECT_EQ(events[3].args[0].second, 42u);
}

TEST(Tracer, EndClosesEarlyAndIsIdempotent) {
  Tracer tracer;
  tracer.start();
  {
    Span span("early", tracer);
    span.end();
    span.end();
    EXPECT_FALSE(span.active());
  }
  tracer.stop();
  EXPECT_EQ(tracer.events().size(), 2u);
}

TEST(Tracer, StartClearsPreviousEvents) {
  Tracer tracer;
  tracer.start();
  { Span span("first", tracer); }
  tracer.stop();
  tracer.start();
  { Span span("second", tracer); }
  tracer.stop();
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "second");
}

TEST(Tracer, DrainRemovesEventsAndKeepsCollecting) {
  Tracer tracer;
  tracer.start();
  { Span span("first", tracer); }
  const auto drained = tracer.drain();
  ASSERT_EQ(drained.size(), 2u);  // B + E
  EXPECT_EQ(drained[0].name, "first");
  EXPECT_TRUE(tracer.events().empty());
  EXPECT_TRUE(tracer.enabled());  // drain does not disarm

  // Collection continues with the same epoch: later spans' timestamps are
  // not re-based below already-drained ones.
  { Span span("second", tracer); }
  const auto more = tracer.drain();
  ASSERT_EQ(more.size(), 2u);
  EXPECT_EQ(more[0].name, "second");
  EXPECT_GE(more[0].ts_us, drained[1].ts_us);
  tracer.stop();
}

TEST(Tracer, BoundedBufferDropsAndCounts) {
  Tracer tracer;
  tracer.start(4);  // room for two B/E pairs
  for (int i = 0; i < 10; ++i) {
    Span span("s", tracer);
  }
  EXPECT_EQ(tracer.events().size(), 4u);
  EXPECT_EQ(tracer.dropped(), 16u);  // 20 events attempted, 4 kept
  // Draining frees capacity for new events; the drop counter is lifetime.
  tracer.drain();
  { Span span("late", tracer); }
  EXPECT_EQ(tracer.events().size(), 2u);
  EXPECT_EQ(tracer.dropped(), 16u);
  // start() resets the drop counter with the buffer.
  tracer.start(4);
  EXPECT_EQ(tracer.dropped(), 0u);
  tracer.stop();
}

TEST(Tracer, WriteTraceEventsJsonBareArray) {
  Tracer tracer;
  tracer.start();
  {
    Span span("payload", tracer);
    span.arg("rows", 7);
  }
  const auto events = tracer.drain();
  tracer.stop();
  std::ostringstream out;
  write_trace_events_json(out, events);
  const util::JsonValue doc = util::parse_json(out.str());
  ASSERT_TRUE(doc.is_array());
  ASSERT_EQ(doc.as_array().size(), 2u);
  EXPECT_EQ(doc.as_array()[0].at("name").as_string(), "payload");
  EXPECT_EQ(doc.as_array()[0].at("ph").as_string(), "B");
  EXPECT_EQ(doc.as_array()[1].at("ph").as_string(), "E");
  EXPECT_EQ(doc.as_array()[1].at("args").at("rows").as_number(), 7.0);
}

// Replays the emitted Chrome trace-event JSON through the in-tree parser
// and asserts the structural contract Perfetto relies on: every event has
// pid/tid/ts/ph, timestamps never decrease in record order, and per thread
// the B/E events form a well-nested span tree (each E matches the most
// recent open B with the same name — no overlapping pairs).
void validate_trace_json(const std::string& text) {
  const util::JsonValue doc = util::parse_json(text);
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  const auto& events = doc.at("traceEvents").as_array();
  ASSERT_FALSE(events.empty());

  double last_ts = 0.0;
  std::map<double, std::vector<std::string>> stacks;  // tid -> open spans
  for (const auto& e : events) {
    EXPECT_EQ(e.at("pid").as_number(), 1.0);
    EXPECT_EQ(e.at("cat").as_string(), "cwgl");
    const double ts = e.at("ts").as_number();
    EXPECT_GE(ts, last_ts) << "timestamps must be non-decreasing";
    last_ts = ts;
    const std::string ph = e.at("ph").as_string();
    const double tid = e.at("tid").as_number();
    const std::string name = e.at("name").as_string();
    auto& stack = stacks[tid];
    if (ph == "B") {
      stack.push_back(name);
    } else {
      ASSERT_EQ(ph, "E");
      ASSERT_FALSE(stack.empty())
          << "E for " << name << " with no open span on tid " << tid;
      EXPECT_EQ(stack.back(), name)
          << "overlapping B/E pair on tid " << tid;
      stack.pop_back();
    }
  }
  for (const auto& [tid, stack] : stacks) {
    EXPECT_TRUE(stack.empty()) << "unclosed span on tid " << tid;
  }
}

TEST(Tracer, PooledIngestEmitsWellFormedSpanTree) {
  // Generate a small trace CSV and ingest it with a worker pool so reader,
  // worker, and stream spans interleave across threads.
  trace::GeneratorConfig cfg;
  cfg.seed = 7;
  cfg.num_jobs = 300;
  const trace::Trace data = trace::TraceGenerator(cfg).generate();
  std::ostringstream csv;
  trace::write_batch_task_csv(csv, data.tasks);

  Tracer& tracer = Tracer::global();
  tracer.start();
  {
    std::istringstream in(csv.str());
    util::ThreadPool pool(2);
    const auto dags = core::stream_dag_jobs(in, {}, &pool);
    EXPECT_FALSE(dags.empty());
  }
  tracer.stop();

  std::ostringstream out;
  tracer.write_json(out);
  validate_trace_json(out.str());

  // The pooled path must cover reader, worker, and stream scopes.
  const std::string text = out.str();
  EXPECT_NE(text.find("ingest.stream"), std::string::npos);
  EXPECT_NE(text.find("ingest.reader"), std::string::npos);
  EXPECT_NE(text.find("ingest.worker"), std::string::npos);
}

TEST(Tracer, WriteJsonEscapesAndCarriesArgs) {
  Tracer tracer;
  tracer.start();
  {
    Span span("scope", tracer);
    span.arg("rows", 9);
  }
  tracer.stop();
  std::ostringstream out;
  tracer.write_json(out);
  const util::JsonValue doc = util::parse_json(out.str());
  const auto& events = doc.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].at("args").at("rows").as_number(), 9.0);
}

}  // namespace
}  // namespace cwgl::obs

#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/json.hpp"

namespace cwgl::obs {
namespace {

TEST(Counter, AddAndFold) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, FoldsAcrossThreads) {
  Counter c;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Gauge, TracksLevelAndHighWater) {
  Gauge g;
  g.set(5);
  g.add(3);
  g.add(-6);
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.max_value(), 8);
  g.record_max(100);
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.max_value(), 100);
}

TEST(Histogram, BucketsByBitWidthAndQuantiles) {
  Histogram h;
  for (std::uint64_t v : {1u, 2u, 3u, 100u, 1000u}) h.record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1106u);
  EXPECT_EQ(h.max(), 1000u);
  // p50 falls in the bucket holding 3 (bit width 2 -> values < 4).
  EXPECT_EQ(h.quantile(0.5), 3u);
  // The top of the distribution lands in 1000's bucket (width 10 -> <1024).
  EXPECT_EQ(h.quantile(1.0), 1023u);
}

TEST(MetricsRegistry, InstrumentReferencesAreStable) {
  MetricsRegistry registry;
  Counter& a = registry.counter("stage.sub.a");
  a.add(7);
  // Same name resolves to the same instrument.
  EXPECT_EQ(&registry.counter("stage.sub.a"), &a);
  EXPECT_EQ(registry.snapshot().counter("stage.sub.a"), 7u);
}

TEST(MetricsRegistry, SnapshotSortedAndQueryable) {
  MetricsRegistry registry;
  registry.counter("b.x.one").add(1);
  registry.counter("a.y.two").add(2);
  registry.gauge("c.z.depth").set(3);
  registry.histogram("a.y.lat_us").record(10);
  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "a.y.two");
  EXPECT_EQ(snap.counters[1].name, "b.x.one");
  EXPECT_EQ(snap.counter("missing"), 0u);
  const auto subs = snap.subsystems();
  EXPECT_EQ(subs, (std::vector<std::string>{"a.y", "b.x", "c.z"}));
}

TEST(MetricsRegistry, ResetZeroesButKeepsReferences) {
  MetricsRegistry registry;
  Counter& c = registry.counter("stage.sub.n");
  c.add(9);
  registry.reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(1);
  EXPECT_EQ(registry.snapshot().counter("stage.sub.n"), 1u);
}

// The TSan target of the suite: writers hammer one counter and one
// histogram through the registry while a reader thread snapshots
// concurrently. The final fold (after join) must be exact.
TEST(MetricsRegistry, ConcurrentWritersAndSnapshots) {
  MetricsRegistry registry;
  registry.set_timing_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::atomic<bool> done{false};

  std::thread snapshotter([&] {
    while (!done.load(std::memory_order_relaxed)) {
      const MetricsSnapshot snap = registry.snapshot();
      // Values observed mid-run are a lower bound of the final count.
      EXPECT_LE(snap.counter("t.hammer.events"),
                static_cast<std::uint64_t>(kThreads) * kPerThread);
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&registry] {
      Counter& events = registry.counter("t.hammer.events");
      Histogram& lat = registry.histogram("t.hammer.lat_us");
      Gauge& depth = registry.gauge("t.hammer.depth");
      for (int i = 0; i < kPerThread; ++i) {
        events.add();
        lat.record(static_cast<std::uint64_t>(i % 64));
        depth.add(i % 2 == 0 ? 1 : -1);
      }
    });
  }
  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_relaxed);
  snapshotter.join();

  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter("t.hammer.events"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

// Determinism contract: the same serial workload recorded twice after a
// reset produces identical counter values (histogram quantiles included,
// since the samples are identical).
TEST(MetricsRegistry, SerialRunsAreDeterministic) {
  MetricsRegistry registry;
  const auto workload = [&registry] {
    for (int i = 0; i < 1000; ++i) {
      registry.counter("d.run.events").add(2);
      registry.histogram("d.run.lat_us").record(static_cast<std::uint64_t>(i));
    }
    registry.gauge("d.run.depth").set(17);
  };
  workload();
  const MetricsSnapshot first = registry.snapshot();
  registry.reset();
  workload();
  const MetricsSnapshot second = registry.snapshot();
  EXPECT_EQ(first, second);
}

TEST(ScopedLatency, GatedOnTimingEnabled) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("g.gate.lat_us");
  {
    ScopedLatency probe(registry, h);
  }
  EXPECT_EQ(h.count(), 0u) << "closed gate must not record";
  registry.set_timing_enabled(true);
  {
    ScopedLatency probe(registry, h);
  }
  EXPECT_EQ(h.count(), 1u);
}

TEST(MetricsSnapshot, WriteTextListsEveryInstrument) {
  MetricsRegistry registry;
  registry.counter("s.text.rows").add(12);
  registry.gauge("s.text.depth").set(3);
  registry.histogram("s.text.lat_us").record(5);
  std::ostringstream out;
  registry.snapshot().write_text(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("s.text.rows 12"), std::string::npos) << text;
  EXPECT_NE(text.find("s.text.depth"), std::string::npos);
  EXPECT_NE(text.find("s.text.lat_us"), std::string::npos);
}

TEST(MetricsSnapshot, WriteJsonIsParseable) {
  MetricsRegistry registry;
  registry.counter("s.json.rows").add(34);
  registry.gauge("s.json.depth").set(2);
  registry.histogram("s.json.lat_us").record(100);
  std::ostringstream out;
  registry.snapshot().write_json(out);
  const util::JsonValue doc = util::parse_json(out.str());
  EXPECT_EQ(doc.at("counters").at("s.json.rows").as_number(), 34.0);
  EXPECT_EQ(doc.at("gauges").at("s.json.depth").at("value").as_number(), 2.0);
  EXPECT_EQ(doc.at("histograms").at("s.json.lat_us").at("count").as_number(),
            1.0);
}

}  // namespace
}  // namespace cwgl::obs

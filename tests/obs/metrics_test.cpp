#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/json.hpp"

namespace cwgl::obs {
namespace {

TEST(Counter, AddAndFold) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, FoldsAcrossThreads) {
  Counter c;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Gauge, TracksLevelAndHighWater) {
  Gauge g;
  g.set(5);
  g.add(3);
  g.add(-6);
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.max_value(), 8);
  g.record_max(100);
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.max_value(), 100);
}

TEST(Histogram, BucketsByBitWidthAndQuantiles) {
  Histogram h;
  for (std::uint64_t v : {1u, 2u, 3u, 100u, 1000u}) h.record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1106u);
  EXPECT_EQ(h.max(), 1000u);
  // p50 falls in the bucket holding 3 (bit width 2 -> values < 4).
  EXPECT_EQ(h.quantile(0.5), 3u);
  // The top of the distribution lands in 1000's bucket (width 10 -> <1024).
  EXPECT_EQ(h.quantile(1.0), 1023u);
}

/// Exact q-quantile under the same 0-based rank convention
/// estimate_quantile uses: the order statistic at floor(q * (n - 1)).
std::uint64_t exact_quantile(std::vector<std::uint64_t> samples, double q) {
  std::sort(samples.begin(), samples.end());
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(samples.size() - 1));
  return samples[std::min(rank, samples.size() - 1)];
}

/// Pins the documented error bound: the estimate stays inside the exact
/// sample's bit-width bucket, so it is within a factor of 2 of the exact
/// quantile (within +/-1 absolutely when the exact quantile is 0).
void expect_within_factor_two(const Histogram& h,
                              const std::vector<std::uint64_t>& samples) {
  for (const double q : {0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const auto exact = static_cast<double>(exact_quantile(samples, q));
    const double est = h.estimate_quantile(q);
    if (exact == 0.0) {
      EXPECT_LE(std::abs(est), 1.0) << "q=" << q;
    } else {
      EXPECT_GT(est, exact / 2.0) << "q=" << q << " exact=" << exact;
      EXPECT_LT(est, exact * 2.0) << "q=" << q << " exact=" << exact;
    }
  }
}

TEST(Histogram, EstimateQuantileEmptyAndDegenerate) {
  Histogram h;
  EXPECT_EQ(h.estimate_quantile(0.5), 0.0);
  h.record(0);
  // All-zero samples: the estimate may interpolate inside [0, 1).
  EXPECT_LE(h.estimate_quantile(0.5), 1.0);
  EXPECT_GE(h.estimate_quantile(0.5), 0.0);
}

TEST(Histogram, EstimateQuantileUniformWithinFactorTwo) {
  Histogram h;
  std::vector<std::uint64_t> samples;
  for (std::uint64_t v = 1; v <= 1000; ++v) {
    samples.push_back(v);
    h.record(v);
  }
  expect_within_factor_two(h, samples);
}

TEST(Histogram, EstimateQuantileExponentialWithinFactorTwo) {
  // Exponential-ish spread: v = round(e^(i/100)) for i in [0, 800) covers
  // 1 .. ~2981 with mass concentrated at the low end.
  Histogram h;
  std::vector<std::uint64_t> samples;
  for (int i = 0; i < 800; ++i) {
    const auto v = static_cast<std::uint64_t>(
        std::llround(std::exp(static_cast<double>(i) / 100.0)));
    samples.push_back(v);
    h.record(v);
  }
  expect_within_factor_two(h, samples);
}

TEST(Histogram, EstimateQuantileBeatsBucketUpperBound) {
  // The coarse quantile() reports the bucket's upper bound; the interpolated
  // estimate must never be coarser and must stay below it for mid-bucket
  // ranks. 600 samples of value 600 (bucket 10: [512, 1024)).
  Histogram h;
  for (int i = 0; i < 600; ++i) h.record(600);
  EXPECT_EQ(h.quantile(0.5), 1023u);
  const double est = h.estimate_quantile(0.5);
  EXPECT_GE(est, 512.0);
  EXPECT_LE(est, 600.0);  // capped at max()
  EXPECT_LT(est / 600.0, 2.0);
  EXPECT_GT(est / 600.0, 0.5);
}

TEST(Histogram, EstimateQuantileMonotoneAndCappedAtMax) {
  Histogram h;
  for (std::uint64_t v : {1u, 2u, 3u, 100u, 1000u}) h.record(v);
  double prev = -1.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double est = h.estimate_quantile(q);
    EXPECT_GE(est, prev) << "q=" << q;
    EXPECT_LE(est, static_cast<double>(h.max()));
    prev = est;
  }
  // q=1 lands in max()'s bucket [512, 1024), tightened by max()+1.
  EXPECT_GE(h.estimate_quantile(1.0), 512.0);
  EXPECT_LE(h.estimate_quantile(1.0), 1000.0);
}

TEST(MetricsSnapshot, HistogramEntryCarriesEstimatesAndBuckets) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("s.est.lat_us");
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const auto& entry = snap.histograms[0];
  EXPECT_EQ(entry.p50_est, h.estimate_quantile(0.50));
  EXPECT_EQ(entry.p90_est, h.estimate_quantile(0.90));
  EXPECT_EQ(entry.p99_est, h.estimate_quantile(0.99));
  EXPECT_LE(entry.p50_est, entry.p90_est);
  EXPECT_LE(entry.p90_est, entry.p99_est);
  // 100 has bit width 7 -> buckets 0..7 survive trimming.
  ASSERT_EQ(entry.buckets.size(), 8u);
  std::uint64_t total = 0;
  for (const auto b : entry.buckets) total += b;
  EXPECT_EQ(total, entry.count);
  // JSON snapshot surfaces the same derived fields.
  std::ostringstream out;
  snap.write_json(out);
  const util::JsonValue doc = util::parse_json(out.str());
  const auto& jh = doc.at("histograms").at("s.est.lat_us");
  EXPECT_EQ(jh.at("p50_est").as_number(), entry.p50_est);
  EXPECT_EQ(jh.at("buckets").as_array().size(), 8u);
}

TEST(MetricsRegistry, InstrumentReferencesAreStable) {
  MetricsRegistry registry;
  Counter& a = registry.counter("stage.sub.a");
  a.add(7);
  // Same name resolves to the same instrument.
  EXPECT_EQ(&registry.counter("stage.sub.a"), &a);
  EXPECT_EQ(registry.snapshot().counter("stage.sub.a"), 7u);
}

TEST(MetricsRegistry, SnapshotSortedAndQueryable) {
  MetricsRegistry registry;
  registry.counter("b.x.one").add(1);
  registry.counter("a.y.two").add(2);
  registry.gauge("c.z.depth").set(3);
  registry.histogram("a.y.lat_us").record(10);
  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "a.y.two");
  EXPECT_EQ(snap.counters[1].name, "b.x.one");
  EXPECT_EQ(snap.counter("missing"), 0u);
  const auto subs = snap.subsystems();
  EXPECT_EQ(subs, (std::vector<std::string>{"a.y", "b.x", "c.z"}));
}

TEST(MetricsRegistry, ResetZeroesButKeepsReferences) {
  MetricsRegistry registry;
  Counter& c = registry.counter("stage.sub.n");
  c.add(9);
  registry.reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(1);
  EXPECT_EQ(registry.snapshot().counter("stage.sub.n"), 1u);
}

// The TSan target of the suite: writers hammer one counter and one
// histogram through the registry while a reader thread snapshots
// concurrently. The final fold (after join) must be exact.
TEST(MetricsRegistry, ConcurrentWritersAndSnapshots) {
  MetricsRegistry registry;
  registry.set_timing_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::atomic<bool> done{false};

  std::thread snapshotter([&] {
    while (!done.load(std::memory_order_relaxed)) {
      const MetricsSnapshot snap = registry.snapshot();
      // Values observed mid-run are a lower bound of the final count.
      EXPECT_LE(snap.counter("t.hammer.events"),
                static_cast<std::uint64_t>(kThreads) * kPerThread);
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&registry] {
      Counter& events = registry.counter("t.hammer.events");
      Histogram& lat = registry.histogram("t.hammer.lat_us");
      Gauge& depth = registry.gauge("t.hammer.depth");
      for (int i = 0; i < kPerThread; ++i) {
        events.add();
        lat.record(static_cast<std::uint64_t>(i % 64));
        depth.add(i % 2 == 0 ? 1 : -1);
      }
    });
  }
  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_relaxed);
  snapshotter.join();

  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter("t.hammer.events"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

// Determinism contract: the same serial workload recorded twice after a
// reset produces identical counter values (histogram quantiles included,
// since the samples are identical).
TEST(MetricsRegistry, SerialRunsAreDeterministic) {
  MetricsRegistry registry;
  const auto workload = [&registry] {
    for (int i = 0; i < 1000; ++i) {
      registry.counter("d.run.events").add(2);
      registry.histogram("d.run.lat_us").record(static_cast<std::uint64_t>(i));
    }
    registry.gauge("d.run.depth").set(17);
  };
  workload();
  const MetricsSnapshot first = registry.snapshot();
  registry.reset();
  workload();
  const MetricsSnapshot second = registry.snapshot();
  EXPECT_EQ(first, second);
}

TEST(ScopedLatency, GatedOnTimingEnabled) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("g.gate.lat_us");
  {
    ScopedLatency probe(registry, h);
  }
  EXPECT_EQ(h.count(), 0u) << "closed gate must not record";
  registry.set_timing_enabled(true);
  {
    ScopedLatency probe(registry, h);
  }
  EXPECT_EQ(h.count(), 1u);
}

TEST(MetricsSnapshot, WriteTextListsEveryInstrument) {
  MetricsRegistry registry;
  registry.counter("s.text.rows").add(12);
  registry.gauge("s.text.depth").set(3);
  registry.histogram("s.text.lat_us").record(5);
  std::ostringstream out;
  registry.snapshot().write_text(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("s.text.rows 12"), std::string::npos) << text;
  EXPECT_NE(text.find("s.text.depth"), std::string::npos);
  EXPECT_NE(text.find("s.text.lat_us"), std::string::npos);
}

TEST(MetricsSnapshot, WriteJsonIsParseable) {
  MetricsRegistry registry;
  registry.counter("s.json.rows").add(34);
  registry.gauge("s.json.depth").set(2);
  registry.histogram("s.json.lat_us").record(100);
  std::ostringstream out;
  registry.snapshot().write_json(out);
  const util::JsonValue doc = util::parse_json(out.str());
  EXPECT_EQ(doc.at("counters").at("s.json.rows").as_number(), 34.0);
  EXPECT_EQ(doc.at("gauges").at("s.json.depth").at("value").as_number(), 2.0);
  EXPECT_EQ(doc.at("histograms").at("s.json.lat_us").at("count").as_number(),
            1.0);
}

}  // namespace
}  // namespace cwgl::obs

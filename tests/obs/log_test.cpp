// Logger contract: leveled filtering (default Off), one record per line in
// either human text or parseable JSON lines, typed fields, token-bucket rate
// limiting that counts suppressed records and attaches the count to the next
// record that gets through, and file sinks that fail loudly.

#include "obs/log.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/json.hpp"

namespace cwgl::obs {
namespace {

Logger::Options unlimited(LogLevel level = LogLevel::Info, bool json = false) {
  Logger::Options o;
  o.level = level;
  o.json = json;
  o.rate_per_s = 0.0;  // no rate limit
  return o;
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) out.push_back(line);
  return out;
}

TEST(Log, ParseLogLevel) {
  LogLevel lv = LogLevel::Off;
  EXPECT_TRUE(parse_log_level("debug", lv));
  EXPECT_EQ(lv, LogLevel::Debug);
  EXPECT_TRUE(parse_log_level("info", lv));
  EXPECT_EQ(lv, LogLevel::Info);
  EXPECT_TRUE(parse_log_level("warn", lv));
  EXPECT_EQ(lv, LogLevel::Warn);
  EXPECT_TRUE(parse_log_level("error", lv));
  EXPECT_EQ(lv, LogLevel::Error);
  EXPECT_TRUE(parse_log_level("off", lv));
  EXPECT_EQ(lv, LogLevel::Off);
  EXPECT_FALSE(parse_log_level("INFO", lv));
  EXPECT_FALSE(parse_log_level("verbose", lv));
  EXPECT_EQ(lv, LogLevel::Off);  // untouched on failure
}

TEST(Log, DefaultConstructedLoggerIsOff) {
  Logger logger;
  EXPECT_FALSE(logger.enabled(LogLevel::Error));
  logger.error("should_vanish");
  EXPECT_EQ(logger.emitted(), 0u);
}

TEST(Log, LevelFiltering) {
  Logger logger;
  std::ostringstream sink;
  logger.configure(&sink, unlimited(LogLevel::Warn));
  EXPECT_FALSE(logger.enabled(LogLevel::Debug));
  EXPECT_FALSE(logger.enabled(LogLevel::Info));
  EXPECT_TRUE(logger.enabled(LogLevel::Warn));
  EXPECT_TRUE(logger.enabled(LogLevel::Error));

  logger.debug("d");
  logger.info("i");
  logger.warn("w");
  logger.error("e");
  EXPECT_EQ(logger.emitted(), 2u);
  const auto lines = lines_of(sink.str());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find(" WARN w"), std::string::npos);
  EXPECT_NE(lines[1].find(" ERROR e"), std::string::npos);
}

TEST(Log, TextFormatCarriesTimestampAndFields) {
  Logger logger;
  std::ostringstream sink;
  logger.configure(&sink, unlimited());
  logger.info("request_shed",
              {{"id", std::uint64_t{42}},
               {"delta", std::int64_t{-3}},
               {"path", "snapshots/model.cwgl"},
               {"frac", 0.5},
               {"ok", true}});
  const auto lines = lines_of(sink.str());
  ASSERT_EQ(lines.size(), 1u);
  // RFC 3339 UTC prefix: "2026-08-08T...Z INFO ...".
  EXPECT_EQ(lines[0][4], '-');
  EXPECT_EQ(lines[0][10], 'T');
  EXPECT_NE(lines[0].find("Z INFO request_shed"), std::string::npos);
  EXPECT_NE(lines[0].find(" id=42"), std::string::npos);
  EXPECT_NE(lines[0].find(" delta=-3"), std::string::npos);
  EXPECT_NE(lines[0].find(" path=snapshots/model.cwgl"), std::string::npos);
  EXPECT_NE(lines[0].find(" frac=0.5"), std::string::npos);
  EXPECT_NE(lines[0].find(" ok=true"), std::string::npos);
}

TEST(Log, JsonLinesParseWithTypedFields) {
  Logger logger;
  std::ostringstream sink;
  logger.configure(&sink, unlimited(LogLevel::Debug, /*json=*/true));
  logger.warn("model_reload_failed",
              {{"error", "bad \"magic\""},
               {"attempt", 3},
               {"gen", std::uint64_t{7}},
               {"frac", 0.25},
               {"ok", false}});
  const auto lines = lines_of(sink.str());
  ASSERT_EQ(lines.size(), 1u);

  const util::JsonValue doc = util::parse_json(lines[0]);
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("level").as_string(), "warn");
  EXPECT_EQ(doc.at("event").as_string(), "model_reload_failed");
  EXPECT_EQ(doc.at("error").as_string(), "bad \"magic\"");
  EXPECT_EQ(doc.at("attempt").as_number(), 3.0);
  EXPECT_EQ(doc.at("gen").as_number(), 7.0);
  EXPECT_EQ(doc.at("frac").as_number(), 0.25);
  EXPECT_EQ(doc.at("ok").as_bool(), false);
  const std::string ts = doc.at("ts").as_string();
  EXPECT_EQ(ts.size(), 24u);  // 2026-08-08T12:34:56.789Z
  EXPECT_EQ(ts.back(), 'Z');
}

TEST(Log, RateLimitSuppressesAndCounts) {
  Logger logger;
  std::ostringstream sink;
  Logger::Options o;
  o.level = LogLevel::Info;
  o.rate_per_s = 10.0;  // one token per 100ms
  o.burst = 1.0;
  logger.configure(&sink, o);

  logger.info("first");  // spends the only token
  logger.info("second");
  logger.info("third");
  EXPECT_EQ(logger.emitted(), 1u);
  EXPECT_EQ(logger.suppressed(), 2u);

  // After a refill the next record carries the suppressed count.
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  logger.info("fourth");
  EXPECT_EQ(logger.emitted(), 2u);
  const auto lines = lines_of(sink.str());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("first"), std::string::npos);
  EXPECT_NE(lines[1].find("fourth"), std::string::npos);
  EXPECT_NE(lines[1].find("suppressed=2"), std::string::npos);
}

TEST(Log, OpenAppendsToFile) {
  const auto path =
      (std::filesystem::temp_directory_path() / "cwgl_log_test.jsonl")
          .string();
  std::filesystem::remove(path);
  Logger logger;
  std::string error;
  ASSERT_TRUE(logger.open(path, unlimited(LogLevel::Info, /*json=*/true),
                          &error))
      << error;
  logger.info("daemon_started", {{"workers", 4}});
  logger.info("drain_finished", {{"served", std::uint64_t{10}}});

  std::ifstream in(path);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(util::parse_json(lines[0]).at("event").as_string(),
            "daemon_started");
  EXPECT_EQ(util::parse_json(lines[1]).at("served").as_number(), 10.0);
  std::filesystem::remove(path);
}

TEST(Log, OpenFailureKeepsPreviousSink) {
  Logger logger;
  std::ostringstream sink;
  logger.configure(&sink, unlimited());
  std::string error;
  EXPECT_FALSE(logger.open("/nonexistent_dir_cwgl/log.txt", unlimited(),
                           &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos);
  logger.info("still_here");
  EXPECT_NE(sink.str().find("still_here"), std::string::npos);
}

TEST(Log, ConfigureNullDisables) {
  Logger logger;
  std::ostringstream sink;
  logger.configure(&sink, unlimited());
  logger.configure(nullptr, unlimited());
  EXPECT_FALSE(logger.enabled(LogLevel::Error));
  logger.error("nope");
  EXPECT_EQ(sink.str(), "");
}

TEST(Log, GlobalLoggerIsOffByDefault) {
  // Other tests may have configured it; only pin the accessor identity.
  Logger& a = Logger::global();
  Logger& b = Logger::global();
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace cwgl::obs

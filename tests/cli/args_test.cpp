#include "cli/args.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace cwgl::cli {
namespace {

Args parse(std::initializer_list<const char*> tokens) {
  std::vector<const char*> argv{"cwgl", "cmd"};
  argv.insert(argv.end(), tokens.begin(), tokens.end());
  return Args::parse(static_cast<int>(argv.size()), argv.data(), 2);
}

TEST(Args, KeyValuePairs) {
  const Args args = parse({"--jobs", "500", "--out", "/tmp/x"});
  EXPECT_EQ(args.get("jobs"), "500");
  EXPECT_EQ(args.get("out"), "/tmp/x");
  EXPECT_EQ(args.get_int("jobs").value(), 500);
}

TEST(Args, EqualsFormJoinsKeyAndValue) {
  const Args args = parse({"--jobs=500", "--out=/tmp/x", "--metrics"});
  EXPECT_EQ(args.get_int("jobs").value(), 500);
  EXPECT_EQ(args.get("out"), "/tmp/x");
  EXPECT_TRUE(args.has("metrics"));
}

TEST(Args, EqualsFormAllowsEmptyAndEmbeddedEquals) {
  const Args args = parse({"--out=", "--expr=a=b"});
  EXPECT_EQ(args.get("out", "fallback"), "");
  // Only the first '=' splits; the rest belongs to the value.
  EXPECT_EQ(args.get("expr"), "a=b");
}

TEST(Args, MissingKeyUsesFallback) {
  const Args args = parse({});
  EXPECT_EQ(args.get("trace", "default"), "default");
  EXPECT_FALSE(args.get_int("jobs").has_value());
  EXPECT_FALSE(args.get_double("online").has_value());
}

TEST(Args, BooleanFlags) {
  const Args args = parse({"--natural", "--jobs", "10", "--matrix"});
  EXPECT_TRUE(args.has("natural"));
  EXPECT_TRUE(args.has("matrix"));
  EXPECT_FALSE(args.has("no-instances"));
  EXPECT_EQ(args.get_int("jobs").value(), 10);
}

TEST(Args, FlagFollowedByKeyIsFlag) {
  const Args args = parse({"--natural", "--out", "dir"});
  EXPECT_TRUE(args.has("natural"));
  EXPECT_EQ(args.get("out"), "dir");
}

TEST(Args, NonNumericIntThrows) {
  const Args args = parse({"--jobs", "many"});
  EXPECT_THROW(args.get_int("jobs"), util::InvalidArgument);
}

TEST(Args, NonNumericDoubleThrows) {
  const Args args = parse({"--online", "high"});
  EXPECT_THROW(args.get_double("online"), util::InvalidArgument);
}

TEST(Args, DoubleParses) {
  const Args args = parse({"--online", "0.4"});
  EXPECT_DOUBLE_EQ(args.get_double("online").value(), 0.4);
}

TEST(Args, PositionalsKeepAppearanceOrder) {
  const Args args = parse({"first.csv", "--model", "m.cwgl", "second.csv"});
  EXPECT_EQ(args.get("model"), "m.cwgl");
  ASSERT_EQ(args.positional_count(), 2u);
  EXPECT_EQ(args.positional(0), "first.csv");
  EXPECT_EQ(args.positional(1), "second.csv");
}

TEST(Args, PositionalFallbackWhenAbsent) {
  const Args args = parse({"--jobs", "5"});
  EXPECT_EQ(args.positional_count(), 0u);
  EXPECT_EQ(args.positional(0, "default.csv"), "default.csv");
}

TEST(Args, UnclaimedPositionalsAreUnused) {
  const Args args = parse({"a.csv", "b.csv"});
  args.positional(0);  // claims index 0 only
  const auto unused = args.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "b.csv");
}

TEST(Args, ClaimedPositionalsAreNotUnused) {
  const Args args = parse({"a.csv", "--jobs", "5"});
  args.get_int("jobs");
  args.positional(0);
  EXPECT_TRUE(args.unused().empty());
}

TEST(Args, UnusedTracksUntouchedKeys) {
  const Args args = parse({"--jobs", "5", "--typo", "x"});
  EXPECT_EQ(args.get_int("jobs").value(), 5);
  const auto unused = args.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Args, UnusedEmptyWhenAllTouched) {
  const Args args = parse({"--jobs", "5"});
  args.get_int("jobs");
  EXPECT_TRUE(args.unused().empty());
}

}  // namespace
}  // namespace cwgl::cli

#include "cli/commands.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

namespace cwgl::cli {
namespace {

struct CliResult {
  int code = 0;
  std::string out;
  std::string err;
};

CliResult run(std::initializer_list<const char*> tokens) {
  std::vector<const char*> argv{"cwgl"};
  argv.insert(argv.end(), tokens.begin(), tokens.end());
  std::ostringstream out, err;
  CliResult r;
  r.code = run_cli(static_cast<int>(argv.size()), argv.data(), out, err);
  r.out = out.str();
  r.err = err.str();
  return r;
}

TEST(Cli, NoArgumentsPrintsUsage) {
  const auto r = run({});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("usage: cwgl"), std::string::npos);
}

TEST(Cli, HelpPrintsUsage) {
  const auto r = run({"help"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("characterize"), std::string::npos);
}

TEST(Cli, UnknownCommandRejected) {
  const auto r = run({"frobnicate"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(Cli, UnknownOptionRejected) {
  const auto r = run({"census", "--jobs", "200", "--bogus", "1"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--bogus"), std::string::npos);
}

TEST(Cli, CensusOnGeneratedTrace) {
  const auto r = run({"census", "--jobs", "500", "--seed", "7"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("jobs with dependencies"), std::string::npos);
  EXPECT_NE(r.out.find("straight-chain"), std::string::npos);
  EXPECT_NE(r.out.find("distinct topologies"), std::string::npos);
}

TEST(Cli, GenerateRequiresOut) {
  const auto r = run({"generate", "--jobs", "10"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--out"), std::string::npos);
}

TEST(Cli, GenerateThenCensusRoundTrip) {
  const auto dir =
      (std::filesystem::temp_directory_path() / "cwgl_cli_trace").string();
  std::filesystem::remove_all(dir);
  const auto gen = run({"generate", "--out", dir.c_str(), "--jobs", "300",
                        "--no-instances"});
  EXPECT_EQ(gen.code, 0) << gen.err;
  ASSERT_TRUE(std::filesystem::exists(std::filesystem::path(dir) /
                                      "batch_task.csv"));
  const auto census = run({"census", "--trace", dir.c_str()});
  EXPECT_EQ(census.code, 0) << census.err;
  EXPECT_NE(census.out.find("loaded"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(Cli, CharacterizePrintsEveryFigure) {
  const auto r = run({"characterize", "--jobs", "800", "--sample", "30"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("Fig 3"), std::string::npos);
  EXPECT_NE(r.out.find("Fig 4"), std::string::npos);
  EXPECT_NE(r.out.find("Fig 5"), std::string::npos);
  EXPECT_NE(r.out.find("Fig 6"), std::string::npos);
  EXPECT_NE(r.out.find("Fig 7"), std::string::npos);
  EXPECT_NE(r.out.find("Fig 9"), std::string::npos);
  EXPECT_NE(r.out.find("Group A"), std::string::npos);
}

TEST(Cli, ClusterWritesMedoids) {
  const auto dir =
      (std::filesystem::temp_directory_path() / "cwgl_cli_medoids").string();
  std::filesystem::remove_all(dir);
  const auto r = run({"cluster", "--jobs", "800", "--sample", "30",
                      "--clusters", "3", "--out", dir.c_str()});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_TRUE(std::filesystem::exists(std::filesystem::path(dir) / "group_A.dot"));
  std::filesystem::remove_all(dir);
}

TEST(Cli, SimilarityMatrixShape) {
  const auto r = run({"similarity", "--jobs", "600", "--sample", "10",
                      "--matrix"});
  EXPECT_EQ(r.code, 0) << r.err;
  // 10 CSV rows with 9 commas each after the summary.
  std::size_t commas = 0;
  for (char c : r.out) commas += (c == ',');
  EXPECT_GE(commas, 90u);
}

TEST(Cli, IngestSerialOnGeneratedJobs) {
  const auto r = run({"ingest", "--jobs", "400", "--serial"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("mode:        serial"), std::string::npos);
  EXPECT_NE(r.out.find("throughput:"), std::string::npos);
  EXPECT_NE(r.out.find("DAG jobs"), std::string::npos);
}

TEST(Cli, IngestPooledOnTraceDirectory) {
  const auto dir =
      (std::filesystem::temp_directory_path() / "cwgl_cli_ingest").string();
  std::filesystem::remove_all(dir);
  const auto gen = run({"generate", "--out", dir.c_str(), "--jobs", "300",
                        "--no-instances"});
  ASSERT_EQ(gen.code, 0) << gen.err;
  const auto r = run({"ingest", "--trace", dir.c_str(), "--threads", "2"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("pooled (2 workers)"), std::string::npos);
  EXPECT_NE(r.out.find("MB/s"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(Cli, IngestMissingTraceRejected) {
  const auto r = run({"ingest", "--trace", "/nonexistent/cwgl"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("cannot open"), std::string::npos);
}

TEST(Cli, ScheduleComparesPolicies) {
  const auto r = run({"schedule", "--jobs", "600", "--sample", "40",
                      "--machines", "2"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("fifo"), std::string::npos);
  EXPECT_NE(r.out.find("group-hint"), std::string::npos);
  EXPECT_NE(r.out.find("shortest-job-first"), std::string::npos);
}

TEST(Cli, ScheduleWithOnlineLoadReportsPreemptions) {
  const auto r = run({"schedule", "--jobs", "600", "--sample", "40",
                      "--machines", "2", "--online", "0.4"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("preempt"), std::string::npos);
}

TEST(Cli, ComparesTwoGeneratedDays) {
  const auto r = run({"compare", "--jobs", "800", "--seed", "3", "--seed-b", "4"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("headline drift"), std::string::npos);
  EXPECT_NE(r.out.find("shape mix"), std::string::npos);
}

TEST(Cli, CharacterizeJsonIsParseable) {
  const auto r = run({"characterize", "--jobs", "600", "--sample", "15",
                      "--json"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_EQ(r.out.front(), '{');
  // Balanced braces outside strings is covered by report_json tests; here
  // just confirm no text report leaked into the stream.
  EXPECT_EQ(r.out.find("Fig 3"), std::string::npos);
  EXPECT_NE(r.out.find("\"fig3\""), std::string::npos);
}

TEST(Cli, PredictReportsHeldOutQuality) {
  const auto r = run({"predict", "--jobs", "1500", "--sample", "120"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("R^2"), std::string::npos);
  EXPECT_NE(r.out.find("held-out"), std::string::npos);
  EXPECT_NE(r.out.find("predicted"), std::string::npos);
}

TEST(Cli, MissingTraceDirectoryIsCleanError) {
  const auto r = run({"census", "--trace", "/nonexistent/cwgl"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("error:"), std::string::npos);
}

}  // namespace
}  // namespace cwgl::cli

#include "cli/commands.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>

#include "model/format.hpp"
#include "serve/classifier.hpp"
#include "serve/daemon.hpp"
#include "util/json.hpp"

namespace cwgl::cli {
namespace {

struct CliResult {
  int code = 0;
  std::string out;
  std::string err;
};

CliResult run(std::initializer_list<const char*> tokens) {
  std::vector<const char*> argv{"cwgl"};
  argv.insert(argv.end(), tokens.begin(), tokens.end());
  std::ostringstream out, err;
  CliResult r;
  r.code = run_cli(static_cast<int>(argv.size()), argv.data(), out, err);
  r.out = out.str();
  r.err = err.str();
  return r;
}

TEST(Cli, NoArgumentsPrintsUsage) {
  const auto r = run({});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("usage: cwgl"), std::string::npos);
}

TEST(Cli, HelpPrintsUsage) {
  const auto r = run({"help"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("characterize"), std::string::npos);
}

TEST(Cli, UnknownCommandRejected) {
  const auto r = run({"frobnicate"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(Cli, UnknownOptionRejected) {
  const auto r = run({"census", "--jobs", "200", "--bogus", "1"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--bogus"), std::string::npos);
}

TEST(Cli, CensusOnGeneratedTrace) {
  const auto r = run({"census", "--jobs", "500", "--seed", "7"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("jobs with dependencies"), std::string::npos);
  EXPECT_NE(r.out.find("straight-chain"), std::string::npos);
  EXPECT_NE(r.out.find("distinct topologies"), std::string::npos);
}

TEST(Cli, GenerateRequiresOut) {
  const auto r = run({"generate", "--jobs", "10"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--out"), std::string::npos);
}

TEST(Cli, GenerateThenCensusRoundTrip) {
  const auto dir =
      (std::filesystem::temp_directory_path() / "cwgl_cli_trace").string();
  std::filesystem::remove_all(dir);
  const auto gen = run({"generate", "--out", dir.c_str(), "--jobs", "300",
                        "--no-instances"});
  EXPECT_EQ(gen.code, 0) << gen.err;
  ASSERT_TRUE(std::filesystem::exists(std::filesystem::path(dir) /
                                      "batch_task.csv"));
  const auto census = run({"census", "--trace", dir.c_str()});
  EXPECT_EQ(census.code, 0) << census.err;
  EXPECT_NE(census.out.find("loaded"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(Cli, CharacterizePrintsEveryFigure) {
  const auto r = run({"characterize", "--jobs", "800", "--sample", "30"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("Fig 3"), std::string::npos);
  EXPECT_NE(r.out.find("Fig 4"), std::string::npos);
  EXPECT_NE(r.out.find("Fig 5"), std::string::npos);
  EXPECT_NE(r.out.find("Fig 6"), std::string::npos);
  EXPECT_NE(r.out.find("Fig 7"), std::string::npos);
  EXPECT_NE(r.out.find("Fig 9"), std::string::npos);
  EXPECT_NE(r.out.find("Group A"), std::string::npos);
}

TEST(Cli, ClusterWritesMedoids) {
  const auto dir =
      (std::filesystem::temp_directory_path() / "cwgl_cli_medoids").string();
  std::filesystem::remove_all(dir);
  const auto r = run({"cluster", "--jobs", "800", "--sample", "30",
                      "--clusters", "3", "--out", dir.c_str()});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_TRUE(std::filesystem::exists(std::filesystem::path(dir) / "group_A.dot"));
  std::filesystem::remove_all(dir);
}

TEST(Cli, SimilarityMatrixShape) {
  const auto r = run({"similarity", "--jobs", "600", "--sample", "10",
                      "--matrix"});
  EXPECT_EQ(r.code, 0) << r.err;
  // 10 CSV rows with 9 commas each after the summary.
  std::size_t commas = 0;
  for (char c : r.out) commas += (c == ',');
  EXPECT_GE(commas, 90u);
}

TEST(Cli, IngestSerialOnGeneratedJobs) {
  const auto r = run({"ingest", "--jobs", "400", "--serial"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("mode:        serial"), std::string::npos);
  EXPECT_NE(r.out.find("throughput:"), std::string::npos);
  EXPECT_NE(r.out.find("DAG jobs"), std::string::npos);
}

TEST(Cli, IngestPooledOnTraceDirectory) {
  const auto dir =
      (std::filesystem::temp_directory_path() / "cwgl_cli_ingest").string();
  std::filesystem::remove_all(dir);
  const auto gen = run({"generate", "--out", dir.c_str(), "--jobs", "300",
                        "--no-instances"});
  ASSERT_EQ(gen.code, 0) << gen.err;
  const auto r = run({"ingest", "--trace", dir.c_str(), "--threads", "2"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("pooled (2 workers)"), std::string::npos);
  EXPECT_NE(r.out.find("MB/s"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(Cli, IngestMissingTraceRejected) {
  const auto r = run({"ingest", "--trace", "/nonexistent/cwgl"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("cannot open"), std::string::npos);
}

TEST(Cli, ScheduleComparesPolicies) {
  const auto r = run({"schedule", "--jobs", "600", "--sample", "40",
                      "--machines", "2"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("fifo"), std::string::npos);
  EXPECT_NE(r.out.find("group-hint"), std::string::npos);
  EXPECT_NE(r.out.find("shortest-job-first"), std::string::npos);
}

TEST(Cli, ScheduleWithOnlineLoadReportsPreemptions) {
  const auto r = run({"schedule", "--jobs", "600", "--sample", "40",
                      "--machines", "2", "--online", "0.4"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("preempt"), std::string::npos);
}

TEST(Cli, ComparesTwoGeneratedDays) {
  const auto r = run({"compare", "--jobs", "800", "--seed", "3", "--seed-b", "4"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("headline drift"), std::string::npos);
  EXPECT_NE(r.out.find("shape mix"), std::string::npos);
}

TEST(Cli, CharacterizeJsonIsParseable) {
  const auto r = run({"characterize", "--jobs", "600", "--sample", "15",
                      "--json"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_EQ(r.out.front(), '{');
  // Balanced braces outside strings is covered by report_json tests; here
  // just confirm no text report leaked into the stream.
  EXPECT_EQ(r.out.find("Fig 3"), std::string::npos);
  EXPECT_NE(r.out.find("\"fig3\""), std::string::npos);
}

TEST(Cli, PredictReportsHeldOutQuality) {
  const auto r = run({"predict", "--jobs", "1500", "--sample", "120"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("R^2"), std::string::npos);
  EXPECT_NE(r.out.find("held-out"), std::string::npos);
  EXPECT_NE(r.out.find("predicted"), std::string::npos);
}

TEST(Cli, MissingTraceDirectoryIsCleanError) {
  const auto r = run({"census", "--trace", "/nonexistent/cwgl"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("error:"), std::string::npos);
}

TEST(Cli, IngestJsonReportHasThroughputAndDiagnostics) {
  const auto r = run({"ingest", "--jobs", "400", "--serial", "--json"});
  EXPECT_EQ(r.code, 0) << r.err;
  const util::JsonValue doc = util::parse_json(r.out);
  EXPECT_EQ(doc.at("schema").as_string(), "cwgl-ingest-v1");
  EXPECT_EQ(doc.at("mode").as_string(), "serial");
  EXPECT_GT(doc.at("input").at("rows").as_number(), 0.0);
  EXPECT_GE(doc.at("elapsed_ms").as_number(), 0.0);
  EXPECT_GT(doc.at("throughput").at("rows_per_s").as_number(), 0.0);
  EXPECT_GT(doc.at("built").at("dags").as_number(), 0.0);
  EXPECT_TRUE(doc.at("diagnostics").is_object());
  // No --metrics flag: the snapshot is not embedded.
  EXPECT_FALSE(doc.contains("metrics"));
}

TEST(Cli, IngestMetricsFlagEmbedsSnapshotInJson) {
  const auto r = run({"ingest", "--jobs", "400", "--serial", "--json",
                      "--metrics"});
  EXPECT_EQ(r.code, 0) << r.err;
  const util::JsonValue doc = util::parse_json(r.out);
  const util::JsonValue& counters = doc.at("metrics").at("counters");
  EXPECT_GT(counters.at("ingest.scanner.rows").as_number(), 0.0);
  EXPECT_GT(counters.at("ingest.dag.built").as_number(), 0.0);
}

TEST(Cli, IngestMetricsTextSection) {
  const auto r = run({"ingest", "--jobs", "400", "--serial", "--metrics"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("metrics:"), std::string::npos);
  EXPECT_NE(r.out.find("ingest.stream.rows"), std::string::npos);
}

TEST(Cli, IngestMetricsFileAndTraceOut) {
  const auto dir =
      (std::filesystem::temp_directory_path() / "cwgl_cli_obs").string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string metrics_path = dir + "/metrics.json";
  const std::string trace_path = dir + "/trace.json";
  const auto r = run({"ingest", "--jobs", "400", "--threads", "2",
                      ("--metrics=" + metrics_path).c_str(), "--trace-out",
                      trace_path.c_str()});
  EXPECT_EQ(r.code, 0) << r.err;

  const auto slurp = [](const std::string& path) {
    std::ifstream in(path);
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
  };

  const util::JsonValue metrics = util::parse_json(slurp(metrics_path));
  EXPECT_GT(metrics.at("counters").at("ingest.stream.rows").as_number(), 0.0);

  const util::JsonValue trace = util::parse_json(slurp(trace_path));
  EXPECT_EQ(trace.at("displayTimeUnit").as_string(), "ms");
  const auto& events = trace.at("traceEvents").as_array();
  ASSERT_FALSE(events.empty());
  bool saw_stream = false;
  for (const auto& e : events) {
    if (e.at("name").as_string() == "ingest.stream") saw_stream = true;
  }
  EXPECT_TRUE(saw_stream);
  std::filesystem::remove_all(dir);
}

TEST(Cli, CharacterizeJsonEmbedsTimingsAndMetrics) {
  const auto r = run({"characterize", "--jobs", "600", "--sample", "15",
                      "--json", "--metrics"});
  EXPECT_EQ(r.code, 0) << r.err;
  const util::JsonValue doc = util::parse_json(r.out);
  EXPECT_GE(doc.at("timings").at("pipeline_ms").as_number(), 0.0);
  EXPECT_GE(doc.at("timings").at("total_ms").as_number(), 0.0);
  const auto subsystems = [&doc] {
    std::set<std::string> subs;
    for (const auto& [name, value] :
         doc.at("metrics").at("counters").as_object()) {
      const auto second_dot = name.find('.', name.find('.') + 1);
      subs.insert(name.substr(0, second_dot));
    }
    return subs;
  }();
  // The acceptance bar: one pipeline run covers at least 5 subsystems.
  EXPECT_GE(subsystems.size(), 5u) << [&subsystems] {
    std::string joined;
    for (const auto& s : subsystems) joined += s + " ";
    return joined;
  }();
}

TEST(Cli, PipelineAliasMatchesCharacterize) {
  const auto r = run({"pipeline", "--jobs", "500", "--sample", "10"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("Fig 3"), std::string::npos);
}

// End-to-end model store + serving: fit persists a snapshot, predict
// classifies a fresh CSV against it, serve-bench measures throughput — the
// same sequence scripts/check.sh runs in its serve-smoke pass.
TEST(Cli, FitPredictServeBenchRoundTrip) {
  const auto dir =
      std::filesystem::temp_directory_path() / "cwgl_cli_fit_test";
  std::filesystem::create_directories(dir);
  const std::string model = (dir / "model.cwgl").string();

  const auto fit = run({"fit", "--jobs", "300", "--seed", "7", "--sample",
                        "40", "--clusters", "3", "--out", model.c_str()});
  EXPECT_EQ(fit.code, 0) << fit.err;
  EXPECT_NE(fit.out.find("self-check: 40/40"), std::string::npos) << fit.out;
  ASSERT_TRUE(std::filesystem::exists(model));

  const std::string csv = (dir / "probe.csv").string();
  {
    std::ofstream probe(csv);
    probe << "M1,1,j_chain,1,Terminated,100,200,100.00,0.50\n"
          << "R2_1,1,j_chain,1,Terminated,200,300,100.00,0.50\n"
          << "J3_2,1,j_chain,1,Terminated,300,400,50.00,0.25\n";
  }
  const auto predict =
      run({"predict", "--model", model.c_str(), csv.c_str(), "--json"});
  EXPECT_EQ(predict.code, 0) << predict.err;
  const util::JsonValue pdoc = util::parse_json(predict.out);
  EXPECT_EQ(pdoc.at("schema").as_string(), "cwgl-predict-v1");
  ASSERT_EQ(pdoc.at("jobs").as_array().size(), 1u);
  const auto& job = pdoc.at("jobs").as_array()[0];
  EXPECT_EQ(job.at("job").as_string(), "j_chain");
  EXPECT_GE(job.at("similarity").as_number(), 0.0);
  EXPECT_LE(job.at("similarity").as_number(), 1.0);
  EXPECT_GT(job.at("predicted").at("critical_path").as_number(), 0.0);

  const auto bench = run({"serve-bench", "--model", model.c_str(), "--jobs",
                          "80", "--threads", "2", "--repeat", "1", "--json"});
  EXPECT_EQ(bench.code, 0) << bench.err;
  const util::JsonValue bdoc = util::parse_json(bench.out);
  EXPECT_EQ(bdoc.at("schema").as_string(), "cwgl-serve-bench-v1");
  EXPECT_GT(bdoc.at("jobs_per_second").as_number(), 0.0);
  EXPECT_GE(bdoc.at("latency_us").at("p90").as_number(),
            bdoc.at("latency_us").at("p50").as_number());

  std::filesystem::remove_all(dir);
}

TEST(Cli, CharacterizeInternEmitsTableStats) {
  const auto r = run({"characterize", "--jobs", "600", "--sample", "20",
                      "--intern", "--json"});
  EXPECT_EQ(r.code, 0) << r.err;
  const util::JsonValue doc = util::parse_json(r.out);
  const util::JsonValue& intern = doc.at("intern");
  EXPECT_EQ(intern.at("total_jobs").as_number(), 20.0);
  EXPECT_GT(intern.at("distinct_shapes").as_number(), 0.0);
  EXPECT_LE(intern.at("distinct_shapes").as_number(),
            intern.at("total_jobs").as_number());
  EXPECT_GE(intern.at("hits").as_number(), 0.0);
  EXPECT_EQ(intern.at("hash_collisions").as_number(), 0.0);
  // All the paper artifacts survive the interned path.
  EXPECT_NE(r.out.find("\"fig3\""), std::string::npos);
  EXPECT_NE(r.out.find("\"fig9\""), std::string::npos);
}

TEST(Cli, CharacterizeInternTextMentionsShapes) {
  const auto r = run({"characterize", "--jobs", "600", "--sample", "20",
                      "--intern"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("shape interning:"), std::string::npos);
  EXPECT_NE(r.out.find("Fig 3"), std::string::npos);
}

TEST(Cli, IngestInternReportsShapeTable) {
  const auto r = run({"ingest", "--jobs", "400", "--serial", "--intern",
                      "--json"});
  EXPECT_EQ(r.code, 0) << r.err;
  const util::JsonValue doc = util::parse_json(r.out);
  const util::JsonValue& intern = doc.at("intern");
  EXPECT_GT(intern.at("total_jobs").as_number(), 0.0);
  EXPECT_GT(intern.at("distinct_shapes").as_number(), 0.0);
  EXPECT_GT(doc.at("built").at("dags").as_number(), 0.0);
}

TEST(Cli, FitInternSelfCheckHolds) {
  const auto dir =
      std::filesystem::temp_directory_path() / "cwgl_cli_fit_intern_test";
  std::filesystem::create_directories(dir);
  const std::string model = (dir / "model.cwgl").string();
  const auto fit = run({"fit", "--jobs", "300", "--seed", "7", "--sample",
                        "40", "--clusters", "3", "--intern", "--out",
                        model.c_str()});
  EXPECT_EQ(fit.code, 0) << fit.err;
  // The self-check classifies every SAMPLED job (not just every shape)
  // through the per-shape snapshot — all 40 must reproduce their cluster.
  EXPECT_NE(fit.out.find("self-check: 40/40"), std::string::npos) << fit.out;
  EXPECT_NE(fit.out.find("representatives"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(Cli, PredictWithoutModelPathStillRunsPredictor) {
  // Backwards compatibility: bare `predict` keeps the completion-time
  // predictor behavior (no --model, no positional).
  const auto r = run({"predict", "--jobs", "300", "--sample", "30"});
  EXPECT_EQ(r.code, 0) << r.err;
}

TEST(Cli, PredictAgainstCorruptModelIsCleanError) {
  const auto dir =
      std::filesystem::temp_directory_path() / "cwgl_cli_badmodel_test";
  std::filesystem::create_directories(dir);
  const std::string model = (dir / "bad.cwgl").string();
  {
    std::ofstream bad(model, std::ios::binary);
    bad << "CWGLMDL1 this is not a real snapshot";
  }
  const std::string csv = (dir / "probe.csv").string();
  {
    std::ofstream probe(csv);
    probe << "M1,1,j_x,1,Terminated,100,200,100.00,0.50\n"
          << "R2_1,1,j_x,1,Terminated,200,300,100.00,0.50\n";
  }
  const auto r = run({"predict", "--model", model.c_str(), csv.c_str()});
  EXPECT_NE(r.code, 0);
  EXPECT_NE(r.err.find("model"), std::string::npos) << r.err;
  std::filesystem::remove_all(dir);
}

TEST(Cli, ServeBenchRequiresModel) {
  const auto r = run({"serve-bench", "--jobs", "50"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("--model"), std::string::npos);
}

// The `cwgl client` telemetry surface against a live in-process daemon:
// ping carries version/generation, --stats --prometheus renders text
// exposition, --health answers readiness JSON, --watch polls repeatedly,
// and non-ok statuses go to stderr with a nonzero exit so scripts can
// branch on the exit code.
TEST(CliClient, TelemetryRoundTripAgainstLiveDaemon) {
  const auto dir =
      std::filesystem::temp_directory_path() / "cwgl_cli_client_test";
  std::filesystem::create_directories(dir);
  const std::string model = (dir / "model.cwgl").string();
  const auto fit = run({"fit", "--jobs", "200", "--seed", "5", "--sample",
                        "30", "--clusters", "3", "--out", model.c_str()});
  ASSERT_EQ(fit.code, 0) << fit.err;

  serve::DaemonConfig cfg;
  cfg.endpoint.tcp_port = 0;  // ephemeral
  cfg.worker_threads = 2;
  cfg.model_path = model;
  serve::Daemon daemon(
      std::make_shared<const serve::Classifier>(model::load_model(model)),
      cfg);
  daemon.start();
  const std::string port = std::to_string(daemon.tcp_port());

  const auto ping = run({"client", "--port", port.c_str(), "--ping"});
  EXPECT_EQ(ping.code, 0) << ping.err;
  EXPECT_NE(ping.out.find("status ok"), std::string::npos);
  EXPECT_NE(ping.out.find("version cwgl "), std::string::npos);
  EXPECT_NE(ping.out.find("generation 1"), std::string::npos);

  const auto cls = run({"client", "--port", port.c_str(), "--job", "j_cli",
                        "--tasks", "M1,M2_1,R3_2"});
  EXPECT_EQ(cls.code, 0) << cls.err;
  EXPECT_NE(cls.out.find("cluster "), std::string::npos);

  const auto health = run({"client", "--port", port.c_str(), "--health"});
  EXPECT_EQ(health.code, 0) << health.err;
  EXPECT_NE(health.out.find("\"ready\":true"), std::string::npos);

  const auto prom =
      run({"client", "--port", port.c_str(), "--stats", "--prometheus"});
  EXPECT_EQ(prom.code, 0) << prom.err;
  EXPECT_NE(
      prom.out.find("# TYPE cwgl_serve_daemon_requests_total counter"),
      std::string::npos)
      << prom.out;
  EXPECT_NE(prom.out.find("# TYPE cwgl_serve_daemon_compute_us histogram"),
            std::string::npos);
  EXPECT_NE(prom.out.find("cwgl_serve_daemon_compute_us_bucket{le=\"+Inf\"}"),
            std::string::npos);

  // Watch mode: bounded by the hidden --watch-count hook, one blank line
  // between rounds.
  const auto watch = run({"client", "--port", port.c_str(), "--stats",
                          "--watch", "0.01", "--watch-count", "2"});
  EXPECT_EQ(watch.code, 0) << watch.err;
  std::size_t rounds = 0;
  for (std::size_t pos = 0;
       (pos = watch.out.find("status ok", pos)) != std::string::npos; ++pos) {
    ++rounds;
  }
  EXPECT_EQ(rounds, 2u);
  EXPECT_NE(watch.out.find("\n\n"), std::string::npos);

  // Non-ok statuses print to stderr and exit 1 (stdout stays clean).
  const std::string corrupt = (dir / "corrupt.cwgl").string();
  {
    std::ofstream f(corrupt, std::ios::binary);
    f << "not a model";
  }
  const auto bad =
      run({"client", "--port", port.c_str(), "--reload", corrupt.c_str()});
  EXPECT_EQ(bad.code, 1);
  EXPECT_NE(bad.err.find("status error"), std::string::npos) << bad.err;
  EXPECT_EQ(bad.out, "");

  daemon.request_drain();
  EXPECT_EQ(daemon.wait(), 0);
  std::filesystem::remove_all(dir);
}

TEST(CliClient, MissingEndpointOrRequestRejected) {
  const auto no_ep = run({"client", "--ping"});
  EXPECT_EQ(no_ep.code, 2);
  EXPECT_NE(no_ep.err.find("endpoint"), std::string::npos);
  const auto no_req = run({"client", "--port", "1"});
  EXPECT_EQ(no_req.code, 2);
  EXPECT_NE(no_req.err.find("pick one of"), std::string::npos);
}

}  // namespace
}  // namespace cwgl::cli

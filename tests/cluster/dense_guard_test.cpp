// The dense spectral path is O(n^2) memory and O(n^3) eigensolve; above
// SpectralOptions::max_dense_items it must refuse with a typed error that
// points the caller at the scalable path instead of silently burning hours.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/spectral.hpp"
#include "util/error.hpp"

namespace cwgl::cluster {
namespace {

linalg::Matrix identity_similarity(std::size_t n) {
  linalg::Matrix w(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) w(i, j) = i == j ? 1.0 : 0.1;
  }
  return w;
}

TEST(DenseGuard, AboveLimitThrowsPointingAtFullPath) {
  SpectralOptions opt;
  opt.max_dense_items = 16;
  const auto w = identity_similarity(17);
  try {
    spectral_cluster(w, 2, opt);
    FAIL() << "expected InvalidArgument";
  } catch (const util::InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--full"), std::string::npos) << what;
    EXPECT_NE(what.find("max_dense_items"), std::string::npos) << what;
  }
}

TEST(DenseGuard, WeightedVariantGuardedToo) {
  SpectralOptions opt;
  opt.max_dense_items = 16;
  const auto w = identity_similarity(17);
  const std::vector<double> weights(17, 1.0);
  EXPECT_THROW(spectral_cluster_weighted(w, weights, 2, opt),
               util::InvalidArgument);
}

TEST(DenseGuard, AtLimitStillRuns) {
  SpectralOptions opt;
  opt.max_dense_items = 16;
  const auto w = identity_similarity(16);
  const auto result = spectral_cluster(w, 2, opt);
  EXPECT_EQ(result.labels.size(), 16u);
}

TEST(DenseGuard, ZeroDisablesTheGuard) {
  SpectralOptions opt;
  opt.max_dense_items = 0;
  const auto w = identity_similarity(32);
  const auto result = spectral_cluster(w, 2, opt);
  EXPECT_EQ(result.labels.size(), 32u);
}

}  // namespace
}  // namespace cwgl::cluster

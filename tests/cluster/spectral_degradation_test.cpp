// Graceful-degradation and input-validation tests for the spectral path:
// non-finite/asymmetric similarity handling (strict vs lenient), the
// iterative-eigensolver -> dense-Jacobi fallback, and k-means' behavior on
// degenerate embeddings.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "cluster/kmeans.hpp"
#include "cluster/metrics.hpp"
#include "cluster/spectral.hpp"
#include "linalg/eigen.hpp"
#include "util/diagnostics.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace cwgl::cluster {
namespace {

linalg::Matrix block_similarity(int blocks, int per_block, std::uint64_t seed,
                                std::vector<int>* truth = nullptr) {
  util::Xoshiro256StarStar rng(seed);
  const int n = blocks * per_block;
  linalg::Matrix w(n, n);
  for (int i = 0; i < n; ++i) {
    if (truth) truth->push_back(i / per_block);
    for (int j = 0; j <= i; ++j) {
      const bool same = (i / per_block) == (j / per_block);
      const double base = i == j ? 1.0 : (same ? 0.9 : 0.05);
      const double v =
          std::clamp(base + rng.uniform_real(-0.02, 0.02), 0.0, 1.0);
      w(i, j) = v;
      w(j, i) = v;
    }
  }
  return w;
}

TEST(SpectralValidation, StrictRejectsNonFiniteSimilarity) {
  auto w = block_similarity(2, 4, 3);
  w(1, 2) = std::numeric_limits<double>::quiet_NaN();
  w(2, 1) = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(spectral_cluster(w, 2), util::InvalidArgument);

  auto inf = block_similarity(2, 4, 5);
  inf(0, 3) = std::numeric_limits<double>::infinity();
  inf(3, 0) = std::numeric_limits<double>::infinity();
  EXPECT_THROW(spectral_cluster(inf, 2), util::InvalidArgument);
}

TEST(SpectralValidation, StrictRejectsAsymmetricSimilarity) {
  auto w = block_similarity(2, 4, 7);
  w(1, 2) += 0.5;  // break symmetry well beyond numerical noise
  EXPECT_THROW(spectral_cluster(w, 2), util::InvalidArgument);
}

TEST(SpectralValidation, TinyAsymmetryIsToleratedStrict) {
  auto w = block_similarity(2, 4, 9);
  w(1, 2) += 1e-12;  // numerical noise must NOT trip validation
  const auto result = spectral_cluster(w, 2);
  EXPECT_EQ(result.labels.size(), 8u);
}

TEST(SpectralValidation, LenientClampsAndReports) {
  std::vector<int> truth;
  auto w = block_similarity(3, 8, 11, &truth);
  w(1, 2) = std::numeric_limits<double>::quiet_NaN();
  w(2, 1) = std::numeric_limits<double>::quiet_NaN();
  util::Diagnostics diagnostics;
  SpectralOptions options;
  options.lenient = true;
  options.diagnostics = &diagnostics;
  const auto result = spectral_cluster(w, 3, options);
  EXPECT_EQ(result.clamped_entries, 2u);
  EXPECT_EQ(diagnostics.count_of("spectral", "non-finite-clamped"), 2u);
  // Two poisoned entries out of 576 must not destroy the clustering.
  EXPECT_GT(adjusted_rand_index(result.labels, truth), 0.9);
}

TEST(SpectralDegradation, NonConvergedPartialSolverFallsBackToDense) {
  std::vector<int> truth;
  // n = 40 > 32 so the partial path actually iterates (below 33 it
  // delegates to Jacobi outright), and a 1-sweep budget cannot satisfy the
  // solver's consecutive-settled-sweeps requirement: fallback guaranteed.
  const auto w = block_similarity(4, 10, 13, &truth);
  util::Diagnostics diagnostics;
  SpectralOptions options;
  options.partial_eigen_threshold = 0;  // force the iterative path
  options.partial_max_sweeps = 1;
  options.diagnostics = &diagnostics;
  const auto result = spectral_cluster(w, 3, options);
  EXPECT_TRUE(result.eigen_fallback);
  EXPECT_EQ(diagnostics.count_of("spectral", "eigen-fallback"), 1u);
  // The fallback is the dense solver: full spectrum, correct clustering.
  EXPECT_EQ(result.eigenvalues.size(), 40u);
  EXPECT_EQ(result.labels.size(), 40u);
}

TEST(SpectralDegradation, ConvergedPartialSolverDoesNotFallBack) {
  const auto w = block_similarity(4, 10, 15);
  util::Diagnostics diagnostics;
  SpectralOptions options;
  options.partial_eigen_threshold = 0;
  options.diagnostics = &diagnostics;
  const auto result = spectral_cluster(w, 4, options);
  EXPECT_FALSE(result.eigen_fallback);
  EXPECT_EQ(diagnostics.count_of("spectral", "eigen-fallback"), 0u);
  EXPECT_EQ(result.eigenvalues.size(), 4u);  // partial mode: k values only
}

TEST(EigenConvergence, JacobiReportsConvergence) {
  const auto w = block_similarity(2, 8, 17);
  const auto full = linalg::jacobi_eigen(w);
  EXPECT_TRUE(full.converged);
  // A 0-sweep budget cannot converge a matrix with off-diagonal mass.
  const auto starved = linalg::jacobi_eigen(w, 1e-12, 0);
  EXPECT_FALSE(starved.converged);
}

TEST(EigenConvergence, SubspaceIterationReportsNonConvergence) {
  // Use the graph Laplacian of the 4-block similarity (the shape the
  // spectral path feeds the solver): its 4 smallest eigenvalues sit near
  // zero, well separated from the bulk, so a generous budget converges —
  // while a 1-sweep budget can never satisfy the solver's
  // consecutive-settled-sweeps requirement. (The raw similarity matrix
  // would be a bad subject here: its BOTTOM eigenvalues are degenerate
  // noise, where subspace iteration is legitimately slow.)
  const auto w = block_similarity(4, 10, 19);  // n = 40 > 32
  const std::size_t n = w.rows();
  linalg::Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    double degree = 0.0;
    for (std::size_t j = 0; j < n; ++j) degree += w(i, j);
    for (std::size_t j = 0; j < n; ++j) l(i, j) = -w(i, j);
    l(i, i) = degree - w(i, i);
  }
  const auto starved = linalg::smallest_eigenpairs(l, 3, /*max_sweeps=*/1);
  EXPECT_FALSE(starved.converged);
  const auto generous = linalg::smallest_eigenpairs(l, 3, /*max_sweeps=*/600);
  EXPECT_TRUE(generous.converged);
}

TEST(KMeansRobustness, NonFiniteDataRejected) {
  linalg::Matrix data(4, 2);
  data(2, 1) = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(kmeans(data, 2, {}), util::InvalidArgument);
}

TEST(KMeansRobustness, DegenerateEmbeddingStillProducesKClusters) {
  // All points identical: kmeans++ D^2 weights are all zero. The uniform
  // re-seed must still return a usable labeling instead of looping or
  // crashing.
  linalg::Matrix data(8, 2);
  for (std::size_t i = 0; i < 8; ++i) {
    data(i, 0) = 1.0;
    data(i, 1) = 2.0;
  }
  const auto result = kmeans(data, 3, {});
  ASSERT_EQ(result.labels.size(), 8u);
  for (int l : result.labels) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, 3);
  }
  EXPECT_EQ(result.inertia, 0.0);
}

}  // namespace
}  // namespace cwgl::cluster

#include "cluster/landmark.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "cluster/metrics.hpp"
#include "cluster/sparse_blobs.hpp"
#include "util/error.hpp"

namespace cwgl::cluster {
namespace {

using testing::make_sparse_blobs;

TEST(LandmarkSpectral, RecoversPlantedGroups) {
  const auto blobs = make_sparse_blobs(4, 50, 19);
  LandmarkOptions opt;
  opt.landmarks = 64;
  const auto result =
      landmark_spectral_cluster(blobs.points, blobs.weights, blobs.dims, 4, opt);
  EXPECT_GT(adjusted_rand_index(result.labels, blobs.truth), 0.99);
}

TEST(LandmarkSpectral, DeterministicForSeed) {
  const auto blobs = make_sparse_blobs(3, 40, 29);
  LandmarkOptions opt;
  opt.landmarks = 48;
  opt.seed = 5;
  opt.kmeans.seed = 6;
  const auto a =
      landmark_spectral_cluster(blobs.points, blobs.weights, blobs.dims, 3, opt);
  const auto b =
      landmark_spectral_cluster(blobs.points, blobs.weights, blobs.dims, 3, opt);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.landmarks, b.landmarks);
  EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

TEST(LandmarkSpectral, LandmarkBudgetClampedToCorpus) {
  const auto blobs = make_sparse_blobs(2, 6, 31);  // 12 vectors
  LandmarkOptions opt;
  opt.landmarks = 500;
  const auto result =
      landmark_spectral_cluster(blobs.points, blobs.weights, blobs.dims, 2, opt);
  EXPECT_EQ(result.landmarks.size(), blobs.points.size());
  EXPECT_TRUE(std::is_sorted(result.landmarks.begin(), result.landmarks.end()));
  // Without replacement: all chosen indices distinct and in range.
  std::set<std::size_t> distinct(result.landmarks.begin(),
                                 result.landmarks.end());
  EXPECT_EQ(distinct.size(), result.landmarks.size());
  for (std::size_t idx : result.landmarks) EXPECT_LT(idx, blobs.points.size());
}

TEST(LandmarkSpectral, EmbeddingDimsBoundedByRequest) {
  const auto blobs = make_sparse_blobs(3, 30, 37);
  LandmarkOptions opt;
  opt.landmarks = 32;
  opt.embedding_dims = 2;
  const auto result =
      landmark_spectral_cluster(blobs.points, blobs.weights, blobs.dims, 3, opt);
  EXPECT_LE(result.dims, 2u);
  EXPECT_GE(result.dims, 1u);
}

TEST(LandmarkSpectral, InvalidArgumentsThrow) {
  const auto blobs = make_sparse_blobs(2, 5, 41);
  EXPECT_THROW(
      landmark_spectral_cluster(blobs.points, blobs.weights, blobs.dims, 0),
      util::InvalidArgument);
  EXPECT_THROW(
      landmark_spectral_cluster(blobs.points, blobs.weights, blobs.dims,
                                static_cast<int>(blobs.points.size()) + 1),
      util::InvalidArgument);
  std::vector<double> bad = blobs.weights;
  bad.back() = -2.0;
  EXPECT_THROW(landmark_spectral_cluster(blobs.points, bad, blobs.dims, 2),
               util::InvalidArgument);
  LandmarkOptions zero;
  zero.landmarks = 0;
  EXPECT_THROW(landmark_spectral_cluster(blobs.points, blobs.weights,
                                         blobs.dims, 2, zero),
               util::InvalidArgument);
}

TEST(LandmarkSpectral, LabelsInRangeAndSized) {
  const auto blobs = make_sparse_blobs(3, 20, 43);
  LandmarkOptions opt;
  opt.landmarks = 24;
  const auto result =
      landmark_spectral_cluster(blobs.points, blobs.weights, blobs.dims, 3, opt);
  ASSERT_EQ(result.labels.size(), blobs.points.size());
  for (int l : result.labels) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, 3);
  }
}

}  // namespace
}  // namespace cwgl::cluster

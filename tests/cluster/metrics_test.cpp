#include "cluster/metrics.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace cwgl::cluster {
namespace {

TEST(AdjustedRandIndex, IdenticalPartitionsScoreOne) {
  const std::vector<int> a{0, 0, 1, 1, 2, 2};
  EXPECT_DOUBLE_EQ(adjusted_rand_index(a, a), 1.0);
}

TEST(AdjustedRandIndex, RelabelingInvariant) {
  const std::vector<int> a{0, 0, 1, 1, 2, 2};
  const std::vector<int> b{5, 5, 9, 9, 1, 1};
  EXPECT_DOUBLE_EQ(adjusted_rand_index(a, b), 1.0);
}

TEST(AdjustedRandIndex, DisagreementLowersScore) {
  const std::vector<int> a{0, 0, 0, 1, 1, 1};
  const std::vector<int> b{0, 0, 1, 1, 1, 1};
  const double ari = adjusted_rand_index(a, b);
  EXPECT_LT(ari, 1.0);
  EXPECT_GT(ari, 0.0);
}

TEST(AdjustedRandIndex, SymmetricInArguments) {
  const std::vector<int> a{0, 0, 1, 1, 2, 2};
  const std::vector<int> b{0, 1, 1, 2, 2, 0};
  EXPECT_DOUBLE_EQ(adjusted_rand_index(a, b), adjusted_rand_index(b, a));
}

TEST(AdjustedRandIndex, KnownValue) {
  // Classic example: ARI of these partitions is 0.24242...
  const std::vector<int> a{0, 0, 0, 1, 1, 1};
  const std::vector<int> b{0, 0, 1, 1, 2, 2};
  EXPECT_NEAR(adjusted_rand_index(a, b), 0.2424242424, 1e-9);
}

TEST(AdjustedRandIndex, SizeMismatchThrows) {
  const std::vector<int> a{0, 1};
  const std::vector<int> b{0};
  EXPECT_THROW(adjusted_rand_index(a, b), util::InvalidArgument);
}

TEST(Nmi, IdenticalPartitionsScoreOne) {
  const std::vector<int> a{0, 0, 1, 1};
  EXPECT_NEAR(normalized_mutual_information(a, a), 1.0, 1e-12);
}

TEST(Nmi, IndependentPartitionsScoreNearZero) {
  // Perfectly crossed partitions carry zero mutual information.
  const std::vector<int> a{0, 0, 1, 1};
  const std::vector<int> b{0, 1, 0, 1};
  EXPECT_NEAR(normalized_mutual_information(a, b), 0.0, 1e-12);
}

TEST(Nmi, InUnitInterval) {
  const std::vector<int> a{0, 0, 0, 1, 1, 2};
  const std::vector<int> b{0, 1, 0, 1, 1, 2};
  const double nmi = normalized_mutual_information(a, b);
  EXPECT_GE(nmi, 0.0);
  EXPECT_LE(nmi, 1.0);
}

TEST(Nmi, BothTrivialPartitionsScoreOne) {
  const std::vector<int> a{0, 0, 0};
  EXPECT_DOUBLE_EQ(normalized_mutual_information(a, a), 1.0);
}

TEST(Purity, PerfectClusteringIsOne) {
  const std::vector<int> pred{0, 0, 1, 1};
  const std::vector<int> truth{7, 7, 9, 9};
  EXPECT_DOUBLE_EQ(purity(pred, truth), 1.0);
}

TEST(Purity, MajorityRule) {
  const std::vector<int> pred{0, 0, 0, 1, 1, 1};
  const std::vector<int> truth{0, 0, 1, 1, 1, 0};
  EXPECT_DOUBLE_EQ(purity(pred, truth), 4.0 / 6.0);
}

TEST(Purity, SingletonClustersAlwaysPure) {
  const std::vector<int> pred{0, 1, 2, 3};
  const std::vector<int> truth{0, 0, 0, 0};
  EXPECT_DOUBLE_EQ(purity(pred, truth), 1.0);
}

TEST(ClusterCountAndSizes, Basics) {
  const std::vector<int> labels{0, 2, 2, 0, 0};
  EXPECT_EQ(cluster_count(labels), 2);
  const auto sizes = cluster_sizes(labels);
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[0], 3u);
  EXPECT_EQ(sizes[1], 0u);
  EXPECT_EQ(sizes[2], 2u);
}

TEST(ClusterSizes, NegativeLabelThrows) {
  const std::vector<int> labels{0, -1};
  EXPECT_THROW(cluster_sizes(labels), util::InvalidArgument);
}

TEST(Silhouette, WellSeparatedClustersScoreHigh) {
  // Two tight pairs far apart.
  linalg::Matrix d = linalg::Matrix::from_rows({{0.0, 0.1, 9.0, 9.0},
                                                {0.1, 0.0, 9.0, 9.0},
                                                {9.0, 9.0, 0.0, 0.1},
                                                {9.0, 9.0, 0.1, 0.0}});
  const std::vector<int> labels{0, 0, 1, 1};
  EXPECT_GT(silhouette_score(d, labels), 0.9);
}

TEST(Silhouette, BadAssignmentScoresNegative) {
  linalg::Matrix d = linalg::Matrix::from_rows({{0.0, 0.1, 9.0, 9.0},
                                                {0.1, 0.0, 9.0, 9.0},
                                                {9.0, 9.0, 0.0, 0.1},
                                                {9.0, 9.0, 0.1, 0.0}});
  const std::vector<int> labels{0, 1, 0, 1};  // crosses the true pairs
  EXPECT_LT(silhouette_score(d, labels), 0.0);
}

TEST(Silhouette, SingleClusterScoresZero) {
  linalg::Matrix d(3, 3);
  const std::vector<int> labels{0, 0, 0};
  EXPECT_DOUBLE_EQ(silhouette_score(d, labels), 0.0);
}

TEST(Silhouette, MismatchThrows) {
  linalg::Matrix d(3, 3);
  const std::vector<int> labels{0, 1};
  EXPECT_THROW(silhouette_score(d, labels), util::InvalidArgument);
}

}  // namespace
}  // namespace cwgl::cluster

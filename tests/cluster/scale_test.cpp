#include "cluster/scale.hpp"

#include <gtest/gtest.h>

#include <string_view>
#include <vector>

#include "cluster/metrics.hpp"
#include "cluster/sparse_blobs.hpp"
#include "util/diagnostics.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"

namespace cwgl::cluster {
namespace {

using testing::make_sparse_blobs;

TEST(ScaleMethodNames, RoundTrip) {
  EXPECT_EQ(to_string(ScaleMethod::MiniBatch), "minibatch");
  EXPECT_EQ(to_string(ScaleMethod::Landmark), "landmark");
  ScaleMethod m = ScaleMethod::MiniBatch;
  EXPECT_TRUE(parse_scale_method("landmark", m));
  EXPECT_EQ(m, ScaleMethod::Landmark);
  EXPECT_TRUE(parse_scale_method("minibatch", m));
  EXPECT_EQ(m, ScaleMethod::MiniBatch);
  EXPECT_FALSE(parse_scale_method("exact", m));
  EXPECT_FALSE(parse_scale_method("", m));
}

TEST(ClusterAtScale, BothBackendsRecoverPlantedGroups) {
  const auto blobs = make_sparse_blobs(4, 60, 53);
  for (const ScaleMethod method :
       {ScaleMethod::MiniBatch, ScaleMethod::Landmark}) {
    ScaleOptions opt;
    opt.method = method;
    opt.clusters = 4;
    const auto result =
        cluster_at_scale(blobs.points, blobs.weights, blobs.dims, opt);
    EXPECT_EQ(result.method, method) << to_string(method);
    EXPECT_FALSE(result.degraded) << to_string(method);
    EXPECT_GT(adjusted_rand_index(result.labels, blobs.truth), 0.99)
        << to_string(method);
  }
}

TEST(ClusterAtScale, DeterministicForSeed) {
  const auto blobs = make_sparse_blobs(3, 40, 59);
  for (const ScaleMethod method :
       {ScaleMethod::MiniBatch, ScaleMethod::Landmark}) {
    ScaleOptions opt;
    opt.method = method;
    opt.clusters = 3;
    opt.seed = 123;
    const auto a =
        cluster_at_scale(blobs.points, blobs.weights, blobs.dims, opt);
    const auto b =
        cluster_at_scale(blobs.points, blobs.weights, blobs.dims, opt);
    EXPECT_EQ(a.labels, b.labels) << to_string(method);
    EXPECT_DOUBLE_EQ(a.inertia, b.inertia) << to_string(method);
  }
}

TEST(ClusterAtScale, InvalidArgumentsAreNotDegraded) {
  const auto blobs = make_sparse_blobs(2, 5, 61);
  ScaleOptions opt;
  opt.clusters = 0;
  EXPECT_THROW(cluster_at_scale(blobs.points, blobs.weights, blobs.dims, opt),
               util::InvalidArgument);
  opt.clusters = static_cast<int>(blobs.points.size()) + 1;
  EXPECT_THROW(cluster_at_scale(blobs.points, blobs.weights, blobs.dims, opt),
               util::InvalidArgument);
  // Caller bugs surface even on the landmark path — never masked by the
  // mini-batch fallback.
  opt.method = ScaleMethod::Landmark;
  EXPECT_THROW(cluster_at_scale(blobs.points, blobs.weights, blobs.dims, opt),
               util::InvalidArgument);
}

TEST(ClusterAtScale, LandmarkFaultDegradesToMiniBatch) {
  if (!util::failpoint::compiled_in()) {
    GTEST_SKIP() << "failpoints not compiled in";
  }
  const auto blobs = make_sparse_blobs(3, 30, 67);
  util::failpoint::configure("cluster.scale=error");
  util::Diagnostics diagnostics;
  ScaleOptions opt;
  opt.method = ScaleMethod::Landmark;
  opt.clusters = 3;
  opt.diagnostics = &diagnostics;
  const auto result =
      cluster_at_scale(blobs.points, blobs.weights, blobs.dims, opt);
  util::failpoint::clear();

  EXPECT_TRUE(result.degraded);
  EXPECT_EQ(result.method, ScaleMethod::MiniBatch);
  EXPECT_EQ(result.labels.size(), blobs.points.size());
  EXPECT_GT(adjusted_rand_index(result.labels, blobs.truth), 0.99);
  EXPECT_EQ(diagnostics.count_of("cluster.scale", "landmark-degraded"), 1u);
}

TEST(ClusterAtScale, MiniBatchPathUnaffectedByLandmarkFault) {
  if (!util::failpoint::compiled_in()) {
    GTEST_SKIP() << "failpoints not compiled in";
  }
  const auto blobs = make_sparse_blobs(2, 20, 71);
  util::failpoint::configure("cluster.scale=error");
  ScaleOptions opt;
  opt.method = ScaleMethod::MiniBatch;
  opt.clusters = 2;
  const auto result =
      cluster_at_scale(blobs.points, blobs.weights, blobs.dims, opt);
  util::failpoint::clear();
  EXPECT_FALSE(result.degraded);
  EXPECT_EQ(result.method, ScaleMethod::MiniBatch);
}

}  // namespace
}  // namespace cwgl::cluster

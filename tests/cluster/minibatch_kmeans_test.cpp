#include "cluster/minibatch_kmeans.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "cluster/metrics.hpp"
#include "cluster/sparse_blobs.hpp"
#include "util/error.hpp"

namespace cwgl::cluster {
namespace {

using testing::make_sparse_blobs;

TEST(MiniBatchKMeans, RecoversPlantedGroups) {
  const auto blobs = make_sparse_blobs(4, 50, 17);
  const auto result =
      minibatch_kmeans(blobs.points, blobs.weights, blobs.dims, 4);
  EXPECT_GT(adjusted_rand_index(result.labels, blobs.truth), 0.99);
  std::set<int> distinct(result.labels.begin(), result.labels.end());
  EXPECT_EQ(distinct.size(), 4u);
}

TEST(MiniBatchKMeans, DeterministicForSeed) {
  const auto blobs = make_sparse_blobs(3, 40, 23);
  MiniBatchOptions opt;
  opt.seed = 7;
  const auto a = minibatch_kmeans(blobs.points, blobs.weights, blobs.dims, 3, opt);
  const auto b = minibatch_kmeans(blobs.points, blobs.weights, blobs.dims, 3, opt);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
  EXPECT_EQ(a.batches, b.batches);
}

TEST(MiniBatchKMeans, NoEmptyClustersEvenWithoutRefinement) {
  const auto blobs = make_sparse_blobs(2, 30, 31);
  MiniBatchOptions opt;
  opt.refine_iterations = 0;
  opt.restarts = 1;
  const auto result =
      minibatch_kmeans(blobs.points, blobs.weights, blobs.dims, 5, opt);
  std::set<int> distinct(result.labels.begin(), result.labels.end());
  EXPECT_EQ(distinct.size(), 5u);
}

TEST(MiniBatchKMeans, LabelsInRangeAndSized) {
  const auto blobs = make_sparse_blobs(3, 25, 37);
  const auto result =
      minibatch_kmeans(blobs.points, blobs.weights, blobs.dims, 3);
  ASSERT_EQ(result.labels.size(), blobs.points.size());
  for (int l : result.labels) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, 3);
  }
  EXPECT_EQ(result.centers.rows(), 3u);
  EXPECT_EQ(result.centers.cols(), blobs.dims);
  EXPECT_GE(result.inertia, 0.0);
}

TEST(MiniBatchKMeans, KEqualsOneAssignsEverything) {
  const auto blobs = make_sparse_blobs(2, 10, 41);
  const auto result =
      minibatch_kmeans(blobs.points, blobs.weights, blobs.dims, 1);
  for (int l : result.labels) EXPECT_EQ(l, 0);
}

TEST(MiniBatchKMeans, InvalidArgumentsThrow) {
  const auto blobs = make_sparse_blobs(2, 5, 43);
  EXPECT_THROW(minibatch_kmeans(blobs.points, blobs.weights, blobs.dims, 0),
               util::InvalidArgument);
  EXPECT_THROW(
      minibatch_kmeans(blobs.points, blobs.weights, blobs.dims,
                       static_cast<int>(blobs.points.size()) + 1),
      util::InvalidArgument);
  std::vector<double> bad = blobs.weights;
  bad[0] = 0.0;
  EXPECT_THROW(minibatch_kmeans(blobs.points, bad, blobs.dims, 2),
               util::InvalidArgument);
  std::vector<double> short_weights(blobs.points.size() - 1, 1.0);
  EXPECT_THROW(minibatch_kmeans(blobs.points, short_weights, blobs.dims, 2),
               util::InvalidArgument);
  // Feature ids at or above `dims` are out of range.
  EXPECT_THROW(minibatch_kmeans(blobs.points, blobs.weights, 4, 2),
               util::InvalidArgument);
}

TEST(MiniBatchKMeans, WeightsShiftTheCenters) {
  // Two distinct points; k = 1. The single center must sit at the weighted
  // mean, far closer to the heavy point.
  std::vector<kernel::SparseVector> points(2);
  points[0].items = {{0, 1.0}};
  points[1].items = {{1, 1.0}};
  const std::vector<double> weights = {99.0, 1.0};
  const auto result = minibatch_kmeans(points, weights, 2, 1);
  EXPECT_GT(result.centers(0, 0), 0.9);
  EXPECT_LT(result.centers(0, 1), 0.1);
}

}  // namespace
}  // namespace cwgl::cluster

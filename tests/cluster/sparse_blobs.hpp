#pragma once

// Shared corpus generator for the scalable-clustering tests: G groups of
// sparse feature vectors with disjoint dominant feature blocks, small
// off-block noise, L2 normalization, and integer-ish multiplicities — the
// same shape the full-trace pipeline feeds cluster_at_scale (normalized WL
// vectors of distinct shapes, count-weighted).

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "kernel/types.hpp"
#include "util/rng.hpp"

namespace cwgl::cluster::testing {

struct SparseBlobs {
  std::vector<kernel::SparseVector> points;
  std::vector<double> weights;
  std::vector<int> truth;
  std::size_t dims = 0;
};

inline SparseBlobs make_sparse_blobs(int groups, int per_group,
                                     std::uint64_t seed) {
  util::Xoshiro256StarStar rng(seed);
  SparseBlobs out;
  out.dims = static_cast<std::size_t>(groups) * 8;
  for (int g = 0; g < groups; ++g) {
    for (int i = 0; i < per_group; ++i) {
      kernel::SparseVector v;
      for (int j = 0; j < 4; ++j) {
        v.items.emplace_back(g * 8 + j, 1.0 + rng.uniform_real(-0.1, 0.1));
      }
      // A little cross-group noise on one feature of the next block keeps
      // the kernel matrix from being exactly block diagonal.
      const int noise_id = ((g + 1) % groups) * 8 + 4 + (i % 4);
      v.items.emplace_back(noise_id, rng.uniform_real(0.0, 0.15));
      std::sort(v.items.begin(), v.items.end());  // ids must ascend
      const double norm = v.norm();
      for (auto& [id, value] : v.items) value /= norm;
      out.points.push_back(std::move(v));
      out.weights.push_back(static_cast<double>(rng.uniform_u64(1, 6)));
      out.truth.push_back(g);
    }
  }
  return out;
}

}  // namespace cwgl::cluster::testing

#include "cluster/agreement.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"

namespace cwgl::cluster {
namespace {

TEST(Agreement, IdenticalPartitionsScorePerfect) {
  const std::vector<int> a = {0, 0, 1, 1, 2, 2};
  const auto report = measure_agreement(a, a);
  EXPECT_EQ(report.items, 6u);
  EXPECT_EQ(report.clusters_a, 3);
  EXPECT_EQ(report.clusters_b, 3);
  EXPECT_DOUBLE_EQ(report.ari, 1.0);
  EXPECT_DOUBLE_EQ(report.nmi, 1.0);
}

TEST(Agreement, RelabeledPartitionsStillPerfect) {
  const std::vector<int> a = {0, 0, 1, 1, 2, 2};
  const std::vector<int> b = {2, 2, 0, 0, 1, 1};
  const auto report = measure_agreement(a, b);
  EXPECT_DOUBLE_EQ(report.ari, 1.0);
  EXPECT_DOUBLE_EQ(report.nmi, 1.0);
}

TEST(Agreement, DisagreeingPartitionsScoreLow) {
  // b splits every a-cluster in half across its own two clusters —
  // close to independence.
  const std::vector<int> a = {0, 0, 1, 1, 2, 2, 3, 3};
  const std::vector<int> b = {0, 1, 0, 1, 0, 1, 0, 1};
  const auto report = measure_agreement(a, b);
  EXPECT_LT(report.ari, 0.1);
  EXPECT_EQ(report.clusters_a, 4);
  EXPECT_EQ(report.clusters_b, 2);
}

TEST(Agreement, EmptyInputsYieldZeroReport) {
  const std::vector<int> none;
  const auto report = measure_agreement(none, none);
  EXPECT_EQ(report.items, 0u);
  EXPECT_EQ(report.clusters_a, 0);
  EXPECT_EQ(report.clusters_b, 0);
  EXPECT_DOUBLE_EQ(report.ari, 0.0);
  EXPECT_DOUBLE_EQ(report.nmi, 0.0);
}

TEST(Agreement, LengthMismatchThrows) {
  const std::vector<int> a = {0, 1};
  const std::vector<int> b = {0, 1, 2};
  EXPECT_THROW(measure_agreement(a, b), util::InvalidArgument);
}

}  // namespace
}  // namespace cwgl::cluster

// Differential tests for the count-weighted clustering stages against their
// plain counterparts run on the EXPANDED data (each row duplicated `weight`
// times). These are the equivalence claims the shape-interned pipeline rests
// on: weighted spectral embedding == expanded embedding (plus a padded
// eigenvalue 1 per collapsed duplicate), weighted k-means == k-means over
// duplicates, weighted silhouette == expanded silhouette.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "cluster/kmeans.hpp"
#include "cluster/metrics.hpp"
#include "cluster/spectral.hpp"
#include "linalg/matrix.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace cwgl::cluster {
namespace {

/// Expands row i of `data` into `weights[i]` identical rows.
linalg::Matrix expand_rows(const linalg::Matrix& data,
                           const std::vector<std::uint64_t>& weights) {
  std::size_t total = 0;
  for (std::uint64_t w : weights) total += w;
  linalg::Matrix out(total, data.cols());
  std::size_t r = 0;
  for (std::size_t i = 0; i < data.rows(); ++i) {
    for (std::uint64_t copy = 0; copy < weights[i]; ++copy, ++r) {
      for (std::size_t c = 0; c < data.cols(); ++c) out(r, c) = data(i, c);
    }
  }
  return out;
}

/// Expands a similarity (or distance) matrix the same way, on both axes.
linalg::Matrix expand_square(const linalg::Matrix& m,
                             const std::vector<std::uint64_t>& weights) {
  std::vector<std::size_t> owner;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::uint64_t copy = 0; copy < weights[i]; ++copy) owner.push_back(i);
  }
  linalg::Matrix out(owner.size(), owner.size());
  for (std::size_t a = 0; a < owner.size(); ++a) {
    for (std::size_t b = 0; b < owner.size(); ++b) {
      out(a, b) = m(owner[a], owner[b]);
    }
  }
  return out;
}

/// True when two labelings are the same partition (up to cluster renaming).
bool same_partition(const std::vector<int>& a, const std::vector<int>& b) {
  if (a.size() != b.size()) return false;
  std::vector<int> a_to_b(1 + *std::max_element(a.begin(), a.end()), -1);
  std::vector<int> b_to_a(1 + *std::max_element(b.begin(), b.end()), -1);
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a_to_b[a[i]] == -1) a_to_b[a[i]] = b[i];
    if (b_to_a[b[i]] == -1) b_to_a[b[i]] = a[i];
    if (a_to_b[a[i]] != b[i] || b_to_a[b[i]] != a[i]) return false;
  }
  return true;
}

/// Three well-separated blob CENTERS (one row each) plus per-row weights —
/// the collapsed view of a workload with recurring identical rows.
linalg::Matrix blob_rows(std::vector<std::uint64_t>* weights,
                         std::uint64_t seed = 3, std::size_t rows = 9) {
  util::Xoshiro256StarStar rng(seed);
  const double centers[3][2] = {{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}};
  linalg::Matrix data(rows, 2);
  weights->clear();
  for (std::size_t i = 0; i < rows; ++i) {
    const std::size_t b = i % 3;
    data(i, 0) = centers[b][0] + rng.normal(0.0, 0.4);
    data(i, 1) = centers[b][1] + rng.normal(0.0, 0.4);
    weights->push_back(1 + rng.uniform_int(0, 6));
  }
  return data;
}

TEST(KMeansWeighted, MatchesExpandedRunOnSeparatedData) {
  std::vector<std::uint64_t> weights;
  const linalg::Matrix data = blob_rows(&weights);
  const linalg::Matrix expanded = expand_rows(data, weights);
  std::vector<double> w(weights.begin(), weights.end());

  const KMeansResult plain = kmeans(expanded, 3);
  const KMeansResult weighted = kmeans_weighted(data, w, 3);

  // Expand the weighted labels and compare partitions (cluster ids may be
  // permuted between the two runs — the RNG streams differ).
  std::vector<int> weighted_expanded;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    for (std::uint64_t c = 0; c < weights[i]; ++c) {
      weighted_expanded.push_back(weighted.labels[i]);
    }
  }
  EXPECT_TRUE(same_partition(plain.labels, weighted_expanded));

  // Same partition => identical centroids (weighted mean == expanded mean)
  // and identical inertia, up to the cluster-id permutation.
  std::vector<int> perm(3, -1);
  for (std::size_t i = 0; i < weighted_expanded.size(); ++i) {
    perm[weighted_expanded[i]] = plain.labels[i];
  }
  for (int c = 0; c < 3; ++c) {
    ASSERT_GE(perm[c], 0);
    for (std::size_t d = 0; d < 2; ++d) {
      EXPECT_NEAR(weighted.centers(c, d),
                  plain.centers(static_cast<std::size_t>(perm[c]), d), 1e-9);
    }
  }
  EXPECT_NEAR(weighted.inertia, plain.inertia, 1e-9 * (1.0 + plain.inertia));
}

TEST(KMeansWeighted, AllWeightsOneMatchesPlainExactly) {
  std::vector<std::uint64_t> weights;
  const linalg::Matrix data = blob_rows(&weights, 11, 12);
  const std::vector<double> ones(data.rows(), 1.0);
  const KMeansResult weighted = kmeans_weighted(data, ones, 3);
  const KMeansResult plain = kmeans(data, 3);
  EXPECT_TRUE(same_partition(plain.labels, weighted.labels));
  EXPECT_NEAR(weighted.inertia, plain.inertia, 1e-12 * (1.0 + plain.inertia));
}

TEST(KMeansWeighted, RejectsBadWeights) {
  std::vector<std::uint64_t> weights;
  const linalg::Matrix data = blob_rows(&weights);
  EXPECT_THROW(kmeans_weighted(data, std::vector<double>(3, 1.0), 3),
               util::InvalidArgument);
  std::vector<double> zero(data.rows(), 1.0);
  zero[0] = 0.0;
  EXPECT_THROW(kmeans_weighted(data, zero, 3), util::InvalidArgument);
  std::vector<double> nan(data.rows(), 1.0);
  nan[0] = std::nan("");
  EXPECT_THROW(kmeans_weighted(data, nan, 3), util::InvalidArgument);
}

/// Block similarity over `rows` items in 3 groups: 1.0 within, ~0 across,
/// mildly perturbed to keep eigenvalues simple.
linalg::Matrix block_similarity(std::size_t rows) {
  linalg::Matrix s(rows, rows);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < rows; ++j) {
      s(i, j) = (i % 3 == j % 3) ? 1.0 : 0.05;
    }
  }
  return s;
}

TEST(SpectralWeighted, MatchesExpandedRunOnBlockData) {
  const std::size_t n = 9;
  const linalg::Matrix sim = block_similarity(n);
  std::vector<std::uint64_t> weights;
  util::Xoshiro256StarStar rng(5);
  for (std::size_t i = 0; i < n; ++i) {
    weights.push_back(1 + rng.uniform_int(0, 4));
  }
  const linalg::Matrix expanded = expand_square(sim, weights);
  std::vector<double> w(weights.begin(), weights.end());

  const SpectralResult plain = spectral_cluster(expanded, 3);
  const SpectralResult weighted = spectral_cluster_weighted(sim, w, 3);

  std::vector<int> weighted_expanded;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::uint64_t c = 0; c < weights[i]; ++c) {
      weighted_expanded.push_back(weighted.labels[i]);
    }
  }
  EXPECT_TRUE(same_partition(plain.labels, weighted_expanded));

  // Eigenvalue equivalence: the expanded spectrum is the weighted spectrum
  // plus an eigenvalue 1 for every collapsed duplicate row.
  std::size_t total = 0;
  for (std::uint64_t wi : weights) total += wi;
  ASSERT_EQ(plain.eigenvalues.size(), total);
  ASSERT_EQ(weighted.eigenvalues.size(), n);
  std::vector<double> padded = weighted.eigenvalues;
  padded.insert(padded.end(), total - n, 1.0);
  std::sort(padded.begin(), padded.end());
  std::vector<double> reference = plain.eigenvalues;
  std::sort(reference.begin(), reference.end());
  for (std::size_t i = 0; i < total; ++i) {
    EXPECT_NEAR(padded[i], reference[i], 1e-8) << "eigenvalue " << i;
  }
}

TEST(SpectralWeighted, AllWeightsOneMatchesPlain) {
  const linalg::Matrix sim = block_similarity(9);
  const std::vector<double> ones(9, 1.0);
  const SpectralResult weighted = spectral_cluster_weighted(sim, ones, 3);
  const SpectralResult plain = spectral_cluster(sim, 3);
  EXPECT_TRUE(same_partition(plain.labels, weighted.labels));
  ASSERT_EQ(weighted.eigenvalues.size(), plain.eigenvalues.size());
  for (std::size_t i = 0; i < plain.eigenvalues.size(); ++i) {
    EXPECT_NEAR(weighted.eigenvalues[i], plain.eigenvalues[i], 1e-10);
  }
}

TEST(SpectralWeighted, RejectsBadInput) {
  const linalg::Matrix sim = block_similarity(6);
  EXPECT_THROW(spectral_cluster_weighted(sim, std::vector<double>(4, 1.0), 2),
               util::InvalidArgument);
  std::vector<double> negative(6, 1.0);
  negative[2] = -1.0;
  EXPECT_THROW(spectral_cluster_weighted(sim, negative, 2),
               util::InvalidArgument);
}

TEST(SilhouetteWeighted, MatchesExpandedRun) {
  // Distances between 6 items in 2 clear groups.
  const std::size_t n = 6;
  linalg::Matrix dist(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) { dist(i, j) = 0.0; continue; }
      dist(i, j) = (i % 2 == j % 2) ? 0.3 + 0.01 * (i + j) : 2.0;
    }
  }
  const std::vector<int> labels{0, 1, 0, 1, 0, 1};
  std::vector<std::uint64_t> weights{3, 1, 2, 4, 1, 2};
  const linalg::Matrix big = expand_square(dist, weights);
  std::vector<int> big_labels;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::uint64_t c = 0; c < weights[i]; ++c) big_labels.push_back(labels[i]);
  }
  std::vector<double> w(weights.begin(), weights.end());

  const double expanded = silhouette_score(big, big_labels);
  const double weighted = silhouette_score_weighted(dist, w, labels);
  EXPECT_NEAR(weighted, expanded, 1e-12);
}

TEST(SilhouetteWeighted, AllWeightsOneMatchesPlain) {
  linalg::Matrix dist(4, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      dist(i, j) = i == j ? 0.0 : ((i < 2) == (j < 2) ? 0.5 : 3.0);
    }
  }
  const std::vector<int> labels{0, 0, 1, 1};
  const std::vector<double> ones(4, 1.0);
  EXPECT_NEAR(silhouette_score_weighted(dist, ones, labels),
              silhouette_score(dist, labels), 1e-15);
}

}  // namespace
}  // namespace cwgl::cluster

#include "cluster/kmeans.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <set>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace cwgl::cluster {
namespace {

/// Three well-separated Gaussian blobs in 2D.
linalg::Matrix blobs(std::size_t per_blob, std::uint64_t seed,
                     std::vector<int>* truth = nullptr) {
  util::Xoshiro256StarStar rng(seed);
  const double centers[3][2] = {{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}};
  linalg::Matrix data(3 * per_blob, 2);
  for (int b = 0; b < 3; ++b) {
    for (std::size_t i = 0; i < per_blob; ++i) {
      const std::size_t row = b * per_blob + i;
      data(row, 0) = centers[b][0] + rng.normal(0.0, 0.5);
      data(row, 1) = centers[b][1] + rng.normal(0.0, 0.5);
      if (truth) truth->push_back(b);
    }
  }
  return data;
}

TEST(KMeans, RecoversPlantedBlobs) {
  std::vector<int> truth;
  const auto data = blobs(30, 3, &truth);
  const auto result = kmeans(data, 3);
  // Every blob must map to a single distinct cluster.
  for (int b = 0; b < 3; ++b) {
    std::set<int> assigned;
    for (int i = 0; i < 30; ++i) assigned.insert(result.labels[b * 30 + i]);
    EXPECT_EQ(assigned.size(), 1u) << "blob " << b << " split";
  }
  std::set<int> all(result.labels.begin(), result.labels.end());
  EXPECT_EQ(all.size(), 3u);
}

TEST(KMeans, DeterministicForSeed) {
  const auto data = blobs(20, 5);
  KMeansOptions opt;
  opt.seed = 42;
  const auto a = kmeans(data, 3, opt);
  const auto b = kmeans(data, 3, opt);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

TEST(KMeans, LabelsInRange) {
  const auto data = blobs(10, 7);
  const auto result = kmeans(data, 4);
  for (int l : result.labels) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, 4);
  }
}

TEST(KMeans, KEqualsOneGivesGrandMeanInertia) {
  const auto data = blobs(10, 9);
  const auto result = kmeans(data, 1);
  for (int l : result.labels) EXPECT_EQ(l, 0);
  // Center is the grand mean.
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < data.rows(); ++i) {
    mx += data(i, 0);
    my += data(i, 1);
  }
  mx /= static_cast<double>(data.rows());
  my /= static_cast<double>(data.rows());
  EXPECT_NEAR(result.centers(0, 0), mx, 1e-9);
  EXPECT_NEAR(result.centers(0, 1), my, 1e-9);
}

TEST(KMeans, KEqualsNGivesZeroInertia) {
  linalg::Matrix data = linalg::Matrix::from_rows(
      {{0.0, 0.0}, {1.0, 1.0}, {2.0, 2.0}, {5.0, 5.0}});
  const auto result = kmeans(data, 4);
  EXPECT_NEAR(result.inertia, 0.0, 1e-12);
  std::set<int> distinct(result.labels.begin(), result.labels.end());
  EXPECT_EQ(distinct.size(), 4u);
}

TEST(KMeans, MoreClustersNeverIncreaseInertia) {
  const auto data = blobs(15, 11);
  double prev = std::numeric_limits<double>::max();
  for (int k = 1; k <= 5; ++k) {
    const auto result = kmeans(data, k);
    EXPECT_LE(result.inertia, prev + 1e-9) << "k=" << k;
    prev = result.inertia;
  }
}

TEST(KMeans, InvalidKThrows) {
  const auto data = blobs(5, 13);
  EXPECT_THROW(kmeans(data, 0), util::InvalidArgument);
  EXPECT_THROW(kmeans(data, static_cast<int>(data.rows()) + 1),
               util::InvalidArgument);
}

TEST(KMeans, DuplicatePointsHandled) {
  linalg::Matrix data(6, 2);
  for (std::size_t i = 0; i < 6; ++i) {
    data(i, 0) = i < 3 ? 0.0 : 5.0;
    data(i, 1) = 0.0;
  }
  const auto result = kmeans(data, 2);
  EXPECT_EQ(result.labels[0], result.labels[1]);
  EXPECT_EQ(result.labels[3], result.labels[4]);
  EXPECT_NE(result.labels[0], result.labels[3]);
}

}  // namespace
}  // namespace cwgl::cluster

#include "cluster/spectral.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "cluster/metrics.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace cwgl::cluster {
namespace {

/// Block-structured similarity: `blocks` groups with high in-block and low
/// cross-block similarity, plus mild noise.
linalg::Matrix block_similarity(int blocks, int per_block, std::uint64_t seed,
                                std::vector<int>* truth = nullptr,
                                double in = 0.9, double out = 0.05) {
  util::Xoshiro256StarStar rng(seed);
  const int n = blocks * per_block;
  linalg::Matrix w(n, n);
  for (int i = 0; i < n; ++i) {
    if (truth) truth->push_back(i / per_block);
    for (int j = 0; j < n; ++j) {
      const bool same = (i / per_block) == (j / per_block);
      const double base = i == j ? 1.0 : (same ? in : out);
      w(i, j) = std::clamp(base + rng.uniform_real(-0.02, 0.02), 0.0, 1.0);
    }
  }
  // Symmetrize the noise.
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const double v = 0.5 * (w(i, j) + w(j, i));
      w(i, j) = v;
      w(j, i) = v;
    }
  }
  return w;
}

TEST(Spectral, RecoversPlantedBlocks) {
  std::vector<int> truth;
  const auto w = block_similarity(3, 12, 5, &truth);
  const auto result = spectral_cluster(w, 3);
  EXPECT_GT(adjusted_rand_index(result.labels, truth), 0.99);
}

TEST(Spectral, FiveGroupsLikeThePaper) {
  std::vector<int> truth;
  const auto w = block_similarity(5, 10, 7, &truth);
  const auto result = spectral_cluster(w, 5);
  EXPECT_GT(adjusted_rand_index(result.labels, truth), 0.95);
}

TEST(Spectral, DeterministicForSeed) {
  const auto w = block_similarity(3, 8, 9);
  SpectralOptions opt;
  opt.kmeans.seed = 17;
  const auto a = spectral_cluster(w, 3, opt);
  const auto b = spectral_cluster(w, 3, opt);
  EXPECT_EQ(a.labels, b.labels);
}

TEST(Spectral, EigenvaluesAscendingAndNearZeroFirst) {
  const auto w = block_similarity(3, 10, 11);
  const auto result = spectral_cluster(w, 3);
  ASSERT_FALSE(result.eigenvalues.empty());
  // L_sym of a (nearly) connected graph: smallest eigenvalue ~ 0.
  EXPECT_NEAR(result.eigenvalues.front(), 0.0, 0.05);
  for (std::size_t i = 1; i < result.eigenvalues.size(); ++i) {
    EXPECT_LE(result.eigenvalues[i - 1], result.eigenvalues[i] + 1e-12);
  }
}

TEST(Spectral, EigengapDetectsBlockCount) {
  // With k disconnected-ish blocks, L_sym has ~k near-zero eigenvalues and
  // a gap after them.
  const auto w = block_similarity(4, 10, 13, nullptr, 0.9, 0.01);
  const auto result = spectral_cluster(w, 4);
  EXPECT_EQ(eigengap_k(result.eigenvalues, 10), 4);
}

TEST(Spectral, EmbeddingRowsUnitNorm) {
  const auto w = block_similarity(3, 6, 15);
  const auto result = spectral_cluster(w, 3);
  for (std::size_t i = 0; i < result.embedding.rows(); ++i) {
    double norm = 0.0;
    for (std::size_t c = 0; c < result.embedding.cols(); ++c) {
      norm += result.embedding(i, c) * result.embedding(i, c);
    }
    EXPECT_NEAR(norm, 1.0, 1e-9);
  }
}

TEST(Spectral, LabelsWithinRange) {
  const auto w = block_similarity(2, 5, 19);
  const auto result = spectral_cluster(w, 2);
  for (int l : result.labels) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, 2);
  }
}

TEST(Spectral, NonSquareThrows) {
  EXPECT_THROW(spectral_cluster(linalg::Matrix(3, 4), 2), util::InvalidArgument);
}

TEST(Spectral, BadKThrows) {
  const auto w = block_similarity(2, 3, 21);
  EXPECT_THROW(spectral_cluster(w, 0), util::InvalidArgument);
  EXPECT_THROW(spectral_cluster(w, 7), util::InvalidArgument);
}

TEST(Spectral, NegativeSimilaritiesClamped) {
  linalg::Matrix w = linalg::Matrix::from_rows(
      {{1.0, -0.5, 0.8}, {-0.5, 1.0, 0.7}, {0.8, 0.7, 1.0}});
  const auto result = spectral_cluster(w, 2);  // must not throw
  EXPECT_EQ(result.labels.size(), 3u);
}

TEST(Spectral, PartialEigensolverRecoversBlocksToo) {
  std::vector<int> truth;
  const auto w = block_similarity(4, 20, 23, &truth);  // n = 80
  SpectralOptions partial;
  partial.partial_eigen_threshold = 0;  // force the subspace-iteration path
  const auto via_partial = spectral_cluster(w, 4, partial);
  EXPECT_GT(adjusted_rand_index(via_partial.labels, truth), 0.95);
  // And it must agree with the full Jacobi path.
  SpectralOptions full;
  full.partial_eigen_threshold = 1000;
  const auto via_full = spectral_cluster(w, 4, full);
  EXPECT_GT(adjusted_rand_index(via_partial.labels, via_full.labels), 0.95);
  // Partial mode reports exactly k eigenvalues.
  EXPECT_EQ(via_partial.eigenvalues.size(), 4u);
  EXPECT_EQ(via_full.eigenvalues.size(), 80u);
}

TEST(EigengapK, TrivialSpectra) {
  const std::vector<double> one{0.0};
  EXPECT_EQ(eigengap_k(one, 5), 1);
  const std::vector<double> clear_gap{0.0, 0.01, 0.02, 0.9, 0.95};
  EXPECT_EQ(eigengap_k(clear_gap, 4), 3);
}

}  // namespace
}  // namespace cwgl::cluster

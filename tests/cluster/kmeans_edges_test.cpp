#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "cluster/kmeans.hpp"
#include "cluster/metrics.hpp"
#include "util/error.hpp"

namespace cwgl::cluster {
namespace {

TEST(KMeansWeightedEdges, SingleClusterIsWeightedMean) {
  linalg::Matrix data = linalg::Matrix::from_rows(
      {{0.0, 0.0}, {4.0, 0.0}, {0.0, 8.0}});
  const std::vector<double> weights = {1.0, 2.0, 1.0};
  const auto result = kmeans_weighted(data, weights, 1);
  for (int l : result.labels) EXPECT_EQ(l, 0);
  // Weighted mean: x = (0 + 2*4 + 0)/4 = 2, y = (0 + 0 + 8)/4 = 2.
  EXPECT_NEAR(result.centers(0, 0), 2.0, 1e-9);
  EXPECT_NEAR(result.centers(0, 1), 2.0, 1e-9);
}

TEST(KMeansWeightedEdges, AllZeroWeightsThrow) {
  linalg::Matrix data = linalg::Matrix::from_rows({{0.0}, {1.0}, {2.0}});
  const std::vector<double> zeros = {0.0, 0.0, 0.0};
  EXPECT_THROW(kmeans_weighted(data, zeros, 2), util::InvalidArgument);
}

TEST(KMeansWeightedEdges, NegativeAndNonFiniteWeightsThrow) {
  linalg::Matrix data = linalg::Matrix::from_rows({{0.0}, {1.0}, {2.0}});
  const std::vector<double> negative = {1.0, -1.0, 1.0};
  EXPECT_THROW(kmeans_weighted(data, negative, 2), util::InvalidArgument);
  const std::vector<double> inf = {
      1.0, std::numeric_limits<double>::infinity(), 1.0};
  EXPECT_THROW(kmeans_weighted(data, inf, 2), util::InvalidArgument);
}

TEST(KMeansWeightedEdges, KAboveDistinctPointsStaysBounded) {
  // Six rows but only two distinct locations: with k = 4 at least two
  // clusters can never separate anything, and the empty-cluster re-seeding
  // has nowhere better to put them. The run must still terminate with
  // in-range labels, zero-distance inertia, and the duplicates co-assigned.
  linalg::Matrix data(6, 2);
  for (std::size_t i = 0; i < 6; ++i) {
    data(i, 0) = i < 3 ? 0.0 : 5.0;
    data(i, 1) = 0.0;
  }
  const std::vector<double> weights = {1.0, 1.0, 1.0, 2.0, 2.0, 2.0};
  const auto result = kmeans_weighted(data, weights, 4);
  for (int l : result.labels) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, 4);
  }
  EXPECT_NEAR(result.inertia, 0.0, 1e-12);
  EXPECT_NE(result.labels[0], result.labels[3]);
}

TEST(KMeansWeightedEdges, DeterministicAcrossRuns) {
  linalg::Matrix data(40, 2);
  for (std::size_t i = 0; i < 40; ++i) {
    data(i, 0) = static_cast<double>(i % 7);
    data(i, 1) = static_cast<double>((i * 13) % 5);
  }
  std::vector<double> weights(40);
  for (std::size_t i = 0; i < 40; ++i) {
    weights[i] = 1.0 + static_cast<double>(i % 3);
  }
  KMeansOptions opt;
  opt.seed = 977;
  const auto a = kmeans_weighted(data, weights, 4, opt);
  const auto b = kmeans_weighted(data, weights, 4, opt);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_DOUBLE_EQ(a.inertia, b.inertia);

  KMeansOptions other = opt;
  other.seed = 978;
  const auto c = kmeans_weighted(data, weights, 4, other);
  // A different seed is allowed to find the same partition, but the
  // restart-stream must at minimum be reproducible per seed.
  const auto d = kmeans_weighted(data, weights, 4, other);
  EXPECT_EQ(c.labels, d.labels);
}

linalg::Matrix pair_distances() {
  // Four points on a line: {0, 1} close together, {10, 11} close together.
  const double pos[4] = {0.0, 1.0, 10.0, 11.0};
  linalg::Matrix d(4, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      d(i, j) = pos[i] > pos[j] ? pos[i] - pos[j] : pos[j] - pos[i];
    }
  }
  return d;
}

TEST(SilhouetteWeightedEdges, SingleClusterScoresZero) {
  const auto d = pair_distances();
  const std::vector<double> weights = {1.0, 2.0, 3.0, 4.0};
  const std::vector<int> labels = {0, 0, 0, 0};
  EXPECT_DOUBLE_EQ(silhouette_score_weighted(d, weights, labels), 0.0);
}

TEST(SilhouetteWeightedEdges, AllZeroWeightsThrow) {
  const auto d = pair_distances();
  const std::vector<double> zeros = {0.0, 0.0, 0.0, 0.0};
  const std::vector<int> labels = {0, 0, 1, 1};
  EXPECT_THROW(silhouette_score_weighted(d, zeros, labels),
               util::InvalidArgument);
}

TEST(SilhouetteWeightedEdges, WellSeparatedPairsScoreHigh) {
  const auto d = pair_distances();
  const std::vector<double> weights = {2.0, 2.0, 2.0, 2.0};
  const std::vector<int> labels = {0, 0, 1, 1};
  const double s = silhouette_score_weighted(d, weights, labels);
  EXPECT_GT(s, 0.85);
  EXPECT_LE(s, 1.0);
}

TEST(SilhouetteWeightedEdges, SingletonWeightConventionScoresZero) {
  // Weighted population 1 in each cluster: the singleton convention gives
  // every point silhouette 0, hence a 0 mean.
  const auto d = pair_distances();
  const std::vector<double> weights = {1.0, 1.0, 1.0, 1.0};
  const std::vector<int> labels = {0, 1, 2, 3};
  EXPECT_DOUBLE_EQ(silhouette_score_weighted(d, weights, labels), 0.0);
}

}  // namespace
}  // namespace cwgl::cluster

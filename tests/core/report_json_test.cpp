#include "core/report_json.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "trace/generator.hpp"

namespace cwgl::core {
namespace {

/// Structural JSON validator: balanced braces/brackets outside strings,
/// no trailing commas, double-quoted keys. Not a full parser, but catches
/// every class of emission bug the writer could realistically produce.
bool looks_like_valid_json(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  char prev = 0;
  for (char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      prev = c;
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{':
      case '[': ++depth; break;
      case '}':
      case ']':
        if (depth == 0 || prev == ',') return false;
        --depth;
        break;
      case ',':
        if (prev == ',' || prev == '{' || prev == '[') return false;
        break;
      default: break;
    }
    if (!std::isspace(static_cast<unsigned char>(c))) prev = c;
  }
  return depth == 0 && !in_string;
}

PipelineResult run_pipeline() {
  trace::GeneratorConfig cfg;
  cfg.seed = 99;
  cfg.num_jobs = 800;
  cfg.emit_instances = false;
  const auto data = trace::TraceGenerator(cfg).generate();
  PipelineConfig pipe;
  pipe.sample_size = 25;
  return CharacterizationPipeline(pipe).run(data);
}

TEST(ReportJson, FullPipelineResultIsValidJson) {
  const auto result = run_pipeline();
  std::ostringstream out;
  write_json(out, result);
  const std::string text = out.str();
  EXPECT_TRUE(looks_like_valid_json(text)) << text.substr(0, 200);
  // Every figure key present.
  for (const char* key : {"\"census\"", "\"fig3\"", "\"fig4\"", "\"fig5\"",
                          "\"fig6\"", "\"patterns\"", "\"fig7\"", "\"fig9\""}) {
    EXPECT_NE(text.find(key), std::string::npos) << key;
  }
}

TEST(ReportJson, SimilarityMatrixDimensions) {
  const auto result = run_pipeline();
  std::ostringstream out;
  write_json(out, result.similarity);
  const std::string text = out.str();
  EXPECT_TRUE(looks_like_valid_json(text));
  // 25 job names → 25 rows in "matrix".
  std::size_t rows = 0;
  for (std::size_t pos = text.find("[["); pos != std::string::npos;) {
    ++rows;
    pos = text.find("],[", pos + 1);
    if (pos == std::string::npos) break;
  }
  EXPECT_GE(text.find("\"matrix\""), 0u);
  EXPECT_NE(text.find("\"jobs\""), std::string::npos);
}

TEST(ReportJson, EachReportSerializesIndividually) {
  const auto result = run_pipeline();
  const auto check = [](auto&& writer) {
    std::ostringstream out;
    writer(out);
    EXPECT_TRUE(looks_like_valid_json(out.str())) << out.str().substr(0, 120);
    EXPECT_FALSE(out.str().empty());
  };
  check([&](std::ostream& o) { write_json(o, result.census); });
  check([&](std::ostream& o) { write_json(o, result.conflation); });
  check([&](std::ostream& o) { write_json(o, result.structure_before); });
  check([&](std::ostream& o) { write_json(o, result.task_types); });
  check([&](std::ostream& o) { write_json(o, result.patterns); });
  check([&](std::ostream& o) { write_json(o, result.clustering); });
  check([&](std::ostream& o) {
    write_json(o, TopologyCensus::compute(result.sample));
  });
  check([&](std::ostream& o) {
    write_json(o, ResourceUsageReport::compute(result.sample));
  });
}

TEST(ReportJson, EmptyReportsStillValid) {
  std::ostringstream out;
  write_json(out, TraceCensus{});
  EXPECT_TRUE(looks_like_valid_json(out.str()));
  std::ostringstream out2;
  write_json(out2, PatternCensus{});
  EXPECT_TRUE(looks_like_valid_json(out2.str()));
}

}  // namespace
}  // namespace cwgl::core

#include "core/ingest.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/pipeline.hpp"
#include "trace/generator.hpp"
#include "trace/io.hpp"
#include "util/diagnostics.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace cwgl::core {
namespace {

trace::Trace make_trace(std::size_t jobs, std::uint64_t seed = 42) {
  trace::GeneratorConfig cfg;
  cfg.num_jobs = jobs;
  cfg.seed = seed;
  cfg.emit_instances = false;
  return trace::TraceGenerator(cfg).generate();
}

std::string task_csv(const trace::Trace& data) {
  std::ostringstream out;
  trace::write_batch_task_csv(out, data.tasks);
  return out.str();
}

void expect_same_jobs(const std::vector<JobDag>& a,
                      const std::vector<JobDag>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].job_name, b[i].job_name);
    EXPECT_EQ(a[i].size(), b[i].size());
    EXPECT_EQ(a[i].dag.edges(), b[i].dag.edges());
    EXPECT_EQ(a[i].type_labels(), b[i].type_labels());
  }
}

TEST(StreamDagJobs, SerialMatchesInMemoryBuild) {
  const trace::Trace data = make_trace(400);
  const auto expected = build_all_dag_jobs(data, trace::SamplingCriteria{});
  std::istringstream in(task_csv(data));
  IngestStats stats;
  const auto streamed = stream_dag_jobs(in, {}, nullptr, &stats);
  expect_same_jobs(streamed, expected);
  EXPECT_EQ(stats.dags, streamed.size());
  EXPECT_EQ(stats.eligible, streamed.size());
  EXPECT_EQ(stats.stream.rows, data.tasks.size());
  EXPECT_EQ(stats.stream.malformed, 0u);
  EXPECT_EQ(stats.stream.fragmented, 0u);
}

TEST(StreamDagJobs, PooledMatchesSerialIncludingOrder) {
  const trace::Trace data = make_trace(600, 7);
  const std::string csv = task_csv(data);

  std::istringstream serial_in(csv);
  IngestStats serial_stats;
  const auto serial = stream_dag_jobs(serial_in, {}, nullptr, &serial_stats);

  util::ThreadPool pool(4);
  // Tiny batches so many queue hand-offs (and reorderings) actually happen.
  IngestOptions options;
  options.batch_jobs = 3;
  options.queue_capacity = 2;
  std::istringstream pooled_in(csv);
  IngestStats pooled_stats;
  const auto pooled = stream_dag_jobs(pooled_in, options, &pool, &pooled_stats);

  expect_same_jobs(pooled, serial);
  EXPECT_EQ(pooled_stats.eligible, serial_stats.eligible);
  EXPECT_EQ(pooled_stats.dags, serial_stats.dags);
  EXPECT_EQ(pooled_stats.stream.rows, serial_stats.stream.rows);
  EXPECT_EQ(pooled_stats.stream.jobs, serial_stats.stream.jobs);
}

TEST(StreamDagJobs, CriteriaAreApplied) {
  const trace::Trace data = make_trace(300);
  trace::SamplingCriteria criteria;
  criteria.min_tasks = 4;
  const auto expected = build_all_dag_jobs(data, criteria);
  std::istringstream in(task_csv(data));
  IngestOptions options;
  options.criteria = criteria;
  const auto streamed = stream_dag_jobs(in, options);
  expect_same_jobs(streamed, expected);
}

TEST(StreamDagJobs, MalformedRowsCountedNotFatal) {
  std::stringstream in;
  in << "M1,1,j_1,1,Terminated,10,20,100.00,0.50\n";
  in << "garbage\n";
  in << "R2_1,1,j_1,1,Terminated,30,40,100.00,0.50\n";
  IngestStats stats;
  const auto dags = stream_dag_jobs(in, {}, nullptr, &stats);
  EXPECT_EQ(stats.stream.malformed, 1u);
  EXPECT_EQ(stats.stream.rows, 2u);
  ASSERT_EQ(dags.size(), 1u);
  EXPECT_EQ(dags[0].job_name, "j_1");
}

TEST(StreamDagJobs, StrictParseErrorPropagatesFromPooledRun) {
  std::string csv = task_csv(make_trace(50));
  csv += "\"unterminated";  // scanner throws at end of stream (strict mode)
  util::ThreadPool pool(4);
  std::istringstream in(csv);
  IngestOptions options;
  options.strict = true;
  EXPECT_THROW(stream_dag_jobs(in, options, &pool), util::ParseError);
}

TEST(StreamDagJobs, LenientQuarantinesUnterminatedQuote) {
  const trace::Trace data = make_trace(50);
  std::string csv = task_csv(data);
  csv += "\"unterminated";  // damaged tail record
  util::Diagnostics diagnostics;
  IngestOptions options;
  options.diagnostics = &diagnostics;
  util::ThreadPool pool(4);
  std::istringstream in(csv);
  IngestStats stats;
  const auto dags = stream_dag_jobs(in, options, &pool, &stats);
  // Every intact job still comes through; the damage is counted, not fatal.
  std::istringstream clean_in(task_csv(data));
  const auto clean = stream_dag_jobs(clean_in, {});
  expect_same_jobs(dags, clean);
  EXPECT_EQ(stats.stream.malformed, 1u);
  EXPECT_EQ(diagnostics.count_of("csv", "unterminated-quote"), 1u);
}

TEST(StreamDagJobs, StrictEscalatesCorruptJobsButNotFiltering) {
  // j_bad's second task depends on index 9, which does not exist.
  std::stringstream corrupt;
  corrupt << "M1,1,j_bad,1,Terminated,10,20,100.00,0.50\n";
  corrupt << "R2_9,1,j_bad,1,Terminated,30,40,100.00,0.50\n";
  IngestOptions strict;
  strict.strict = true;
  EXPECT_THROW(stream_dag_jobs(corrupt, strict), util::GraphError);

  // A non-DAG task name is routine filtering, not corruption: strict mode
  // skips it exactly like lenient mode does. (require_dag is disabled so
  // the job reaches the DAG builder instead of being filtered earlier.)
  std::stringstream independent;
  independent << "task_xyz,1,j_ind,1,Terminated,10,20,100.00,0.50\n";
  independent << "task_abc,1,j_ind,1,Terminated,10,20,100.00,0.50\n";
  IngestOptions permissive = strict;
  permissive.criteria.require_dag = false;
  IngestStats stats;
  const auto dags = stream_dag_jobs(independent, permissive, nullptr, &stats);
  EXPECT_TRUE(dags.empty());
  EXPECT_EQ(stats.eligible, 1u);
}

TEST(StreamDagJobs, LenientCountsCorruptJobsIntoDiagnostics) {
  std::stringstream in;
  // Cyclic job: M1 depends on 2, R2 depends on 1.
  in << "M1_2,1,j_cycle,1,Terminated,10,20,100.00,0.50\n";
  in << "R2_1,1,j_cycle,1,Terminated,30,40,100.00,0.50\n";
  // Healthy job after the corrupt one must still be built.
  in << "M1,1,j_ok,1,Terminated,10,20,100.00,0.50\n";
  in << "R2_1,1,j_ok,1,Terminated,30,40,100.00,0.50\n";
  util::Diagnostics diagnostics;
  IngestOptions options;
  options.diagnostics = &diagnostics;
  IngestStats stats;
  const auto dags = stream_dag_jobs(in, options, nullptr, &stats);
  ASSERT_EQ(dags.size(), 1u);
  EXPECT_EQ(dags[0].job_name, "j_ok");
  EXPECT_EQ(diagnostics.count_of("dag", "cycle"), 1u);
}

TEST(StreamDagJobs, PooledStrictCyclicJobDoesNotDeadlock) {
  // Regression for the shutdown ordering: a worker that throws mid-stream
  // must close the queue so the reader's blocked push is released. With a
  // tiny queue and batch size the reader is guaranteed to be pushing when
  // the worker dies; before the close-on-throw fix this test hung.
  std::ostringstream csv;
  csv << "M1_2,1,j_cycle,1,Terminated,10,20,100.00,0.50\n";
  csv << "R2_1,1,j_cycle,1,Terminated,30,40,100.00,0.50\n";
  for (int j = 0; j < 2000; ++j) {
    csv << "M1,1,j_f" << j << ",1,Terminated,10,20,100.00,0.50\n";
    csv << "R2_1,1,j_f" << j << ",1,Terminated,30,40,100.00,0.50\n";
  }
  util::ThreadPool pool(4);
  IngestOptions options;
  options.strict = true;
  options.batch_jobs = 1;
  options.queue_capacity = 1;
  std::istringstream in(csv.str());
  EXPECT_THROW(stream_dag_jobs(in, options, &pool), util::GraphError);
}

TEST(StreamDagJobs, EmptyInput) {
  std::istringstream in("");
  IngestStats stats;
  util::ThreadPool pool(2);
  const auto dags = stream_dag_jobs(in, {}, &pool, &stats);
  EXPECT_TRUE(dags.empty());
  EXPECT_EQ(stats.stream.rows, 0u);
  EXPECT_EQ(stats.dags, 0u);
}

TEST(Pipeline, BuildAllDagsStreamingOverloadAgrees) {
  const trace::Trace data = make_trace(300, 11);
  PipelineConfig cfg;
  const CharacterizationPipeline pipeline(cfg);
  const auto expected = build_all_dag_jobs(data, cfg.criteria);
  util::ThreadPool pool(3);
  std::istringstream in(task_csv(data));
  IngestStats stats;
  const auto streamed = pipeline.build_all_dags(in, &pool, &stats);
  expect_same_jobs(streamed, expected);
  EXPECT_EQ(stats.dags, expected.size());
}

}  // namespace
}  // namespace cwgl::core

#include "core/job_dag.hpp"

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"

namespace cwgl::core {
namespace {

trace::TaskRecord task(std::string name, int instances = 2,
                       std::int64_t start = 100, std::int64_t end = 200) {
  trace::TaskRecord t;
  t.task_name = std::move(name);
  t.job_name = "j_1";
  t.instance_num = instances;
  t.status = trace::Status::Terminated;
  t.start_time = start;
  t.end_time = end;
  t.plan_cpu = 100.0;
  t.plan_mem = 0.5;
  return t;
}

TEST(BuildJobDag, PaperExampleJob1001388) {
  // M1, M3, R2_1, R4_3, R5_4_3_2_1 (Fig. 8a).
  const std::vector<trace::TaskRecord> tasks{
      task("M1"), task("M3"), task("R2_1"), task("R4_3"), task("R5_4_3_2_1")};
  const auto job = build_job_dag("j_1001388", tasks);
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(job->size(), 5);
  // Vertices follow record order: 0=M1, 1=M3, 2=R2, 3=R4, 4=R5.
  EXPECT_TRUE(job->dag.has_edge(0, 2));  // R2 <- M1
  EXPECT_TRUE(job->dag.has_edge(1, 3));  // R4 <- M3
  EXPECT_TRUE(job->dag.has_edge(2, 4));  // R5 <- R2
  EXPECT_TRUE(job->dag.has_edge(3, 4));  // R5 <- R4
  EXPECT_TRUE(job->dag.has_edge(0, 4));  // R5 <- M1 (explicit transitive dep)
  EXPECT_TRUE(job->dag.has_edge(1, 4));  // R5 <- M3
  EXPECT_EQ(graph::critical_path_length(job->dag), 3);
  EXPECT_EQ(job->tasks[0].type, 'M');
  EXPECT_EQ(job->tasks[2].type, 'R');
  EXPECT_EQ(job->tasks[4].index, 5);
}

TEST(BuildJobDag, MetadataCarriedThrough) {
  const std::vector<trace::TaskRecord> tasks{task("M1", 7, 50, 90),
                                             task("R2_1", 3, 95, 120)};
  const auto job = build_job_dag("j_2", tasks);
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(job->tasks[0].instance_num, 7);
  EXPECT_EQ(job->tasks[0].start_time, 50);
  EXPECT_EQ(job->tasks[0].duration(), 40);
  EXPECT_EQ(job->tasks[1].duration(), 25);
  EXPECT_DOUBLE_EQ(job->tasks[0].plan_cpu, 100.0);
}

TEST(BuildJobDag, NonDagNameRejected) {
  std::vector<BuildIssue> issues;
  const std::vector<trace::TaskRecord> tasks{task("M1"), task("task_opaque")};
  EXPECT_FALSE(build_job_dag("j_3", tasks, &issues).has_value());
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues[0].message.find("task_opaque"), std::string::npos);
}

TEST(BuildJobDag, MissingDependencyRejected) {
  std::vector<BuildIssue> issues;
  const std::vector<trace::TaskRecord> tasks{task("M1"), task("R3_2")};
  EXPECT_FALSE(build_job_dag("j_4", tasks, &issues).has_value());
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues[0].message.find("missing index"), std::string::npos);
}

TEST(BuildJobDag, DuplicateIndexRejected) {
  std::vector<BuildIssue> issues;
  const std::vector<trace::TaskRecord> tasks{task("M1"), task("R1")};
  EXPECT_FALSE(build_job_dag("j_5", tasks, &issues).has_value());
  EXPECT_EQ(issues.size(), 1u);
}

TEST(BuildJobDag, CyclicNamesRejected) {
  std::vector<BuildIssue> issues;
  const std::vector<trace::TaskRecord> tasks{task("M1_2"), task("R2_1")};
  EXPECT_FALSE(build_job_dag("j_6", tasks, &issues).has_value());
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues[0].message.find("cycle"), std::string::npos);
}

TEST(BuildJobDag, EmptyJobRejected) {
  EXPECT_FALSE(build_job_dag("j_7", {}).has_value());
}

TEST(BuildJobDag, IssuesOptional) {
  const std::vector<trace::TaskRecord> tasks{task("task_x")};
  EXPECT_FALSE(build_job_dag("j_8", tasks, nullptr).has_value());
}

TEST(JobDag, TypeLabelsAndNames) {
  const std::vector<trace::TaskRecord> tasks{task("M1"), task("J2_1"),
                                             task("R3_2")};
  const auto job = build_job_dag("j_9", tasks);
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(job->type_labels(), (std::vector<int>{'M', 'J', 'R'}));
  EXPECT_EQ(job->vertex_names(),
            (std::vector<std::string>{"M1", "J2_1", "R3_2"}));
  const auto labeled = job->to_labeled();
  EXPECT_EQ(labeled.graph, job->dag);
  EXPECT_EQ(labeled.labels, job->type_labels());
}

TEST(ConflateJob, MergesCloneSiblingsAndAggregates) {
  // Four M clones feeding one R.
  const std::vector<trace::TaskRecord> tasks{
      task("M1", 2, 100, 150), task("M2", 3, 105, 160), task("M3", 4, 110, 170),
      task("M4", 5, 100, 140), task("R5_4_3_2_1", 6, 175, 200)};
  const auto job = build_job_dag("j_10", tasks);
  ASSERT_TRUE(job.has_value());
  const JobDag merged = conflate_job(*job);
  ASSERT_EQ(merged.size(), 2);
  EXPECT_EQ(merged.tasks[0].type, 'M');
  EXPECT_EQ(merged.tasks[0].instance_num, 2 + 3 + 4 + 5);
  EXPECT_DOUBLE_EQ(merged.tasks[0].plan_cpu, 400.0);
  EXPECT_EQ(merged.tasks[0].start_time, 100);  // earliest
  EXPECT_EQ(merged.tasks[0].end_time, 170);    // latest
  EXPECT_EQ(merged.tasks[1].type, 'R');
  EXPECT_EQ(merged.tasks[1].instance_num, 6);
}

TEST(ConflateJob, ChainUnchanged) {
  const std::vector<trace::TaskRecord> tasks{task("M1"), task("R2_1"),
                                             task("R3_2")};
  const auto job = build_job_dag("j_11", tasks);
  ASSERT_TRUE(job.has_value());
  const JobDag merged = conflate_job(*job);
  EXPECT_EQ(merged.size(), 3);
  EXPECT_EQ(merged.dag, job->dag);
}

TEST(ConflateJob, TypeDistinctionPreserved) {
  // Two parents of the sink with different types must not merge.
  const std::vector<trace::TaskRecord> tasks{task("M1"), task("J2"),
                                             task("R3_2_1")};
  const auto job = build_job_dag("j_12", tasks);
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(conflate_job(*job).size(), 3);
}

}  // namespace
}  // namespace cwgl::core

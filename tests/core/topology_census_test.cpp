#include "core/topology_census.hpp"

#include <gtest/gtest.h>

#include "trace/generator.hpp"

namespace cwgl::core {
namespace {

trace::TaskRecord task(std::string name, std::string job) {
  trace::TaskRecord t;
  t.task_name = std::move(name);
  t.job_name = std::move(job);
  t.instance_num = 1;
  t.status = trace::Status::Terminated;
  t.start_time = 100;
  t.end_time = 200;
  t.plan_cpu = 100.0;
  t.plan_mem = 0.5;
  return t;
}

JobDag make_job(const std::vector<std::string>& names, std::string job_name) {
  std::vector<trace::TaskRecord> records;
  for (const auto& n : names) records.push_back(task(n, job_name));
  auto job = build_job_dag(job_name, records);
  EXPECT_TRUE(job.has_value());
  return *job;
}

TEST(TopologyCensus, CountsIsomorphismClasses) {
  std::vector<JobDag> jobs;
  // Three identical 2-chains (different job names and task numbering).
  jobs.push_back(make_job({"M1", "R2_1"}, "j_a"));
  jobs.push_back(make_job({"M2", "R3_2"}, "j_b"));  // same topology, renumbered
  jobs.push_back(make_job({"M1", "R2_1"}, "j_c"));
  // One fan-in.
  jobs.push_back(make_job({"M1", "M2", "R3_2_1"}, "j_d"));

  const auto census = TopologyCensus::compute(jobs);
  EXPECT_EQ(census.total_jobs, 4u);
  EXPECT_EQ(census.distinct_topologies, 2u);
  ASSERT_EQ(census.rows.size(), 2u);
  EXPECT_EQ(census.rows[0].count, 3u);  // the recurring chain
  EXPECT_EQ(census.rows[0].size, 2);
  EXPECT_EQ(census.rows[1].count, 1u);
  EXPECT_DOUBLE_EQ(census.recurring_fraction, 3.0 / 4.0);
}

TEST(TopologyCensus, LabelsDistinguishWhenRequested) {
  std::vector<JobDag> jobs;
  jobs.push_back(make_job({"M1", "R2_1"}, "j_a"));   // M -> R
  jobs.push_back(make_job({"M1", "J2_1"}, "j_b"));   // M -> J, same shape
  const auto labeled = TopologyCensus::compute(jobs, /*use_labels=*/true);
  EXPECT_EQ(labeled.distinct_topologies, 2u);
  const auto unlabeled = TopologyCensus::compute(jobs, /*use_labels=*/false);
  EXPECT_EQ(unlabeled.distinct_topologies, 1u);
}

TEST(TopologyCensus, ExemplarPointsToMemberJob) {
  std::vector<JobDag> jobs;
  jobs.push_back(make_job({"M1", "M2", "R3_2_1"}, "j_a"));
  jobs.push_back(make_job({"M1", "R2_1"}, "j_b"));
  jobs.push_back(make_job({"M1", "R2_1"}, "j_c"));
  const auto census = TopologyCensus::compute(jobs);
  for (const auto& row : census.rows) {
    ASSERT_LT(row.exemplar, jobs.size());
    EXPECT_EQ(jobs[row.exemplar].size(), row.size);
  }
}

TEST(TopologyCensus, EmptyInput) {
  const auto census = TopologyCensus::compute(std::span<const JobDag>{});
  EXPECT_EQ(census.total_jobs, 0u);
  EXPECT_EQ(census.distinct_topologies, 0u);
  EXPECT_DOUBLE_EQ(census.recurring_fraction, 0.0);
}

TEST(TopologyCensus, SmallJobsRecurMoreThanLarge) {
  // The paper's Section IV-C observation, on generated data.
  trace::GeneratorConfig cfg;
  cfg.seed = 77;
  cfg.num_jobs = 2000;
  cfg.emit_instances = false;
  const auto generated = trace::TraceGenerator(cfg).generate_jobs();
  std::vector<JobDag> small, large;
  for (const auto& g : generated) {
    if (!g.is_dag) continue;
    auto job = build_job_dag(g.job_name, g.tasks);
    if (!job) continue;
    (job->size() <= 4 ? small : large).push_back(std::move(*job));
  }
  ASSERT_GT(small.size(), 50u);
  ASSERT_GT(large.size(), 50u);
  const auto small_census = TopologyCensus::compute(small);
  const auto large_census = TopologyCensus::compute(large);
  EXPECT_GT(small_census.recurring_fraction, large_census.recurring_fraction);
}

}  // namespace
}  // namespace cwgl::core

#include "core/baseline.hpp"

#include <gtest/gtest.h>

#include <set>

#include "cluster/metrics.hpp"
#include "util/error.hpp"

namespace cwgl::core {
namespace {

trace::TaskRecord task(std::string name, std::string job, int instances,
                       std::int64_t duration, double cpu) {
  trace::TaskRecord t;
  t.task_name = std::move(name);
  t.job_name = std::move(job);
  t.instance_num = instances;
  t.status = trace::Status::Terminated;
  t.start_time = 100;
  t.end_time = 100 + duration;
  t.plan_cpu = cpu;
  t.plan_mem = 0.5;
  return t;
}

JobDag make_job(std::string name, int instances, std::int64_t duration,
                double cpu, bool heavy_shape) {
  std::vector<trace::TaskRecord> records;
  if (heavy_shape) {
    records.push_back(task("M1", name, instances, duration, cpu));
    records.push_back(task("M2", name, instances, duration, cpu));
    records.push_back(task("M3", name, instances, duration, cpu));
    records.push_back(task("R4_3_2_1", name, instances, duration, cpu));
  } else {
    records.push_back(task("M1", name, instances, duration, cpu));
    records.push_back(task("R2_1", name, instances, duration, cpu));
  }
  auto job = build_job_dag(name, records);
  EXPECT_TRUE(job.has_value());
  return *job;
}

TEST(ResourceFeatures, ShapeAndRawValues) {
  const std::vector<JobDag> jobs{make_job("a", 2, 100, 50.0, false)};
  const auto raw = resource_features(jobs, /*standardize=*/false);
  ASSERT_EQ(raw.rows(), 1u);
  ASSERT_EQ(raw.cols(), 5u);
  EXPECT_DOUBLE_EQ(raw(0, 0), 2.0);            // tasks
  EXPECT_DOUBLE_EQ(raw(0, 1), 2 * 50.0 * 2);   // cpu x instances summed
  EXPECT_DOUBLE_EQ(raw(0, 2), 1.0);            // mem
  EXPECT_DOUBLE_EQ(raw(0, 3), 100.0);          // mean duration
  EXPECT_DOUBLE_EQ(raw(0, 4), 4.0);            // instances
}

TEST(ResourceFeatures, StandardizedColumnsAreZScores) {
  std::vector<JobDag> jobs;
  for (int i = 1; i <= 4; ++i) {
    jobs.push_back(make_job("j" + std::to_string(i), i, 50 * i, 100.0, false));
  }
  const auto z = resource_features(jobs, /*standardize=*/true);
  for (std::size_t c = 0; c < z.cols(); ++c) {
    double sum = 0.0;
    for (std::size_t r = 0; r < z.rows(); ++r) sum += z(r, c);
    EXPECT_NEAR(sum, 0.0, 1e-9) << "column " << c;
  }
}

TEST(ResourceKmeans, SeparatesHeavyFromLightJobs) {
  std::vector<JobDag> jobs;
  for (int i = 0; i < 6; ++i) jobs.push_back(make_job("l" + std::to_string(i), 1, 10, 50.0, false));
  for (int i = 0; i < 4; ++i) jobs.push_back(make_job("h" + std::to_string(i), 50, 500, 200.0, false));
  const auto baseline = resource_kmeans(jobs, 2);
  // Same topology everywhere, so only resources can drive the split.
  for (int i = 1; i < 6; ++i) EXPECT_EQ(baseline.labels[i], baseline.labels[0]);
  for (int i = 7; i < 10; ++i) EXPECT_EQ(baseline.labels[i], baseline.labels[6]);
  EXPECT_NE(baseline.labels[0], baseline.labels[6]);
  // Relabeled by population: light group (6 jobs) must be 0.
  EXPECT_EQ(baseline.labels[0], 0);
}

TEST(ResourceKmeans, BlindToTopology) {
  // Identical resources, different shapes: the baseline cannot separate.
  std::vector<JobDag> jobs;
  for (int i = 0; i < 4; ++i) jobs.push_back(make_job("c" + std::to_string(i), 2, 100, 100.0, false));
  for (int i = 0; i < 4; ++i) jobs.push_back(make_job("t" + std::to_string(i), 1, 100, 100.0, true));
  // heavy_shape has 4 tasks vs 2 and different totals; equalize by using the
  // same per-job totals: give chain jobs double instances (done above:
  // chain 2 tasks x 2 inst == fan 4 tasks x 1 inst) and same cpu/duration.
  const auto baseline = resource_kmeans(jobs, 2);
  // Feature rows still differ in task count, so allow either outcome but
  // verify determinism and valid labels.
  const auto again = resource_kmeans(jobs, 2);
  EXPECT_EQ(baseline.labels, again.labels);
  for (int l : baseline.labels) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, 2);
  }
}

TEST(ResourceKmeans, EmptyInput) {
  const auto baseline = resource_kmeans({}, 3);
  EXPECT_TRUE(baseline.labels.empty());
}

TEST(StructuralDispersion, PerfectGroupingScoresZero) {
  std::vector<JobDag> jobs;
  for (int i = 0; i < 3; ++i) jobs.push_back(make_job("c" + std::to_string(i), 1, 10, 50, false));
  for (int i = 0; i < 3; ++i) jobs.push_back(make_job("f" + std::to_string(i), 1, 10, 50, true));
  const std::vector<int> by_shape{0, 0, 0, 1, 1, 1};
  EXPECT_DOUBLE_EQ(structural_dispersion(jobs, by_shape, /*use_width=*/true), 0.0);
  EXPECT_DOUBLE_EQ(structural_dispersion(jobs, by_shape, /*use_width=*/false), 0.0);
}

TEST(StructuralDispersion, MixedGroupingScoresHigher) {
  std::vector<JobDag> jobs;
  for (int i = 0; i < 3; ++i) jobs.push_back(make_job("c" + std::to_string(i), 1, 10, 50, false));
  for (int i = 0; i < 3; ++i) jobs.push_back(make_job("f" + std::to_string(i), 1, 10, 50, true));
  const std::vector<int> by_shape{0, 0, 0, 1, 1, 1};
  const std::vector<int> mixed{0, 1, 0, 1, 0, 1};
  EXPECT_GT(structural_dispersion(jobs, mixed, true),
            structural_dispersion(jobs, by_shape, true));
}

TEST(StructuralDispersion, Validation) {
  std::vector<JobDag> jobs{make_job("a", 1, 10, 50, false)};
  const std::vector<int> wrong{0, 1};
  EXPECT_THROW(structural_dispersion(jobs, wrong, true), util::InvalidArgument);
  const std::vector<int> negative{-1};
  EXPECT_THROW(structural_dispersion(jobs, negative, true), util::InvalidArgument);
}

}  // namespace
}  // namespace cwgl::core

#include "core/shape_store.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/ingest.hpp"
#include "trace/generator.hpp"
#include "trace/io.hpp"
#include "util/error.hpp"
#include "util/failpoint.hpp"
#include "util/thread_pool.hpp"

namespace cwgl::core {
namespace {

trace::TaskRecord task(std::string name, std::string job) {
  trace::TaskRecord t;
  t.task_name = std::move(name);
  t.job_name = std::move(job);
  t.instance_num = 1;
  t.status = trace::Status::Terminated;
  t.start_time = 100;
  t.end_time = 200;
  t.plan_cpu = 100.0;
  t.plan_mem = 0.5;
  return t;
}

JobDag make_job(const std::vector<std::string>& names, std::string job_name) {
  std::vector<trace::TaskRecord> records;
  for (const auto& n : names) records.push_back(task(n, job_name));
  auto job = build_job_dag(job_name, records);
  EXPECT_TRUE(job.has_value());
  return *job;
}

JobDag chain2(const std::string& name) { return make_job({"M1", "R2_1"}, name); }
JobDag chain3(const std::string& name) {
  return make_job({"M1", "R2_1", "R3_2"}, name);
}
JobDag fan_in(const std::string& name) {
  return make_job({"M1", "M2", "R3_2_1"}, name);
}

TEST(ShapeStore, DeduplicatesIsomorphicJobsAndCountsMultiplicity) {
  ShapeStore store;
  store.intern(chain2("j_a"), 0);
  store.intern(fan_in("j_b"), 1);
  // Same chain topology under renumbered task names: must still dedup.
  store.intern(make_job({"M4", "R9_4"}, "j_c"), 2);
  store.intern(chain2("j_d"), 3);

  const ShapeStore::Stats stats = store.stats();
  EXPECT_EQ(stats.total_jobs, 4u);
  EXPECT_EQ(stats.distinct_shapes, 2u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 2u);

  const ShapeTable table = store.freeze();
  ASSERT_EQ(table.size(), 2u);
  EXPECT_EQ(table.total_jobs, 4u);
  EXPECT_EQ(table.shapes[0].count, 3u);  // the chain, first seen at seq 0
  EXPECT_EQ(table.shapes[1].count, 1u);
  EXPECT_EQ(table.exemplars[0].job_name, "j_a");
  EXPECT_EQ(table.exemplars[1].job_name, "j_b");
}

TEST(ShapeStore, FrozenTableIsInFirstSeenOrderWithDenseIds) {
  ShapeStore store;
  const auto* c3 = store.intern(chain3("j_0"), 0);
  const auto* c2 = store.intern(chain2("j_1"), 1);
  const auto* fi = store.intern(fan_in("j_2"), 2);
  store.intern(chain2("j_3"), 3);

  const ShapeStore::FrozenView view = store.freeze_with_ids();
  ASSERT_EQ(view.table.size(), 3u);
  EXPECT_EQ(view.id_of.at(c3), 0u);
  EXPECT_EQ(view.id_of.at(c2), 1u);
  EXPECT_EQ(view.id_of.at(fi), 2u);
  EXPECT_EQ(view.table.shapes[0].first_seq, 0u);
  EXPECT_EQ(view.table.shapes[1].first_seq, 1u);
  EXPECT_EQ(view.table.shapes[2].first_seq, 2u);
}

TEST(ShapeStore, ExemplarIsTheMinimumSequenceJob) {
  // Intern the same shape with DESCENDING sequence numbers — as a pooled
  // ingest might, when a late batch lands first. The exemplar must end up
  // being the seq-1 job, exactly as a serial pass would have it.
  ShapeStore store;
  store.intern(chain2("late"), 9);
  store.intern(chain2("middle"), 5);
  store.intern(chain2("first"), 1);

  const ShapeTable table = store.freeze();
  ASSERT_EQ(table.size(), 1u);
  EXPECT_EQ(table.shapes[0].first_seq, 1u);
  EXPECT_EQ(table.exemplars[0].job_name, "first");
  EXPECT_EQ(table.shapes[0].count, 3u);
}

TEST(ShapeStore, TableRowsCarryStructuralFeatures) {
  ShapeStore store;
  store.intern(fan_in("j_a"), 0);
  const ShapeTable table = store.freeze();
  ASSERT_EQ(table.size(), 1u);
  EXPECT_EQ(table.shapes[0].size, 3);
  EXPECT_EQ(table.shapes[0].critical_path, 2);
  EXPECT_EQ(table.shapes[0].width, 2);
  EXPECT_EQ(table.counts(), std::vector<std::uint64_t>{1});
  EXPECT_EQ(table.weights(), std::vector<double>{1.0});
}

TEST(ShapeStore, TruncatedHashForcesIsomorphismFallback) {
  // With a 1-bit intern key every shape lands in one of two buckets, so
  // distinct shapes MUST collide: correctness then rests entirely on the
  // exact-isomorphism walk of the collision chain.
  ShapeStore::Options options;
  options.hash_bits = 1;
  options.shards = 1;
  ShapeStore store(options);

  store.intern(chain2("a"), 0);
  store.intern(chain3("b"), 1);
  store.intern(fan_in("c"), 2);
  store.intern(chain2("d"), 3);
  store.intern(chain3("e"), 4);

  const ShapeStore::Stats stats = store.stats();
  EXPECT_EQ(stats.distinct_shapes, 3u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_GT(stats.hash_collisions, 0u);
  EXPECT_GT(stats.isomorphism_probes, 0u);

  const ShapeTable table = store.freeze();
  ASSERT_EQ(table.size(), 3u);
  EXPECT_EQ(table.shapes[0].count, 2u);  // chain2
  EXPECT_EQ(table.shapes[1].count, 2u);  // chain3
  EXPECT_EQ(table.shapes[2].count, 1u);  // fan-in
}

TEST(ShapeStore, FullHashPathKeepsNonIsomorphicShapesApart) {
  // Sanity companion to the truncated test: with the full 64-bit key these
  // shapes do not collide, and no collision chain forms.
  ShapeStore store;
  store.intern(chain2("a"), 0);
  store.intern(chain3("b"), 1);
  store.intern(fan_in("c"), 2);
  EXPECT_EQ(store.stats().hash_collisions, 0u);
  EXPECT_EQ(store.stats().distinct_shapes, 3u);
}

TEST(ShapeStore, ConcurrentInterningOfOneShapeYieldsOneExactEntry) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  ShapeStore store;
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, &ready, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) {}  // maximize overlap
      for (int i = 0; i < kPerThread; ++i) {
        const std::uint64_t seq =
            static_cast<std::uint64_t>(t) * kPerThread + i;
        store.intern(chain2("j_" + std::to_string(seq)), seq);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const ShapeStore::Stats stats = store.stats();
  EXPECT_EQ(stats.total_jobs,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(stats.distinct_shapes, 1u);
  const ShapeTable table = store.freeze();
  ASSERT_EQ(table.size(), 1u);
  EXPECT_EQ(table.shapes[0].count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(table.shapes[0].first_seq, 0u);
  EXPECT_EQ(table.exemplars[0].job_name, "j_0");
}

TEST(ShapeStore, ConcurrentMixedShapesFreezeDeterministically) {
  // Two interleavings of the same job stream across threads must freeze to
  // the same table a serial pass produces.
  const auto build_serial = [] {
    ShapeStore store;
    for (std::uint64_t s = 0; s < 300; ++s) {
      switch (s % 3) {
        case 0: store.intern(chain2("j" + std::to_string(s)), s); break;
        case 1: store.intern(chain3("j" + std::to_string(s)), s); break;
        default: store.intern(fan_in("j" + std::to_string(s)), s); break;
      }
    }
    return store.freeze();
  };
  const ShapeTable expected = build_serial();

  ShapeStore store;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&store, t] {
      // Thread t handles sequences  s ≡ t (mod 4) — disjoint, covering.
      for (std::uint64_t s = static_cast<std::uint64_t>(t); s < 300; s += 4) {
        switch (s % 3) {
          case 0: store.intern(chain2("j" + std::to_string(s)), s); break;
          case 1: store.intern(chain3("j" + std::to_string(s)), s); break;
          default: store.intern(fan_in("j" + std::to_string(s)), s); break;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const ShapeTable actual = store.freeze();

  ASSERT_EQ(actual.size(), expected.size());
  EXPECT_EQ(actual.total_jobs, expected.total_jobs);
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual.shapes[i].shape_key, expected.shapes[i].shape_key);
    EXPECT_EQ(actual.shapes[i].count, expected.shapes[i].count);
    EXPECT_EQ(actual.shapes[i].first_seq, expected.shapes[i].first_seq);
    EXPECT_EQ(actual.exemplars[i].job_name, expected.exemplars[i].job_name);
  }
}

// ---------------------------------------------------------------------------
// stream_shape_jobs: the ingest-layer wiring around the store.
// ---------------------------------------------------------------------------

std::string generated_csv(std::size_t jobs, std::uint64_t seed = 42) {
  trace::GeneratorConfig cfg;
  cfg.num_jobs = jobs;
  cfg.seed = seed;
  cfg.emit_instances = false;
  const trace::Trace data = trace::TraceGenerator(cfg).generate();
  std::ostringstream out;
  trace::write_batch_task_csv(out, data.tasks);
  return out.str();
}

TEST(StreamShapeJobs, MatchesDirectIngestJobForJob) {
  const std::string csv = generated_csv(300);
  std::istringstream direct_in(csv);
  const auto direct = stream_dag_jobs(direct_in, {});

  std::istringstream intern_in(csv);
  const InternedIngest interned = stream_shape_jobs(intern_in, {});

  ASSERT_EQ(interned.shape_of.size(), direct.size());
  EXPECT_EQ(interned.table.total_jobs, direct.size());
  EXPECT_EQ(interned.intern.distinct_shapes, interned.table.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    const std::uint32_t t = interned.shape_of[i];
    ASSERT_LT(t, interned.table.size());
    // Every job's assigned shape row matches its own structure.
    EXPECT_EQ(interned.table.shapes[t].size, direct[i].size());
    EXPECT_EQ(interned.table.exemplars[t].dag.num_edges(),
              direct[i].dag.num_edges());
  }
}

TEST(StreamShapeJobs, PooledMatchesSerialExactly) {
  const std::string csv = generated_csv(400, 7);

  std::istringstream serial_in(csv);
  const InternedIngest serial = stream_shape_jobs(serial_in, {});

  util::ThreadPool pool(4);
  IngestOptions options;
  options.batch_jobs = 3;  // many hand-offs, maximum reordering pressure
  options.queue_capacity = 2;
  std::istringstream pooled_in(csv);
  const InternedIngest pooled = stream_shape_jobs(pooled_in, options, &pool);

  EXPECT_EQ(pooled.shape_of, serial.shape_of);
  ASSERT_EQ(pooled.table.size(), serial.table.size());
  EXPECT_EQ(pooled.table.total_jobs, serial.table.total_jobs);
  for (std::size_t i = 0; i < serial.table.size(); ++i) {
    EXPECT_EQ(pooled.table.shapes[i].shape_key,
              serial.table.shapes[i].shape_key);
    EXPECT_EQ(pooled.table.shapes[i].count, serial.table.shapes[i].count);
    EXPECT_EQ(pooled.table.shapes[i].first_seq,
              serial.table.shapes[i].first_seq);
    EXPECT_EQ(pooled.table.exemplars[i].job_name,
              serial.table.exemplars[i].job_name);
  }
  EXPECT_EQ(pooled.intern.distinct_shapes, serial.intern.distinct_shapes);
  EXPECT_EQ(pooled.intern.hits, serial.intern.hits);
}

#if defined(CWGL_FAILPOINTS_ENABLED)

class ShapeStoreFaultTest : public ::testing::Test {
 protected:
  void TearDown() override { util::failpoint::clear(); }
};

TEST_F(ShapeStoreFaultTest, InjectedInternErrorSurfaces) {
  util::failpoint::configure("shape.intern=error*1");
  ShapeStore store;
  EXPECT_THROW(store.intern(chain2("j_a"), 0), util::FailpointError);
  // The failed intern left no partial entry behind.
  EXPECT_EQ(store.stats().total_jobs, 0u);
  EXPECT_EQ(store.stats().distinct_shapes, 0u);
  // And the store still works once the fault clears.
  store.intern(chain2("j_b"), 1);
  EXPECT_EQ(store.stats().distinct_shapes, 1u);
}

TEST_F(ShapeStoreFaultTest, InternFaultSurfacesFromStreamingIngest) {
  util::failpoint::configure("shape.intern=error*1");
  std::istringstream in(generated_csv(50));
  EXPECT_THROW(stream_shape_jobs(in, {}), util::FailpointError);
}

#endif  // CWGL_FAILPOINTS_ENABLED

}  // namespace
}  // namespace cwgl::core

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>

#include "cluster/scale.hpp"
#include "core/pipeline.hpp"
#include "trace/generator.hpp"
#include "trace/io.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace cwgl::core {
namespace {

trace::Trace make_trace(std::size_t jobs = 4000, std::uint64_t seed = 99) {
  trace::GeneratorConfig cfg;
  cfg.seed = seed;
  cfg.num_jobs = jobs;
  cfg.emit_instances = false;
  return trace::TraceGenerator(cfg).generate();
}

TEST(FullTrace, ClustersEveryEligibleJob) {
  const auto trace = make_trace();
  const CharacterizationPipeline pipeline{PipelineConfig{}};
  const auto result = pipeline.run_full(trace);

  EXPECT_GT(result.total_jobs(), 1000u);
  EXPECT_EQ(result.shape_of.size(), result.total_jobs());
  ASSERT_EQ(result.shape_labels.size(), result.table.size());
  // Many jobs, few shapes: the whole point of the interned path.
  EXPECT_LT(result.table.size(), result.total_jobs() / 2);

  const int k = static_cast<int>(result.groups.size());
  EXPECT_GE(k, 2);
  for (int l : result.shape_labels) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, k);
  }
  const auto jobs = result.job_labels();
  EXPECT_EQ(jobs.size(), result.total_jobs());

  // Groups are relabeled by descending weighted mass: A is the largest.
  for (std::size_t g = 1; g < result.groups.size(); ++g) {
    EXPECT_GE(result.groups[g - 1].population, result.groups[g].population);
  }
  // Medoids are shape ids belonging to their own group.
  for (std::size_t g = 0; g < result.groups.size(); ++g) {
    const std::size_t medoid = result.groups[g].medoid;
    ASSERT_LT(medoid, result.table.size());
    EXPECT_EQ(result.shape_labels[medoid], static_cast<int>(g));
  }
}

TEST(FullTrace, AgreesWithExactPipelineOnSubsample) {
  const auto trace = make_trace(6000, 3);
  const CharacterizationPipeline pipeline{PipelineConfig{}};
  const auto result = pipeline.run_full(trace);
  ASSERT_GT(result.agreement.items, 0u) << "validation should have run";
  EXPECT_GE(result.agreement.ari, 0.8);
  EXPECT_GT(result.agreement.nmi, 0.5);
}

TEST(FullTrace, DeterministicForSeedBothMethods) {
  const auto trace = make_trace(3000, 5);
  for (const cluster::ScaleMethod method :
       {cluster::ScaleMethod::MiniBatch, cluster::ScaleMethod::Landmark}) {
    PipelineConfig cfg;
    cfg.full_method = method;
    const CharacterizationPipeline pipeline(cfg);
    const auto a = pipeline.run_full(trace);
    const auto b = pipeline.run_full(trace);
    EXPECT_EQ(a.shape_labels, b.shape_labels)
        << cluster::to_string(method);
    EXPECT_EQ(a.method, method) << cluster::to_string(method);
    EXPECT_DOUBLE_EQ(a.agreement.ari, b.agreement.ari)
        << cluster::to_string(method);
  }
}

TEST(FullTrace, StreamOverloadMatchesTraceOverload) {
  const auto trace = make_trace(2000, 7);
  std::ostringstream out;
  trace::write_batch_task_csv(out, trace.tasks);
  const std::string csv = out.str();

  const CharacterizationPipeline pipeline{PipelineConfig{}};
  const auto from_trace = pipeline.run_full(trace);

  std::istringstream in(csv);
  const auto from_stream = pipeline.run_full(in);

  EXPECT_EQ(from_stream.table.size(), from_trace.table.size());
  EXPECT_EQ(from_stream.total_jobs(), from_trace.total_jobs());
  EXPECT_EQ(from_stream.shape_labels, from_trace.shape_labels);
  EXPECT_EQ(from_stream.shape_of, from_trace.shape_of);
}

TEST(FullTrace, PooledMatchesSerial) {
  const auto trace = make_trace(2500, 11);
  const CharacterizationPipeline pipeline{PipelineConfig{}};
  const auto serial = pipeline.run_full(trace);
  util::ThreadPool pool(4);
  const auto pooled = pipeline.run_full(trace, &pool);
  EXPECT_EQ(pooled.shape_labels, serial.shape_labels);
  EXPECT_EQ(pooled.shape_of, serial.shape_of);
  EXPECT_DOUBLE_EQ(pooled.agreement.ari, serial.agreement.ari);
}

TEST(FullTrace, LandmarkMethodReportsItsMetadata) {
  const auto trace = make_trace(3000, 13);
  PipelineConfig cfg;
  cfg.full_method = cluster::ScaleMethod::Landmark;
  const CharacterizationPipeline pipeline(cfg);
  const auto result = pipeline.run_full(trace);
  if (!result.degraded) {
    EXPECT_EQ(result.method, cluster::ScaleMethod::Landmark);
    EXPECT_GT(result.landmarks, 0u);
    EXPECT_GT(result.embedding_dims, 0u);
  }
}

TEST(FullTrace, EmptyTraceThrows) {
  trace::Trace empty;
  const CharacterizationPipeline pipeline{PipelineConfig{}};
  EXPECT_THROW(pipeline.run_full(empty), util::InvalidArgument);
}

TEST(FullTrace, FittedFeaturesAlignWithShapes) {
  const auto trace = make_trace(2000, 17);
  const CharacterizationPipeline pipeline{PipelineConfig{}};
  FittedFeatures fitted;
  const auto result = pipeline.run_full(trace, nullptr, &fitted);
  EXPECT_EQ(fitted.vectors.size(), result.table.size());
  EXPECT_FALSE(fitted.dictionary.empty());
}

}  // namespace
}  // namespace cwgl::core

#include "core/characterization.hpp"

#include <gtest/gtest.h>

#include "trace/generator.hpp"
#include "trace/taskname.hpp"

namespace cwgl::core {
namespace {

trace::TaskRecord task(std::string name, std::string job = "j_1") {
  trace::TaskRecord t;
  t.task_name = std::move(name);
  t.job_name = std::move(job);
  t.instance_num = 2;
  t.status = trace::Status::Terminated;
  t.start_time = 100;
  t.end_time = 200;
  t.plan_cpu = 100.0;
  t.plan_mem = 0.5;
  return t;
}

JobDag make_job(const std::vector<std::string>& names, std::string job_name) {
  std::vector<trace::TaskRecord> records;
  for (const auto& n : names) records.push_back(task(n, job_name));
  auto job = build_job_dag(job_name, records);
  EXPECT_TRUE(job.has_value()) << job_name;
  return *job;
}

std::vector<JobDag> tiny_corpus() {
  return {
      make_job({"M1", "R2_1"}, "j_chain2"),
      make_job({"M1", "R2_1", "R3_2"}, "j_chain3"),
      make_job({"M1", "M2", "R3_2_1"}, "j_tri"),
      make_job({"M1", "M2", "M3", "R4_3_2_1"}, "j_tri4"),
      make_job({"M1", "J2_1", "R3_2"}, "j_join"),
  };
}

TEST(StructuralReport, GroupsAndHistogramConsistent) {
  const auto jobs = tiny_corpus();
  const auto report = StructuralReport::compute(jobs);
  EXPECT_EQ(report.size_histogram.total(), jobs.size());
  EXPECT_EQ(report.distinct_sizes, 3u);  // sizes 2, 3, 4
  ASSERT_EQ(report.groups.size(), 3u);
  EXPECT_EQ(report.groups[0].size, 2);
  EXPECT_EQ(report.groups[0].count, 1u);
  EXPECT_EQ(report.groups[1].size, 3);
  EXPECT_EQ(report.groups[1].count, 3u);
  EXPECT_EQ(report.groups[2].size, 4);
}

TEST(StructuralReport, MaxFeaturesPerGroup) {
  const auto jobs = tiny_corpus();
  const auto report = StructuralReport::compute(jobs);
  // Size-3 group contains chain3 (cp 3, width 1), tri (cp 2, width 2),
  // join (cp 3, width 1): maxima are cp 3, width 2.
  EXPECT_EQ(report.groups[1].max_critical_path, 3);
  EXPECT_EQ(report.groups[1].max_width, 2);
  // Size-4 group: tri4 has cp 2, width 3.
  EXPECT_EQ(report.groups[2].max_critical_path, 2);
  EXPECT_EQ(report.groups[2].max_width, 3);
}

TEST(StructuralReport, EmptyInput) {
  const auto report = StructuralReport::compute({});
  EXPECT_EQ(report.distinct_sizes, 0u);
  EXPECT_TRUE(report.groups.empty());
}

TEST(ConflationReport, TriangleShrinksChainDoesNot) {
  const auto jobs = tiny_corpus();
  const auto report = ConflationReport::compute(jobs);
  EXPECT_EQ(report.before.total(), jobs.size());
  EXPECT_EQ(report.after.total(), jobs.size());
  // j_tri (3 tasks) and j_tri4 (4 tasks) collapse to 2; chains unchanged.
  EXPECT_EQ(report.before.count(2), 1u);
  EXPECT_EQ(report.after.count(2), 3u);
  EXPECT_EQ(report.after.count(4), 0u);
  EXPECT_GT(report.mean_reduction, 1.0);
}

TEST(ConflationReport, SmallerJobsRatioIncreasesAfterMerge) {
  // The paper's Fig. 3 observation: the ratio of small jobs rises.
  const auto jobs = tiny_corpus();
  const auto report = ConflationReport::compute(jobs);
  EXPECT_GT(report.after.fraction(2), report.before.fraction(2));
}

TEST(TaskTypeReport, CountsPerJob) {
  const auto jobs = tiny_corpus();
  const auto report = TaskTypeReport::compute(jobs);
  ASSERT_EQ(report.rows.size(), jobs.size());
  const auto& tri = report.rows[2];
  EXPECT_EQ(tri.m_tasks, 2);
  EXPECT_EQ(tri.r_tasks, 1);
  EXPECT_EQ(tri.j_tasks, 0);
  const auto& join = report.rows[4];
  EXPECT_EQ(join.j_tasks, 1);
}

TEST(TaskTypeReport, ModelInference) {
  const auto jobs = tiny_corpus();
  const auto report = TaskTypeReport::compute(jobs);
  EXPECT_EQ(report.rows[0].model, "map-reduce");            // 2-chain, cp 2
  EXPECT_EQ(report.rows[1].model, "multi-stage map-reduce");  // 3-chain, cp 3
  EXPECT_EQ(report.rows[2].model, "map-reduce");            // triangle, cp 2
  EXPECT_EQ(report.rows[4].model, "map-join-reduce");       // has a J task
  EXPECT_EQ(report.map_join_reduce_jobs, 1u);
  EXPECT_EQ(report.map_reduce_jobs, 3u);
  EXPECT_EQ(report.multi_stage_jobs, 1u);
}

TEST(TaskTypeReport, MergeStageDetected) {
  // M3 consumes R2's output: the Map-Reduce-Merge mode (Section V-C).
  const std::vector<JobDag> jobs{make_job({"M1", "R2_1", "M3_2"}, "j_merge")};
  const auto report = TaskTypeReport::compute(jobs);
  EXPECT_EQ(report.rows[0].model, "map-reduce-merge");
  EXPECT_EQ(report.map_reduce_merge_jobs, 1u);
}

TEST(TaskTypeReport, JoinTakesPrecedenceOverMerge) {
  // A job with both a Join stage and an M-after-R stage reads as
  // map-join-reduce (the join is the more distinctive phase).
  const std::vector<JobDag> jobs{
      make_job({"M1", "M2", "J3_2_1", "R4_3", "M5_4"}, "j_both")};
  const auto report = TaskTypeReport::compute(jobs);
  EXPECT_EQ(report.rows[0].model, "map-join-reduce");
}

TEST(TaskTypeReport, GeneratedWorkloadContainsMergeJobs) {
  trace::GeneratorConfig cfg;
  cfg.seed = 55;
  cfg.num_jobs = 3000;
  cfg.emit_instances = false;
  const auto generated = trace::TraceGenerator(cfg).generate_jobs();
  std::vector<JobDag> jobs;
  for (const auto& g : generated) {
    if (!g.is_dag) continue;
    if (auto job = build_job_dag(g.job_name, g.tasks)) jobs.push_back(*job);
  }
  const auto report = TaskTypeReport::compute(jobs);
  EXPECT_GT(report.map_reduce_merge_jobs, 10u);
  // Still a minority mode, as in the paper.
  EXPECT_LT(report.map_reduce_merge_jobs, report.map_reduce_jobs);
}

TEST(PatternCensus, CountsAndFractions) {
  const auto jobs = tiny_corpus();
  const auto census = PatternCensus::compute(jobs);
  EXPECT_EQ(census.total, jobs.size());
  EXPECT_DOUBLE_EQ(census.fraction(graph::ShapePattern::StraightChain),
                   3.0 / 5.0);
  EXPECT_DOUBLE_EQ(census.fraction(graph::ShapePattern::InvertedTriangle),
                   2.0 / 5.0);
  EXPECT_DOUBLE_EQ(census.fraction(graph::ShapePattern::Diamond), 0.0);
  // Rows sorted descending by count.
  ASSERT_GE(census.rows.size(), 2u);
  EXPECT_GE(census.rows[0].count, census.rows[1].count);
}

TEST(PatternCensus, GeneratedWorkloadMatchesPaperFrequencies) {
  trace::GeneratorConfig cfg;
  cfg.seed = 21;
  cfg.num_jobs = 4000;
  cfg.emit_instances = false;
  const auto generated = trace::TraceGenerator(cfg).generate_jobs();
  std::vector<JobDag> jobs;
  for (const auto& g : generated) {
    if (!g.is_dag) continue;
    if (auto job = build_job_dag(g.job_name, g.tasks)) {
      jobs.push_back(std::move(*job));
    }
  }
  const auto census = PatternCensus::compute(jobs);
  // Paper: 58% straight chains, 37% inverted triangles.
  EXPECT_NEAR(census.fraction(graph::ShapePattern::StraightChain), 0.58, 0.08);
  EXPECT_NEAR(census.fraction(graph::ShapePattern::InvertedTriangle), 0.37,
              0.08);
}

TEST(TraceCensus, MatchesPaperSectionIIB) {
  trace::GeneratorConfig cfg;
  cfg.seed = 31;
  cfg.num_jobs = 4000;
  cfg.emit_instances = false;
  const auto trace_data = trace::TraceGenerator(cfg).generate();
  const auto census = TraceCensus::compute(trace_data);
  EXPECT_EQ(census.total_jobs, cfg.num_jobs);
  // ~50% of batch jobs have dependencies...
  EXPECT_NEAR(census.dag_job_fraction, 0.5, 0.05);
  // ...and they consume 70-80% of batch resources.
  EXPECT_GT(census.dag_resource_fraction, 0.65);
  EXPECT_LT(census.dag_resource_fraction, 0.85);
}

TEST(TraceCensus, EmptyTrace) {
  const auto census = TraceCensus::compute(trace::Trace{});
  EXPECT_EQ(census.total_jobs, 0u);
  EXPECT_EQ(census.dag_job_fraction, 0.0);
}

}  // namespace
}  // namespace cwgl::core

#include "core/comparison.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "trace/generator.hpp"

namespace cwgl::core {
namespace {

trace::Trace make_trace(trace::GeneratorConfig cfg) {
  cfg.emit_instances = false;
  return trace::TraceGenerator(cfg).generate();
}

TEST(TraceComparison, IdenticalTracesHaveZeroDrift) {
  trace::GeneratorConfig cfg;
  cfg.seed = 11;
  cfg.num_jobs = 1500;
  const auto a = make_trace(cfg);
  const auto cmp = TraceComparison::compute(a, a);
  EXPECT_NEAR(cmp.max_divergence(), 0.0, 1e-12);
  EXPECT_NEAR(cmp.dag_fraction_delta, 0.0, 1e-12);
  EXPECT_EQ(cmp.jobs_a, cmp.jobs_b);
}

TEST(TraceComparison, SameConfigDifferentSeedsBarelyDrift) {
  trace::GeneratorConfig cfg;
  cfg.num_jobs = 3000;
  cfg.seed = 11;
  const auto a = make_trace(cfg);
  cfg.seed = 12;
  const auto b = make_trace(cfg);
  const auto cmp = TraceComparison::compute(a, b);
  EXPECT_LT(cmp.max_divergence(), 0.05);
}

TEST(TraceComparison, ShapeMixChangeShowsInShapeDivergence) {
  trace::GeneratorConfig cfg;
  cfg.num_jobs = 3000;
  cfg.seed = 11;
  const auto a = make_trace(cfg);
  trace::GeneratorConfig flipped = cfg;
  flipped.shapes.chain = 0.10;            // chains mostly replaced...
  flipped.shapes.inverted_triangle = 0.80;  // ...by triangles
  const auto b = make_trace(flipped);
  const auto drifted = TraceComparison::compute(a, b);
  const auto baseline = TraceComparison::compute(a, make_trace([&] {
                                                   auto c = cfg;
                                                   c.seed = 12;
                                                   return c;
                                                 }()));
  EXPECT_GT(drifted.shape_divergence, 5.0 * baseline.shape_divergence);
  EXPECT_GT(drifted.shape_divergence, 0.1);
}

TEST(TraceComparison, SizeDistributionChangeShowsInSizeDivergence) {
  trace::GeneratorConfig cfg;
  cfg.num_jobs = 3000;
  cfg.seed = 11;
  const auto a = make_trace(cfg);
  trace::GeneratorConfig big = cfg;
  big.p_tiny = 0.0;
  big.size_geometric_p = 0.05;  // much heavier job sizes
  const auto b = make_trace(big);
  const auto cmp = TraceComparison::compute(a, b);
  EXPECT_GT(cmp.size_divergence, 0.15);
}

TEST(TraceComparison, DagFractionDeltaTracked) {
  trace::GeneratorConfig cfg;
  cfg.num_jobs = 3000;
  cfg.seed = 11;
  const auto a = make_trace(cfg);
  trace::GeneratorConfig mostly_dag = cfg;
  mostly_dag.dag_fraction = 0.9;
  const auto b = make_trace(mostly_dag);
  const auto cmp = TraceComparison::compute(a, b);
  EXPECT_GT(cmp.dag_fraction_delta, 0.3);
}

TEST(TraceComparison, EmptyTraces) {
  const auto cmp = TraceComparison::compute(trace::Trace{}, trace::Trace{});
  EXPECT_EQ(cmp.jobs_a, 0u);
  EXPECT_EQ(cmp.max_divergence(), 0.0);
}

}  // namespace
}  // namespace cwgl::core

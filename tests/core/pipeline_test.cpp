#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "core/report_text.hpp"
#include "trace/generator.hpp"

namespace cwgl::core {
namespace {

trace::Trace make_trace(std::size_t jobs = 1500, std::uint64_t seed = 99) {
  trace::GeneratorConfig cfg;
  cfg.seed = seed;
  cfg.num_jobs = jobs;
  cfg.emit_instances = false;
  return trace::TraceGenerator(cfg).generate();
}

PipelineConfig small_pipeline() {
  PipelineConfig cfg;
  cfg.sample_size = 60;
  return cfg;
}

TEST(Pipeline, SampleRespectsSizeAndFilters) {
  const auto trace = make_trace();
  const CharacterizationPipeline pipeline(small_pipeline());
  const auto sample = pipeline.build_sample(trace);
  ASSERT_EQ(sample.size(), 60u);
  for (const auto& job : sample) {
    EXPECT_GE(job.size(), 2);
    EXPECT_LE(job.size(), 31);
  }
}

TEST(Pipeline, SampleIsDeterministic) {
  const auto trace = make_trace();
  const CharacterizationPipeline pipeline(small_pipeline());
  const auto a = pipeline.build_sample(trace);
  const auto b = pipeline.build_sample(trace);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].job_name, b[i].job_name);
  }
}

TEST(Pipeline, SampleSpansManySizes) {
  const auto trace = make_trace(4000);
  PipelineConfig cfg = small_pipeline();
  cfg.sample_size = 100;
  const CharacterizationPipeline pipeline(cfg);
  const auto sample = pipeline.build_sample(trace);
  std::set<int> sizes;
  for (const auto& job : sample) sizes.insert(job.size());
  // The paper's experiment set had 17 distinct sizes in 2..31.
  EXPECT_GE(sizes.size(), 12u);
}

TEST(Pipeline, NaturalSamplingFollowsPopulation) {
  const auto trace = make_trace(4000);
  PipelineConfig stratified = small_pipeline();
  stratified.sample_size = 100;
  PipelineConfig natural = stratified;
  natural.sampling = SamplingMode::Natural;
  const auto strat_sample =
      CharacterizationPipeline(stratified).build_sample(trace);
  const auto nat_sample = CharacterizationPipeline(natural).build_sample(trace);
  ASSERT_EQ(strat_sample.size(), 100u);
  ASSERT_EQ(nat_sample.size(), 100u);
  // The stratified sample guarantees one representative per size, so it
  // must carry clearly more LARGE jobs than a natural draw from the
  // bottom-heavy population (where sizes >= 10 are a few percent).
  const auto large = [](const std::vector<JobDag>& jobs) {
    std::size_t n = 0;
    for (const auto& j : jobs) n += j.size() >= 10;
    return n;
  };
  EXPECT_GT(large(strat_sample), large(nat_sample));
  // And the natural draw stays dominated by small jobs.
  std::size_t small = 0;
  for (const auto& j : nat_sample) small += j.size() <= 4;
  EXPECT_GT(small, nat_sample.size() / 2);
}

TEST(Pipeline, FullRunProducesConsistentResult) {
  const auto trace = make_trace();
  PipelineConfig cfg = small_pipeline();
  cfg.clustering.clusters = 5;
  const CharacterizationPipeline pipeline(cfg);
  const auto result = pipeline.run(trace);

  EXPECT_EQ(result.sample.size(), 60u);
  EXPECT_EQ(result.similarity.gram.rows(), 60u);
  EXPECT_EQ(result.clustering.labels.size(), 60u);
  EXPECT_EQ(result.clustering.groups.size(), 5u);
  EXPECT_EQ(result.conflation.before.total(), 60u);
  EXPECT_EQ(result.task_types.rows.size(), 60u);
  EXPECT_EQ(result.patterns.total, 60u);

  // Group populations sum to the sample and descend.
  std::size_t total = 0;
  for (std::size_t g = 0; g < result.clustering.groups.size(); ++g) {
    total += result.clustering.groups[g].population;
    if (g > 0) {
      EXPECT_LE(result.clustering.groups[g].population,
                result.clustering.groups[g - 1].population);
    }
  }
  EXPECT_EQ(total, 60u);

  // Census covers the whole trace, not the sample.
  EXPECT_EQ(result.census.total_jobs, 1500u);
}

TEST(Pipeline, ConflatedAnalysisUsesConflatedSizes) {
  const auto trace = make_trace();
  PipelineConfig raw_cfg = small_pipeline();
  PipelineConfig merged_cfg = small_pipeline();
  merged_cfg.analyze_conflated = true;
  const auto raw = CharacterizationPipeline(raw_cfg).run(trace);
  const auto merged = CharacterizationPipeline(merged_cfg).run(trace);
  // Same sample, same gram size; structural figures identical.
  EXPECT_EQ(raw.similarity.gram.rows(), merged.similarity.gram.rows());
  // Conflated analysis must differ somewhere in the gram (fan-ins collapse).
  EXPECT_GT(raw.similarity.gram.max_abs_diff(merged.similarity.gram), 1e-6);
}

TEST(Pipeline, StructureAfterNeverLargerThanBefore) {
  const auto trace = make_trace();
  const auto result = CharacterizationPipeline(small_pipeline()).run(trace);
  long long before_mass = 0, after_mass = 0;
  for (const auto& [size, count] : result.structure_before.size_histogram.items()) {
    before_mass += size * static_cast<long long>(count);
  }
  for (const auto& [size, count] : result.structure_after.size_histogram.items()) {
    after_mass += size * static_cast<long long>(count);
  }
  EXPECT_LE(after_mass, before_mass);
}

TEST(Pipeline, BuildAllDagJobsHonorsCriteria) {
  const auto trace = make_trace(800);
  trace::SamplingCriteria criteria;
  const auto jobs = build_all_dag_jobs(trace, criteria);
  EXPECT_GT(jobs.size(), 100u);
  for (const auto& job : jobs) EXPECT_GE(job.size(), 2);
  trace::SamplingCriteria harsher = criteria;
  harsher.min_tasks = 10;
  const auto big_only = build_all_dag_jobs(trace, harsher);
  EXPECT_LT(big_only.size(), jobs.size());
  for (const auto& job : big_only) EXPECT_GE(job.size(), 10);
}

TEST(ReportText, PrintersProduceNonEmptyOutput) {
  const auto trace = make_trace(600);
  PipelineConfig cfg = small_pipeline();
  cfg.sample_size = 30;
  const auto result = CharacterizationPipeline(cfg).run(trace);

  std::ostringstream out;
  print_trace_census(out, result.census);
  print_conflation_report(out, result.conflation);
  print_structural_report(out, result.structure_before, "Fig 4");
  print_structural_report(out, result.structure_after, "Fig 5");
  print_task_type_report(out, result.task_types);
  print_pattern_census(out, result.patterns);
  print_similarity_summary(out, result.similarity.stats(result.sample));
  print_clustering_analysis(out, result.clustering);
  const std::string text = out.str();
  EXPECT_NE(text.find("Fig 3"), std::string::npos);
  EXPECT_NE(text.find("Fig 4"), std::string::npos);
  EXPECT_NE(text.find("Group A"), std::string::npos);
  EXPECT_NE(text.find("straight-chain"), std::string::npos);
  EXPECT_GT(text.size(), 500u);
}

TEST(ReportText, ResourceReportPrinterCoversAllSections) {
  const auto trace = make_trace(600);
  PipelineConfig cfg = small_pipeline();
  cfg.sample_size = 30;
  const auto sample = CharacterizationPipeline(cfg).build_sample(trace);
  const auto report = ResourceUsageReport::compute(sample);
  std::ostringstream out;
  print_resource_report(out, report);
  const std::string text = out.str();
  EXPECT_NE(text.find("Resource usage by task type"), std::string::npos);
  EXPECT_NE(text.find("Resource usage by DAG level"), std::string::npos);
  EXPECT_NE(text.find("corr(size, work)"), std::string::npos);
  // Every DAG sample has M and R stages.
  EXPECT_NE(text.find("\n     M"), std::string::npos);
  EXPECT_NE(text.find("\n     R"), std::string::npos);
}

TEST(ReportText, SimilarityMatrixIsCsvOfRightShape) {
  const auto trace = make_trace(600);
  PipelineConfig cfg = small_pipeline();
  cfg.sample_size = 10;
  const auto result = CharacterizationPipeline(cfg).run(trace);
  std::ostringstream out;
  print_similarity_matrix(out, result.similarity);
  const std::string text = out.str();
  std::size_t lines = 0, commas = 0;
  for (char c : text) {
    lines += (c == '\n');
    commas += (c == ',');
  }
  EXPECT_EQ(lines, 10u);
  EXPECT_EQ(commas, 10u * 9u);
}

}  // namespace
}  // namespace cwgl::core

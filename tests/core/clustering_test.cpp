#include "core/clustering.hpp"

#include <gtest/gtest.h>

#include "core/similarity.hpp"
#include "util/error.hpp"

namespace cwgl::core {
namespace {

trace::TaskRecord task(std::string name, std::string job) {
  trace::TaskRecord t;
  t.task_name = std::move(name);
  t.job_name = std::move(job);
  t.instance_num = 1;
  t.status = trace::Status::Terminated;
  t.start_time = 100;
  t.end_time = 200;
  t.plan_cpu = 100.0;
  t.plan_mem = 0.5;
  return t;
}

JobDag make_job(const std::vector<std::string>& names, std::string job_name) {
  std::vector<trace::TaskRecord> records;
  for (const auto& n : names) records.push_back(task(n, job_name));
  auto job = build_job_dag(job_name, records);
  EXPECT_TRUE(job.has_value()) << job_name;
  return *job;
}

/// 8 chains + 4 fan-ins: two clearly separable structural families of
/// unequal population, so group relabeling is testable.
std::vector<JobDag> two_family_corpus() {
  std::vector<JobDag> jobs;
  for (int i = 0; i < 8; ++i) {
    jobs.push_back(make_job({"M1", "R2_1", "R3_2"}, "j_chain" + std::to_string(i)));
  }
  for (int i = 0; i < 4; ++i) {
    jobs.push_back(
        make_job({"M1", "M2", "M3", "M4", "R5_4_3_2_1"}, "j_fan" + std::to_string(i)));
  }
  return jobs;
}

TEST(ClusteringAnalysis, SeparatesStructuralFamilies) {
  const auto jobs = two_family_corpus();
  const auto sim = SimilarityAnalysis::compute(jobs);
  ClusteringOptions options;
  options.clusters = 2;
  const auto analysis = ClusteringAnalysis::compute(sim.gram, jobs, options);
  // All chains together, all fans together.
  for (int i = 1; i < 8; ++i) EXPECT_EQ(analysis.labels[i], analysis.labels[0]);
  for (int i = 9; i < 12; ++i) EXPECT_EQ(analysis.labels[i], analysis.labels[8]);
  EXPECT_NE(analysis.labels[0], analysis.labels[8]);
}

TEST(ClusteringAnalysis, GroupZeroIsLargest) {
  const auto jobs = two_family_corpus();
  const auto sim = SimilarityAnalysis::compute(jobs);
  ClusteringOptions options;
  options.clusters = 2;
  const auto analysis = ClusteringAnalysis::compute(sim.gram, jobs, options);
  // Relabeling: group A (=0) must be the 8-chain family.
  EXPECT_EQ(analysis.labels[0], 0);
  EXPECT_EQ(analysis.groups[0].population, 8u);
  EXPECT_EQ(analysis.groups[1].population, 4u);
  EXPECT_EQ(analysis.groups[0].letter(), 'A');
  EXPECT_EQ(analysis.groups[1].letter(), 'B');
  EXPECT_NEAR(analysis.groups[0].population_fraction, 8.0 / 12.0, 1e-12);
}

TEST(ClusteringAnalysis, GroupStatsReflectMembers) {
  const auto jobs = two_family_corpus();
  const auto sim = SimilarityAnalysis::compute(jobs);
  ClusteringOptions options;
  options.clusters = 2;
  const auto analysis = ClusteringAnalysis::compute(sim.gram, jobs, options);
  const auto& chains = analysis.groups[0];
  EXPECT_DOUBLE_EQ(chains.size.mean, 3.0);
  EXPECT_DOUBLE_EQ(chains.critical_path.mean, 3.0);
  EXPECT_DOUBLE_EQ(chains.parallelism.mean, 1.0);
  EXPECT_DOUBLE_EQ(chains.chain_fraction, 1.0);
  const auto& fans = analysis.groups[1];
  EXPECT_DOUBLE_EQ(fans.size.mean, 5.0);
  EXPECT_DOUBLE_EQ(fans.critical_path.mean, 2.0);
  EXPECT_DOUBLE_EQ(fans.parallelism.mean, 4.0);
  EXPECT_DOUBLE_EQ(fans.chain_fraction, 0.0);
}

TEST(ClusteringAnalysis, MedoidBelongsToItsGroup) {
  const auto jobs = two_family_corpus();
  const auto sim = SimilarityAnalysis::compute(jobs);
  ClusteringOptions options;
  options.clusters = 2;
  const auto analysis = ClusteringAnalysis::compute(sim.gram, jobs, options);
  for (const auto& g : analysis.groups) {
    EXPECT_EQ(analysis.labels[g.medoid], g.group);
  }
}

TEST(ClusteringAnalysis, SilhouettePositiveForSeparableFamilies) {
  const auto jobs = two_family_corpus();
  const auto sim = SimilarityAnalysis::compute(jobs);
  ClusteringOptions options;
  options.clusters = 2;
  const auto analysis = ClusteringAnalysis::compute(sim.gram, jobs, options);
  EXPECT_GT(analysis.silhouette, 0.5);
}

TEST(ClusteringAnalysis, DeterministicForSeed) {
  const auto jobs = two_family_corpus();
  const auto sim = SimilarityAnalysis::compute(jobs);
  ClusteringOptions options;
  options.clusters = 2;
  options.seed = 77;
  const auto a = ClusteringAnalysis::compute(sim.gram, jobs, options);
  const auto b = ClusteringAnalysis::compute(sim.gram, jobs, options);
  EXPECT_EQ(a.labels, b.labels);
}

TEST(ClusteringAnalysis, SizeMismatchThrows) {
  const auto jobs = two_family_corpus();
  const auto sim = SimilarityAnalysis::compute(jobs);
  const std::vector<JobDag> fewer(jobs.begin(), jobs.begin() + 3);
  EXPECT_THROW(ClusteringAnalysis::compute(sim.gram, fewer, {}),
               util::InvalidArgument);
}

TEST(ClusterGroupStats, ShortJobFraction) {
  std::vector<JobDag> jobs;
  for (int i = 0; i < 4; ++i) {
    jobs.push_back(make_job({"M1", "R2_1"}, "j_s" + std::to_string(i)));
  }
  jobs.push_back(make_job({"M1", "R2_1", "R3_2"}, "j_l"));
  const auto sim = SimilarityAnalysis::compute(jobs);
  ClusteringOptions options;
  options.clusters = 2;
  const auto analysis = ClusteringAnalysis::compute(sim.gram, jobs, options);
  // Group A holds the four 2-task jobs (all "short": < 3 tasks).
  EXPECT_EQ(analysis.groups[0].population, 4u);
  EXPECT_DOUBLE_EQ(analysis.groups[0].short_job_fraction, 1.0);
  EXPECT_DOUBLE_EQ(analysis.groups[1].short_job_fraction, 0.0);
}

}  // namespace
}  // namespace cwgl::core

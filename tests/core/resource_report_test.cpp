#include "core/resource_report.hpp"

#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "trace/generator.hpp"

namespace cwgl::core {
namespace {

trace::TaskRecord task(std::string name, std::string job, int instances,
                       std::int64_t start, std::int64_t end, double cpu) {
  trace::TaskRecord t;
  t.task_name = std::move(name);
  t.job_name = std::move(job);
  t.instance_num = instances;
  t.status = trace::Status::Terminated;
  t.start_time = start;
  t.end_time = end;
  t.plan_cpu = cpu;
  t.plan_mem = 0.5;
  return t;
}

TEST(ResourceUsageReport, PerTypeRowsOrderedAndAggregated) {
  std::vector<trace::TaskRecord> records{
      task("M1", "j_1", 4, 100, 160, 100.0),   // M: dur 60
      task("J2_1", "j_1", 2, 160, 200, 50.0),  // J: dur 40
      task("R3_2", "j_1", 1, 200, 220, 200.0), // R: dur 20
  };
  const auto job = build_job_dag("j_1", records);
  ASSERT_TRUE(job.has_value());
  const std::vector<JobDag> jobs{*job};
  const auto report = ResourceUsageReport::compute(jobs);

  ASSERT_EQ(report.by_type.size(), 3u);
  EXPECT_EQ(report.by_type[0].type, 'M');
  EXPECT_EQ(report.by_type[1].type, 'J');
  EXPECT_EQ(report.by_type[2].type, 'R');
  EXPECT_DOUBLE_EQ(report.by_type[0].duration.mean, 60.0);
  EXPECT_DOUBLE_EQ(report.by_type[0].instances.mean, 4.0);
  EXPECT_DOUBLE_EQ(report.by_type[2].plan_cpu.mean, 200.0);
}

TEST(ResourceUsageReport, PerLevelProfile) {
  std::vector<trace::TaskRecord> records{
      task("M1", "j_1", 1, 100, 200, 100.0),
      task("M2", "j_1", 1, 100, 200, 100.0),
      task("R3_2_1", "j_1", 1, 200, 250, 100.0),
  };
  const auto job = build_job_dag("j_1", records);
  ASSERT_TRUE(job.has_value());
  const std::vector<JobDag> jobs{*job};
  const auto report = ResourceUsageReport::compute(jobs);

  ASSERT_EQ(report.by_level.size(), 2u);
  EXPECT_EQ(report.by_level[0].level, 0);
  EXPECT_EQ(report.by_level[0].tasks, 2u);
  EXPECT_DOUBLE_EQ(report.by_level[0].mean_duration, 100.0);
  EXPECT_DOUBLE_EQ(report.by_level[0].total_work, 2 * 100.0 * 100.0);
  EXPECT_EQ(report.by_level[1].level, 1);
  EXPECT_DOUBLE_EQ(report.by_level[1].mean_duration, 50.0);
}

TEST(ResourceUsageReport, EmptyInput) {
  const auto report = ResourceUsageReport::compute({});
  EXPECT_TRUE(report.by_type.empty());
  EXPECT_TRUE(report.by_level.empty());
  EXPECT_EQ(report.corr_size_work, 0.0);
}

TEST(ResourceUsageReport, TopologyPredictsDemandOnGeneratedWorkload) {
  // The paper's future-work hypothesis, measured: larger jobs carry more
  // work, wider jobs more instances.
  trace::GeneratorConfig cfg;
  cfg.seed = 5;
  cfg.num_jobs = 3000;
  cfg.emit_instances = false;
  const auto data = trace::TraceGenerator(cfg).generate();
  PipelineConfig pipe;
  pipe.sample_size = 150;
  const auto sample = CharacterizationPipeline(pipe).build_sample(data);
  const auto report = ResourceUsageReport::compute(sample);
  EXPECT_GT(report.corr_size_work, 0.4);
  EXPECT_GT(report.corr_width_instances, 0.4);
  EXPECT_GT(report.corr_depth_duration, 0.2);
}

}  // namespace
}  // namespace cwgl::core

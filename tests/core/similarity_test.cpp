#include "core/similarity.hpp"

#include <gtest/gtest.h>

#include "linalg/eigen.hpp"
#include "util/error.hpp"

namespace cwgl::core {
namespace {

trace::TaskRecord task(std::string name, std::string job) {
  trace::TaskRecord t;
  t.task_name = std::move(name);
  t.job_name = std::move(job);
  t.instance_num = 1;
  t.status = trace::Status::Terminated;
  t.start_time = 100;
  t.end_time = 200;
  t.plan_cpu = 100.0;
  t.plan_mem = 0.5;
  return t;
}

JobDag make_job(const std::vector<std::string>& names, std::string job_name) {
  std::vector<trace::TaskRecord> records;
  for (const auto& n : names) records.push_back(task(n, job_name));
  auto job = build_job_dag(job_name, records);
  EXPECT_TRUE(job.has_value()) << job_name;
  return *job;
}

std::vector<JobDag> corpus() {
  return {
      make_job({"M1", "R2_1"}, "j_a"),
      make_job({"M1", "R2_1"}, "j_b"),               // identical to j_a
      make_job({"M1", "R2_1", "R3_2"}, "j_c"),       // longer chain
      make_job({"M1", "M2", "M3", "R4_3_2_1"}, "j_d"),  // wide fan-in
  };
}

TEST(SimilarityAnalysis, MatrixShapeAndDiagonal) {
  const auto jobs = corpus();
  const auto analysis = SimilarityAnalysis::compute(jobs);
  EXPECT_EQ(analysis.gram.rows(), jobs.size());
  EXPECT_EQ(analysis.job_names.size(), jobs.size());
  EXPECT_EQ(analysis.job_names[0], "j_a");
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_NEAR(analysis.gram(i, i), 1.0, 1e-12);
  }
}

TEST(SimilarityAnalysis, IdenticalJobsScoreOne) {
  const auto jobs = corpus();
  const auto analysis = SimilarityAnalysis::compute(jobs);
  EXPECT_NEAR(analysis.gram(0, 1), 1.0, 1e-12);
}

TEST(SimilarityAnalysis, StructureOrdersSimilarity) {
  const auto jobs = corpus();
  const auto analysis = SimilarityAnalysis::compute(jobs);
  // From the 3-chain's perspective, the 2-chain (same family) scores higher
  // than the wide fan-in. (The 2-chain itself is too small to prefer either:
  // its single R is locally indistinguishable from a fan's R.)
  EXPECT_GT(analysis.gram(2, 0), analysis.gram(2, 3));
}

TEST(SimilarityAnalysis, MatrixIsPsd) {
  const auto jobs = corpus();
  const auto analysis = SimilarityAnalysis::compute(jobs);
  EXPECT_TRUE(linalg::is_positive_semidefinite(analysis.gram, 1e-7));
}

TEST(SimilarityAnalysis, StatsSmallPairsScoreHigher) {
  const auto jobs = corpus();
  const auto analysis = SimilarityAnalysis::compute(jobs);
  const auto stats = analysis.stats(jobs, /*small_threshold=*/3);
  // Small jobs (sizes 2,2,3) include the identical pair, so their mean must
  // exceed the global mean — the paper's Fig. 7 observation.
  EXPECT_GT(stats.small_pair_mean, stats.mean_offdiag - 1e-12);
  EXPECT_GE(stats.max_offdiag, stats.min_offdiag);
}

TEST(SimilarityAnalysis, StatsSizeMismatchThrows) {
  const auto jobs = corpus();
  const auto analysis = SimilarityAnalysis::compute(jobs);
  const std::vector<JobDag> fewer(jobs.begin(), jobs.begin() + 2);
  EXPECT_THROW(analysis.stats(fewer), util::InvalidArgument);
}

TEST(SimilarityAnalysis, TypeLabelsToggleMatters) {
  // With type labels off, an all-R chain and an M-headed chain tie.
  auto jobs = corpus();
  SimilarityOptions with_labels;
  SimilarityOptions without_labels;
  without_labels.use_type_labels = false;
  const auto labeled = SimilarityAnalysis::compute(jobs, with_labels);
  const auto unlabeled = SimilarityAnalysis::compute(jobs, without_labels);
  // Same shape, different labels: chain2 vs chain2 stays 1 either way,
  // but chain2 vs fan-in differs between modes.
  EXPECT_NE(labeled.gram(2, 3), unlabeled.gram(2, 3));
}

TEST(SimilarityAnalysis, UnnormalizedOptionGivesRawCounts) {
  const auto jobs = corpus();
  SimilarityOptions options;
  options.normalize = false;
  const auto analysis = SimilarityAnalysis::compute(jobs, options);
  // Diagonal of an unnormalized WL gram grows with graph size.
  EXPECT_GT(analysis.gram(3, 3), analysis.gram(0, 0));
}

TEST(SimilarityAnalysis, EmptyCorpus) {
  const auto analysis = SimilarityAnalysis::compute({});
  EXPECT_EQ(analysis.gram.rows(), 0u);
  const auto stats = analysis.stats({});
  EXPECT_EQ(stats.mean_offdiag, 0.0);
}

TEST(SimilarityAnalysis, ParallelPoolMatchesSequential) {
  const auto jobs = corpus();
  util::ThreadPool pool(3);
  const auto seq = SimilarityAnalysis::compute(jobs);
  const auto par = SimilarityAnalysis::compute(jobs, {}, &pool);
  EXPECT_LT(seq.gram.max_abs_diff(par.gram), 1e-14);
}

}  // namespace
}  // namespace cwgl::core

#include "core/predictor.hpp"

#include <gtest/gtest.h>

#include "core/clustering.hpp"
#include "core/pipeline.hpp"
#include "core/similarity.hpp"
#include "trace/generator.hpp"
#include "util/error.hpp"

namespace cwgl::core {
namespace {

trace::TaskRecord task(std::string name, std::string job, std::int64_t start,
                       std::int64_t end) {
  trace::TaskRecord t;
  t.task_name = std::move(name);
  t.job_name = std::move(job);
  t.instance_num = 2;
  t.status = trace::Status::Terminated;
  t.start_time = start;
  t.end_time = end;
  t.plan_cpu = 100.0;
  t.plan_mem = 0.5;
  return t;
}

JobDag chain_job(std::string name, int length, std::int64_t stage_seconds) {
  std::vector<trace::TaskRecord> records;
  std::int64_t clock = 100;
  for (int i = 1; i <= length; ++i) {
    std::string task_name =
        i == 1 ? "M1" : "R" + std::to_string(i) + "_" + std::to_string(i - 1);
    records.push_back(task(task_name, name, clock, clock + stage_seconds));
    clock += stage_seconds;
  }
  auto job = build_job_dag(name, records);
  EXPECT_TRUE(job.has_value());
  return *job;
}

TEST(JctPredictor, ActualWallTime) {
  const auto job = chain_job("j", 3, 50);
  EXPECT_DOUBLE_EQ(JctPredictor::actual_wall_time(job), 150.0);
  JobDag broken = job;
  for (auto& t : broken.tasks) t.start_time = 0;
  EXPECT_LT(JctPredictor::actual_wall_time(broken), 0.0);
}

TEST(JctPredictor, LearnsExactLinearRelation) {
  // Chains of length L with 60s stages: wall time = 60 * L = 60 * size.
  std::vector<JobDag> jobs;
  for (int len = 2; len <= 8; ++len) {
    jobs.push_back(chain_job("j" + std::to_string(len), len, 60));
  }
  PredictorConfig cfg;
  cfg.use_plan = false;
  cfg.use_topology = false;  // size alone determines the answer here
  const auto model = JctPredictor::fit(jobs, {}, cfg);
  for (const auto& job : jobs) {
    EXPECT_NEAR(model.predict(job), JctPredictor::actual_wall_time(job), 1.0);
  }
  const auto eval = model.evaluate(jobs, {});
  EXPECT_GT(eval.r2, 0.999);
  EXPECT_LT(eval.mae, 1.0);
}

TEST(JctPredictor, PredictionsNonNegative) {
  std::vector<JobDag> jobs;
  for (int len = 2; len <= 5; ++len) {
    jobs.push_back(chain_job("j" + std::to_string(len), len, 10));
  }
  const auto model = JctPredictor::fit(jobs, {}, PredictorConfig{});
  JobDag tiny = chain_job("t", 2, 1);
  EXPECT_GE(model.predict(tiny), 0.0);
}

TEST(JctPredictor, Validation) {
  std::vector<JobDag> jobs{chain_job("a", 3, 10)};
  PredictorConfig with_groups;
  with_groups.num_groups = 2;
  EXPECT_THROW(JctPredictor::fit(jobs, {}, with_groups), util::InvalidArgument);
  JobDag no_times = jobs[0];
  for (auto& t : no_times.tasks) t.start_time = 0;
  const std::vector<JobDag> unusable{no_times};
  EXPECT_THROW(JctPredictor::fit(unusable, {}, PredictorConfig{}),
               util::InvalidArgument);
  JctPredictor unfitted;
  EXPECT_THROW((void)JctPredictor{}.predict(jobs[0]), util::InvalidArgument);
}

TEST(JctPredictor, TopologyFeaturesBeatSizeOnlyOnGeneratedWorkload) {
  // Wall time tracks the critical path (stages run serially), not the raw
  // size: jobs of equal size but different depth diverge, which only the
  // topology-aware model can capture.
  trace::GeneratorConfig gen;
  gen.seed = 77;
  gen.num_jobs = 6000;
  gen.emit_instances = false;
  const auto data = trace::TraceGenerator(gen).generate();
  PipelineConfig pipe;
  pipe.sample_size = 300;
  pipe.sampling = SamplingMode::Natural;
  const auto sample = CharacterizationPipeline(pipe).build_sample(data);
  const std::size_t split = sample.size() / 2;
  const std::vector<JobDag> train(sample.begin(), sample.begin() + split);
  const std::vector<JobDag> test(sample.begin() + split, sample.end());

  PredictorConfig size_only;
  size_only.use_topology = false;
  size_only.use_plan = false;
  PredictorConfig topology;
  topology.use_plan = false;

  const auto size_model = JctPredictor::fit(train, {}, size_only);
  const auto topo_model = JctPredictor::fit(train, {}, topology);
  const auto size_eval = size_model.evaluate(test, {});
  const auto topo_eval = topo_model.evaluate(test, {});
  EXPECT_GT(topo_eval.r2, size_eval.r2);
  // Stage durations are lognormal (sigma 1), so linear R^2 is inherently
  // modest; the point is that topology clearly helps.
  EXPECT_GT(topo_eval.r2, 0.2);
}

TEST(JctPredictor, GroupFeaturesAreUsable) {
  trace::GeneratorConfig gen;
  gen.seed = 78;
  gen.num_jobs = 3000;
  gen.emit_instances = false;
  const auto data = trace::TraceGenerator(gen).generate();
  PipelineConfig pipe;
  pipe.sample_size = 120;
  const auto sample = CharacterizationPipeline(pipe).build_sample(data);
  const auto sim = SimilarityAnalysis::compute(sample);
  ClusteringOptions copt;
  const auto clustering = ClusteringAnalysis::compute(sim.gram, sample, copt);

  PredictorConfig cfg;
  cfg.num_groups = copt.clusters;
  const auto model = JctPredictor::fit(sample, clustering.labels, cfg);
  const auto eval = model.evaluate(sample, clustering.labels);
  EXPECT_GT(eval.r2, 0.3);
  EXPECT_EQ(model.weights().size(),
            1u + 1u + 2u + 3u + static_cast<std::size_t>(copt.clusters));
}

}  // namespace
}  // namespace cwgl::core

// Full-trace train/serve round-trip: a snapshot fitted on EVERY eligible
// job (one representative per distinct shape, count-weighted) must assign
// each training exemplar back to its shape's cluster, survive
// serialize/deserialize bit-true in behavior, and report sane per-section
// sizes.

#include <gtest/gtest.h>

#include <cstddef>
#include <utility>

#include "core/pipeline.hpp"
#include "model/fit.hpp"
#include "model/format.hpp"
#include "serve/classifier.hpp"
#include "trace/generator.hpp"

namespace cwgl::model {
namespace {

trace::Trace small_trace(std::uint64_t seed = 7, std::size_t jobs = 2000) {
  trace::GeneratorConfig cfg;
  cfg.num_jobs = jobs;
  cfg.seed = seed;
  cfg.emit_instances = false;
  return trace::TraceGenerator(cfg).generate();
}

struct FullFit {
  core::FullTraceResult result;
  FittedModel model;
};

FullFit run_full_fit() {
  const trace::Trace data = small_trace();
  const core::PipelineConfig cfg;
  core::FittedFeatures fitted;
  core::CharacterizationPipeline pipeline(cfg);
  FullFit out{pipeline.run_full(data, nullptr, &fitted), {}};
  out.model = build_model_full(out.result, std::move(fitted), cfg);
  return out;
}

TEST(FullFitTest, OneRepresentativePerShapeWithMultiplicity) {
  const FullFit fit = run_full_fit();
  std::size_t reps = 0;
  std::uint64_t weight = 0;
  for (const auto& cluster : fit.model.representatives) {
    for (const Representative& rep : cluster) {
      ++reps;
      weight += rep.count;
      EXPECT_GE(rep.count, 1u);
    }
  }
  EXPECT_EQ(reps, fit.result.table.size());
  EXPECT_EQ(weight, fit.result.total_jobs());
}

TEST(FullFitTest, ClassifierReassignsExemplarsToTheirGroups) {
  const FullFit fit = run_full_fit();
  FittedModel copy = fit.model;
  const serve::Classifier classifier(std::move(copy));
  for (std::size_t t = 0; t < fit.result.table.size(); ++t) {
    const serve::Prediction p =
        classifier.classify(fit.result.table.exemplars[t]);
    EXPECT_EQ(p.cluster, fit.result.shape_labels[t]) << "shape " << t;
    EXPECT_NEAR(p.similarity, 1.0, 1e-9);
  }
}

TEST(FullFitTest, SurvivesSerializeRoundTrip) {
  FullFit fit = run_full_fit();
  const std::string bytes = serialize_model(fit.model);
  const FittedModel loaded = deserialize_model(bytes);
  EXPECT_EQ(loaded.training_jobs(), fit.model.training_jobs());
  EXPECT_EQ(loaded.profiles.size(), fit.model.profiles.size());

  const serve::Classifier a(std::move(fit.model));
  FittedModel copy = loaded;
  const serve::Classifier b(std::move(copy));
  for (std::size_t t = 0; t < fit.result.table.size() && t < 50; ++t) {
    const auto pa = a.classify(fit.result.table.exemplars[t]);
    const auto pb = b.classify(fit.result.table.exemplars[t]);
    EXPECT_EQ(pa.cluster, pb.cluster);
    EXPECT_DOUBLE_EQ(pa.similarity, pb.similarity);
  }
}

TEST(FullFitTest, SectionSizesAddUpToSerializedBytes) {
  const FullFit fit = run_full_fit();
  const SectionSizes sizes = section_sizes(fit.model);
  const std::string bytes = serialize_model(fit.model);
  EXPECT_EQ(sizes.total, bytes.size());
  EXPECT_EQ(sizes.total, kModelMagic.size() + 4 + 4 + 5 * 16 + sizes.conf +
                             sizes.dict + sizes.prof + sizes.reps + sizes.shpc);
  EXPECT_GT(sizes.dict, 0u);
  EXPECT_GT(sizes.reps, 0u);
  EXPECT_GT(sizes.shpc, 0u);
}

TEST(FullFitTest, MismatchedInputsThrow) {
  const trace::Trace data = small_trace(9, 800);
  const core::PipelineConfig cfg;
  core::FittedFeatures fitted;
  core::CharacterizationPipeline pipeline(cfg);
  auto result = pipeline.run_full(data, nullptr, &fitted);
  fitted.vectors.pop_back();
  EXPECT_THROW(build_model_full(result, std::move(fitted), cfg), ModelError);
}

}  // namespace
}  // namespace cwgl::model

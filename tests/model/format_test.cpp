#include "model/format.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <string>

#include "model/model.hpp"
#include "util/error.hpp"

namespace cwgl::model {
namespace {

Representative make_rep(std::string name, std::uint64_t index,
                        std::vector<std::pair<int, double>> items) {
  Representative rep;
  rep.job_name = std::move(name);
  rep.training_index = index;
  rep.features.items = std::move(items);
  rep.self_norm = rep.features.norm();
  return rep;
}

ClusterProfile make_profile(std::uint64_t population, double fraction) {
  ClusterProfile p;
  p.population = population;
  p.population_fraction = fraction;
  p.mean_size = 3.5;
  p.median_size = 3.0;
  p.mean_critical_path = 2.5;
  p.median_critical_path = 2.0;
  p.mean_width = 1.5;
  p.median_width = 1.0;
  p.chain_fraction = 0.75;
  p.short_job_fraction = 0.25;
  return p;
}

/// A small but fully populated model exercising every field of the format:
/// two clusters, asymmetric representative counts, iteration weights.
FittedModel tiny_model() {
  FittedModel m;
  m.wl.iterations = 1;
  m.wl.directed = true;
  m.wl.iteration_weights = {1.0, 0.5};
  m.use_type_labels = true;
  m.normalize = true;
  m.conflated = false;
  m.dictionary = {"77", "82", "1:a", "1:b"};
  m.profiles = {make_profile(3, 0.75), make_profile(1, 0.25)};
  m.representatives = {
      {make_rep("j_1", 0, {{0, 1.0}, {2, 2.0}}),
       make_rep("j_2", 1, {{0, 2.0}, {3, 1.0}}),
       make_rep("j_3", 3, {{1, 1.0}})},
      {make_rep("j_4", 2, {{1, 3.0}, {2, 0.5}, {3, 0.5}})},
  };
  m.profiles[0].medoid = 1;
  m.profiles[1].medoid = 0;
  return m;
}

TEST(ModelFormatTest, RoundTripPreservesEveryField) {
  const FittedModel m = tiny_model();
  const std::string bytes = serialize_model(m);
  const FittedModel back = deserialize_model(bytes);
  EXPECT_EQ(back, m);
}

TEST(ModelFormatTest, SerializationIsDeterministic) {
  EXPECT_EQ(serialize_model(tiny_model()), serialize_model(tiny_model()));
}

TEST(ModelFormatTest, SaveLoadRoundTripsThroughDisk) {
  const auto path = std::filesystem::temp_directory_path() /
                    "cwgl_format_test_model.cwgl";
  const FittedModel m = tiny_model();
  save_model(m, path);
  EXPECT_EQ(load_model(path), m);
  std::filesystem::remove(path);
}

TEST(ModelFormatTest, RejectsEveryTruncation) {
  const std::string bytes = serialize_model(tiny_model());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW(deserialize_model(bytes.substr(0, len)), ModelError)
        << "prefix of " << len << " bytes accepted";
  }
}

TEST(ModelFormatTest, RejectsTrailingBytes) {
  std::string bytes = serialize_model(tiny_model());
  bytes.push_back('\0');
  EXPECT_THROW(deserialize_model(bytes), ModelError);
}

TEST(ModelFormatTest, RejectsBadMagic) {
  std::string bytes = serialize_model(tiny_model());
  bytes[0] = 'X';
  EXPECT_THROW(deserialize_model(bytes), ModelError);
}

TEST(ModelFormatTest, RejectsUnsupportedVersion) {
  std::string bytes = serialize_model(tiny_model());
  bytes[kModelMagic.size()] = 2;  // little-endian version field
  EXPECT_THROW(deserialize_model(bytes), ModelError);
}

TEST(ModelFormatTest, RejectsPayloadCorruption) {
  const std::string clean = serialize_model(tiny_model());
  // Flip the last payload byte (inside REPS, far from any length field):
  // only the section CRC can catch this.
  std::string bytes = clean;
  bytes[bytes.size() - 1] = static_cast<char>(bytes[bytes.size() - 1] ^ 0x01);
  EXPECT_THROW(deserialize_model(bytes), ModelError);
}

// The satellite requirement: EVERY single-bit corruption anywhere in the
// snapshot must surface as a typed error — CRC mismatch, bounds failure, or
// semantic validation — never silent acceptance and never UB (the ASan/UBSan
// configurations of scripts/check.sh run this very loop under sanitizers).
TEST(ModelFormatTest, EverySingleBitFlipIsCaught) {
  const std::string clean = serialize_model(tiny_model());
  for (std::size_t byte = 0; byte < clean.size(); ++byte) {
    // One deterministic bit per byte keeps the loop O(size) while still
    // touching every byte of every section.
    const char mask = static_cast<char>(1 << (byte % 8));
    std::string corrupt = clean;
    corrupt[byte] = static_cast<char>(corrupt[byte] ^ mask);
    EXPECT_THROW(deserialize_model(corrupt), util::Error)
        << "bit flip at byte " << byte << " went undetected";
  }
}

TEST(ModelFormatTest, RejectsSemanticViolationsAfterDecode) {
  // Byte-level intact, semantically broken: feature id outside the frozen
  // dictionary. serialize_model() itself refuses to encode it.
  FittedModel m = tiny_model();
  m.representatives[0][0].features.items.back().first = 99;
  EXPECT_THROW(serialize_model(m), ModelError);
}

TEST(ModelFormatTest, RejectsInconsistentSelfNorm) {
  FittedModel m = tiny_model();
  m.representatives[0][0].self_norm += 1.0;
  EXPECT_THROW(serialize_model(m), ModelError);
}

TEST(ModelFormatTest, LoadOfMissingFileIsTypedError) {
  EXPECT_THROW(load_model("/nonexistent/cwgl/model.cwgl"), ModelError);
}

}  // namespace
}  // namespace cwgl::model

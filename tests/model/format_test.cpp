#include "model/format.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "model/model.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"

namespace cwgl::model {
namespace {

Representative make_rep(std::string name, std::uint64_t index,
                        std::vector<std::pair<int, double>> items) {
  Representative rep;
  rep.job_name = std::move(name);
  rep.training_index = index;
  rep.features.items = std::move(items);
  rep.self_norm = rep.features.norm();
  return rep;
}

ClusterProfile make_profile(std::uint64_t population, double fraction) {
  ClusterProfile p;
  p.population = population;
  p.population_fraction = fraction;
  p.mean_size = 3.5;
  p.median_size = 3.0;
  p.mean_critical_path = 2.5;
  p.median_critical_path = 2.0;
  p.mean_width = 1.5;
  p.median_width = 1.0;
  p.chain_fraction = 0.75;
  p.short_job_fraction = 0.25;
  return p;
}

/// A small but fully populated model exercising every field of the format:
/// two clusters, asymmetric representative counts, iteration weights.
FittedModel tiny_model() {
  FittedModel m;
  m.wl.iterations = 1;
  m.wl.directed = true;
  m.wl.iteration_weights = {1.0, 0.5};
  m.use_type_labels = true;
  m.normalize = true;
  m.conflated = false;
  m.dictionary = {"77", "82", "1:a", "1:b"};
  m.profiles = {make_profile(3, 0.75), make_profile(1, 0.25)};
  m.representatives = {
      {make_rep("j_1", 0, {{0, 1.0}, {2, 2.0}}),
       make_rep("j_2", 1, {{0, 2.0}, {3, 1.0}}),
       make_rep("j_3", 3, {{1, 1.0}})},
      {make_rep("j_4", 2, {{1, 3.0}, {2, 0.5}, {3, 0.5}})},
  };
  m.profiles[0].medoid = 1;
  m.profiles[1].medoid = 0;
  return m;
}

TEST(ModelFormatTest, RoundTripPreservesEveryField) {
  const FittedModel m = tiny_model();
  const std::string bytes = serialize_model(m);
  const FittedModel back = deserialize_model(bytes);
  EXPECT_EQ(back, m);
}

TEST(ModelFormatTest, SerializationIsDeterministic) {
  EXPECT_EQ(serialize_model(tiny_model()), serialize_model(tiny_model()));
}

TEST(ModelFormatTest, SaveLoadRoundTripsThroughDisk) {
  const auto path = std::filesystem::temp_directory_path() /
                    "cwgl_format_test_model.cwgl";
  const FittedModel m = tiny_model();
  save_model(m, path);
  EXPECT_EQ(load_model(path), m);
  std::filesystem::remove(path);
}

TEST(ModelFormatTest, RejectsEveryTruncation) {
  const std::string bytes = serialize_model(tiny_model());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW(deserialize_model(bytes.substr(0, len)), ModelError)
        << "prefix of " << len << " bytes accepted";
  }
}

TEST(ModelFormatTest, RejectsTrailingBytes) {
  std::string bytes = serialize_model(tiny_model());
  bytes.push_back('\0');
  EXPECT_THROW(deserialize_model(bytes), ModelError);
}

TEST(ModelFormatTest, RejectsBadMagic) {
  std::string bytes = serialize_model(tiny_model());
  bytes[0] = 'X';
  EXPECT_THROW(deserialize_model(bytes), ModelError);
}

TEST(ModelFormatTest, RejectsUnsupportedVersion) {
  std::string bytes = serialize_model(tiny_model());
  bytes[kModelMagic.size()] = 3;  // little-endian version field
  EXPECT_THROW(deserialize_model(bytes), ModelError);
  bytes[kModelMagic.size()] = 0;
  EXPECT_THROW(deserialize_model(bytes), ModelError);
}

TEST(ModelFormatTest, RejectsPayloadCorruption) {
  const std::string clean = serialize_model(tiny_model());
  // Flip the last payload byte (inside REPS, far from any length field):
  // only the section CRC can catch this.
  std::string bytes = clean;
  bytes[bytes.size() - 1] = static_cast<char>(bytes[bytes.size() - 1] ^ 0x01);
  EXPECT_THROW(deserialize_model(bytes), ModelError);
}

// The satellite requirement: EVERY single-bit corruption anywhere in the
// snapshot must surface as a typed error — CRC mismatch, bounds failure, or
// semantic validation — never silent acceptance and never UB (the ASan/UBSan
// configurations of scripts/check.sh run this very loop under sanitizers).
TEST(ModelFormatTest, EverySingleBitFlipIsCaught) {
  const std::string clean = serialize_model(tiny_model());
  for (std::size_t byte = 0; byte < clean.size(); ++byte) {
    // One deterministic bit per byte keeps the loop O(size) while still
    // touching every byte of every section.
    const char mask = static_cast<char>(1 << (byte % 8));
    std::string corrupt = clean;
    corrupt[byte] = static_cast<char>(corrupt[byte] ^ mask);
    EXPECT_THROW(deserialize_model(corrupt), util::Error)
        << "bit flip at byte " << byte << " went undetected";
  }
}

TEST(ModelFormatTest, RejectsSemanticViolationsAfterDecode) {
  // Byte-level intact, semantically broken: feature id outside the frozen
  // dictionary. serialize_model() itself refuses to encode it.
  FittedModel m = tiny_model();
  m.representatives[0][0].features.items.back().first = 99;
  EXPECT_THROW(serialize_model(m), ModelError);
}

TEST(ModelFormatTest, RejectsInconsistentSelfNorm) {
  FittedModel m = tiny_model();
  m.representatives[0][0].self_norm += 1.0;
  EXPECT_THROW(serialize_model(m), ModelError);
}

TEST(ModelFormatTest, LoadOfMissingFileIsTypedError) {
  EXPECT_THROW(load_model("/nonexistent/cwgl/model.cwgl"), ModelError);
}

// ---------------------------------------------------------------------------
// SHPC (shape multiplicity) section — the v2 addition. Corruptions here must
// keep valid CRCs so the decoder reaches the structural/semantic checks the
// section-level CRC cannot provide.
// ---------------------------------------------------------------------------

void put_u32le(std::string& out, std::uint32_t v) {
  for (int s = 0; s < 32; s += 8) {
    out.push_back(static_cast<char>((v >> s) & 0xFFu));
  }
}

void put_u64le(std::string& out, std::uint64_t v) {
  for (int s = 0; s < 64; s += 8) {
    out.push_back(static_cast<char>((v >> s) & 0xFFu));
  }
}

struct SectionSpan {
  std::size_t header;   // offset of the tag field
  std::size_t payload;  // offset of the first payload byte
  std::uint64_t size;   // payload size
};

/// Walks the section headers to locate section `index` (0-based).
SectionSpan locate_section(const std::string& bytes, std::size_t index) {
  std::size_t pos = kModelMagic.size() + 8;  // magic + version + section count
  for (std::size_t i = 0;; ++i) {
    std::uint64_t size = 0;
    for (int b = 0; b < 8; ++b) {
      size |= static_cast<std::uint64_t>(
                  static_cast<unsigned char>(bytes[pos + 4 + b]))
              << (8 * b);
    }
    const SectionSpan span{pos, pos + 4 + 8 + 4, size};
    if (i == index) return span;
    pos = span.payload + static_cast<std::size_t>(size);
  }
}

/// Replaces the trailing SHPC section with `payload`, CRC recomputed so only
/// the payload semantics are wrong.
std::string with_replaced_shpc(const std::string& clean,
                               const std::string& payload) {
  const SectionSpan shpc = locate_section(clean, 4);
  std::string out = clean.substr(0, shpc.header);
  out.append("SHPC");
  put_u64le(out, payload.size());
  put_u32le(out, util::crc32(payload));
  out.append(payload);
  return out;
}

/// tiny_model with non-trivial shape multiplicities, as an interned fit
/// produces: 4 representatives standing for 11 training jobs.
FittedModel interned_model() {
  FittedModel m = tiny_model();
  m.representatives[0][0].count = 2;
  m.representatives[0][1].count = 3;
  m.profiles[0].population = 6;  // 2 + 3 + 1
  m.representatives[1][0].count = 5;
  m.profiles[1].population = 5;
  return m;
}

TEST(ModelFormatTest, ShapeCountsRoundTrip) {
  const FittedModel m = interned_model();
  const FittedModel back = deserialize_model(serialize_model(m));
  EXPECT_EQ(back, m);
  EXPECT_EQ(back.training_jobs(), 4u);
  EXPECT_EQ(back.training_weight(), 11u);
}

TEST(ModelFormatTest, LegacyV1SnapshotLoadsWithUnitCounts) {
  // A v1 snapshot is the v2 snapshot minus the SHPC section, with the
  // version and section-count fields rewritten. Every count defaults to 1.
  const FittedModel m = tiny_model();
  std::string bytes = serialize_model(m);
  const SectionSpan shpc = locate_section(bytes, 4);
  bytes.resize(shpc.header);
  bytes[kModelMagic.size()] = 1;      // version (little-endian low byte)
  bytes[kModelMagic.size() + 4] = 4;  // section count
  const FittedModel back = deserialize_model(bytes);
  EXPECT_EQ(back, m);  // tiny_model's counts are all 1 — the v1 default
  EXPECT_EQ(back.training_weight(), back.training_jobs());
}

TEST(ModelFormatTest, RejectsShpcClusterArityMismatch) {
  std::string payload;
  put_u64le(payload, 1);  // claims 1 cluster, REPS decoded 2
  put_u64le(payload, 3);
  for (int i = 0; i < 3; ++i) put_u64le(payload, 1);
  const std::string bytes =
      with_replaced_shpc(serialize_model(tiny_model()), payload);
  EXPECT_THROW(deserialize_model(bytes), ModelError);
}

TEST(ModelFormatTest, RejectsShpcRepArityMismatch) {
  std::string payload;
  put_u64le(payload, 2);
  put_u64le(payload, 2);  // cluster 0 has 3 representatives, not 2
  for (int i = 0; i < 2; ++i) put_u64le(payload, 1);
  put_u64le(payload, 1);
  put_u64le(payload, 1);
  const std::string bytes =
      with_replaced_shpc(serialize_model(tiny_model()), payload);
  EXPECT_THROW(deserialize_model(bytes), ModelError);
}

TEST(ModelFormatTest, RejectsZeroShapeCount) {
  std::string payload;
  put_u64le(payload, 2);
  put_u64le(payload, 3);
  put_u64le(payload, 0);  // zero multiplicity — semantically impossible
  put_u64le(payload, 1);
  put_u64le(payload, 1);
  put_u64le(payload, 1);
  put_u64le(payload, 1);
  const std::string bytes =
      with_replaced_shpc(serialize_model(tiny_model()), payload);
  EXPECT_THROW(deserialize_model(bytes), ModelError);
}

TEST(ModelFormatTest, RejectsCountsThatDoNotSumToPopulation) {
  std::string payload;
  put_u64le(payload, 2);
  put_u64le(payload, 3);
  put_u64le(payload, 2);  // cluster 0 now sums to 4, population says 3
  put_u64le(payload, 1);
  put_u64le(payload, 1);
  put_u64le(payload, 1);
  put_u64le(payload, 1);
  const std::string bytes =
      with_replaced_shpc(serialize_model(tiny_model()), payload);
  EXPECT_THROW(deserialize_model(bytes), ModelError);
}

}  // namespace
}  // namespace cwgl::model

// Train/serve round-trip guarantees: a fitted snapshot must reproduce the
// pipeline's own cluster assignments exactly, survive save/load bit-true in
// behavior, and be independent of whether the fit itself ran pooled or
// serial (the model-store export path forces serial featurization so the
// frozen dictionary is a pure function of trace + config).

#include "model/fit.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <utility>

#include "core/pipeline.hpp"
#include "model/format.hpp"
#include "serve/classifier.hpp"
#include "trace/generator.hpp"
#include "util/thread_pool.hpp"

namespace cwgl::model {
namespace {

trace::Trace small_trace(std::uint64_t seed = 7, std::size_t jobs = 300) {
  trace::GeneratorConfig cfg;
  cfg.num_jobs = jobs;
  cfg.seed = seed;
  cfg.emit_instances = false;
  return trace::TraceGenerator(cfg).generate();
}

core::PipelineConfig small_config() {
  core::PipelineConfig cfg;
  cfg.sample_size = 60;
  cfg.clustering.clusters = 4;
  return cfg;
}

struct Fit {
  core::PipelineResult result;
  FittedModel model;
};

Fit run_fit(util::ThreadPool* pool) {
  const trace::Trace data = small_trace();
  const core::PipelineConfig cfg = small_config();
  core::FittedFeatures fitted;
  Fit out{core::CharacterizationPipeline(cfg).run(data, pool, &fitted), {}};
  out.model = build_model(out.result, std::move(fitted), cfg);
  return out;
}

TEST(ModelFitTest, SnapshotReproducesPipelineClusterAssignments) {
  util::ThreadPool pool(4);
  const Fit fit = run_fit(&pool);
  ASSERT_EQ(fit.model.training_jobs(), fit.result.sample.size());

  FittedModel copy = fit.model;
  const serve::Classifier classifier(std::move(copy));
  for (std::size_t i = 0; i < fit.result.sample.size(); ++i) {
    const serve::Prediction p = classifier.classify(fit.result.sample[i]);
    EXPECT_EQ(p.cluster, fit.result.clustering.labels[i])
        << "job " << fit.result.sample[i].job_name;
    // A training job matches itself: normalized similarity 1 (within FP).
    EXPECT_NEAR(p.similarity, 1.0, 1e-9);
    EXPECT_EQ(p.oov_hits, 0u);
  }
}

TEST(ModelFitTest, PooledAndSerialFitsProduceIdenticalModels) {
  util::ThreadPool pool(4);
  const Fit pooled = run_fit(&pool);
  const Fit serial = run_fit(nullptr);
  EXPECT_EQ(pooled.model, serial.model);
}

TEST(ModelFitTest, SaveLoadPreservesEveryPrediction) {
  util::ThreadPool pool(2);
  const Fit fit = run_fit(&pool);
  const auto path =
      std::filesystem::temp_directory_path() / "cwgl_fit_test_model.cwgl";
  save_model(fit.model, path);
  const FittedModel loaded = load_model(path);
  std::filesystem::remove(path);
  EXPECT_EQ(loaded, fit.model);

  FittedModel copy = fit.model;
  const serve::Classifier original(std::move(copy));
  const serve::Classifier reloaded(loaded);
  for (const core::JobDag& job : fit.result.sample) {
    const serve::Prediction a = original.classify(job);
    const serve::Prediction b = reloaded.classify(job);
    EXPECT_EQ(a.cluster, b.cluster);
    EXPECT_EQ(a.similarity, b.similarity);
    EXPECT_EQ(a.nearest_job, b.nearest_job);
  }
}

TEST(ModelFitTest, ProfilesMatchClusteringGroups) {
  const Fit fit = run_fit(nullptr);
  ASSERT_EQ(fit.model.profiles.size(), fit.result.clustering.groups.size());
  for (std::size_t c = 0; c < fit.model.profiles.size(); ++c) {
    const auto& profile = fit.model.profiles[c];
    const auto& group = fit.result.clustering.groups[c];
    EXPECT_EQ(profile.population, group.population);
    EXPECT_DOUBLE_EQ(profile.median_critical_path, group.critical_path.median);
    EXPECT_DOUBLE_EQ(profile.median_width, group.parallelism.median);
    // The within-cluster medoid index points back at the group's medoid job.
    ASSERT_LT(profile.medoid, fit.model.representatives[c].size());
    EXPECT_EQ(fit.model.representatives[c][profile.medoid].training_index,
              group.medoid);
  }
}

TEST(ModelFitTest, MismatchedInputsAreRejected) {
  const trace::Trace data = small_trace();
  const core::PipelineConfig cfg = small_config();
  core::FittedFeatures fitted;
  const auto result =
      core::CharacterizationPipeline(cfg).run(data, nullptr, &fitted);
  fitted.vectors.pop_back();  // now disagrees with the clustering labels
  EXPECT_THROW(build_model(result, std::move(fitted), cfg), ModelError);
}

}  // namespace
}  // namespace cwgl::model

// Golden-model regression: a tiny fitted snapshot is committed under
// tests/data/ (produced by `cwgl fit` on the bundled example trace, see the
// README quickstart). This suite pins the artifact's observable behavior —
// if the WL featurizer, the frozen-dictionary id assignment, the kernel
// normalization, or the binary format drifts incompatibly, these tests go
// red BEFORE any deployed model silently misclassifies.
//
// Regenerating after an INTENTIONAL format/pipeline change:
//   cwgl generate --out tests/data/example_trace --jobs 300 --seed 7 --no-instances
//   cwgl fit --trace tests/data/example_trace --sample 60 --clusters 4 \
//            --out tests/data/example_model.cwgl
// then re-pin the expected clusters below from
//   cwgl predict --model tests/data/example_model.cwgl tests/data/probe_jobs.csv

#include <gtest/gtest.h>

#include <cstddef>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "model/fit.hpp"
#include "model/format.hpp"
#include "model/model.hpp"
#include "serve/classifier.hpp"
#include "trace/filter.hpp"
#include "trace/io.hpp"
#include "util/thread_pool.hpp"

namespace cwgl::model {
namespace {

constexpr const char* kDataDir = CWGL_TEST_DATA_DIR;

// Pinned from the committed artifact (see header for the regeneration
// recipe). The two probe jobs are structural opposites: a straight chain
// (M1 -> R2 -> J3) and an inverted triangle (M1, M2 -> J3).
constexpr int kExpectedClusters = 4;
constexpr std::size_t kExpectedTrainingJobs = 60;
constexpr int kExpectedChainCluster = 2;     // group C
constexpr int kExpectedTriangleCluster = 3;  // group D

FittedModel golden() {
  return load_model(std::string(kDataDir) + "/example_model.cwgl");
}

std::vector<core::JobDag> probe_jobs() {
  std::ifstream in(std::string(kDataDir) + "/probe_jobs.csv");
  EXPECT_TRUE(in.is_open());
  return core::build_all_dag_jobs(in, trace::SamplingCriteria{});
}

TEST(GoldenModelTest, ArtifactLoadsWithPinnedShape) {
  const FittedModel m = golden();
  EXPECT_EQ(m.num_clusters(), static_cast<std::size_t>(kExpectedClusters));
  EXPECT_EQ(m.training_jobs(), kExpectedTrainingJobs);
  EXPECT_FALSE(m.dictionary.empty());
  EXPECT_EQ(m.wl.iterations, 1);
}

TEST(GoldenModelTest, HeldOutProbesLandInPinnedClusters) {
  const serve::Classifier classifier(golden());
  const std::vector<core::JobDag> probes = probe_jobs();
  ASSERT_EQ(probes.size(), 2u);

  const core::JobDag& chain = probes[0].job_name == "j_chain" ? probes[0]
                                                              : probes[1];
  const core::JobDag& triangle = probes[0].job_name == "j_triangle"
                                     ? probes[0]
                                     : probes[1];
  ASSERT_EQ(chain.job_name, "j_chain");
  ASSERT_EQ(triangle.job_name, "j_triangle");

  const serve::Prediction chain_p = classifier.classify(chain);
  const serve::Prediction triangle_p = classifier.classify(triangle);

  EXPECT_EQ(chain_p.cluster, kExpectedChainCluster);
  EXPECT_EQ(triangle_p.cluster, kExpectedTriangleCluster);
  // The probes are structurally distinct enough that they must not share a
  // group under this model.
  EXPECT_NE(chain_p.cluster, triangle_p.cluster);
  EXPECT_GT(chain_p.similarity, 0.5);
  EXPECT_GT(triangle_p.similarity, 0.5);
}

TEST(GoldenModelTest, InternedFitReproducesGoldenClassifications) {
  // Re-fit on the committed example trace with shape interning enabled and
  // the exact configuration of the golden recipe. The interned snapshot is
  // smaller (one representative per distinct shape) but must classify the
  // held-out probes into the SAME pinned clusters as the committed direct
  // model — the serving contract of `--intern`.
  const trace::Trace data =
      trace::read_trace(std::string(kDataDir) + "/example_trace");
  core::PipelineConfig cfg;
  cfg.sample_size = kExpectedTrainingJobs;
  cfg.clustering.clusters = kExpectedClusters;
  cfg.intern_shapes = true;
  util::ThreadPool pool;
  core::FittedFeatures fitted;
  const core::PipelineResult result =
      core::CharacterizationPipeline(cfg).run(data, &pool, &fitted);
  ASSERT_TRUE(result.interned.has_value());

  const FittedModel snapshot =
      model::build_model(result, std::move(fitted), cfg);
  EXPECT_EQ(snapshot.training_weight(), kExpectedTrainingJobs);
  EXPECT_LT(snapshot.training_jobs(), kExpectedTrainingJobs)
      << "the example trace has recurring shapes; interning must dedup them";

  // Dictionary byte-identity: the interned fit freezes the very same WL
  // dictionary as the committed direct fit.
  const FittedModel direct = golden();
  EXPECT_EQ(snapshot.dictionary, direct.dictionary);

  // Round-trip through the v2 wire format, then classify the probes.
  const FittedModel reloaded = deserialize_model(serialize_model(snapshot));
  EXPECT_EQ(reloaded, snapshot);
  const serve::Classifier classifier(reloaded);
  const serve::Classifier golden_classifier(direct);
  for (const core::JobDag& probe : probe_jobs()) {
    const serve::Prediction interned_p = classifier.classify(probe);
    const serve::Prediction direct_p = golden_classifier.classify(probe);
    EXPECT_EQ(interned_p.cluster, direct_p.cluster) << probe.job_name;
    const int expected = probe.job_name == "j_chain" ? kExpectedChainCluster
                                                     : kExpectedTriangleCluster;
    EXPECT_EQ(interned_p.cluster, expected) << probe.job_name;
  }
}

TEST(GoldenModelTest, GoldenPredictionsAreByteStable) {
  // Serializing the loaded model reproduces the on-disk bytes exactly:
  // load -> save is the identity on canonical snapshots.
  const std::string path = std::string(kDataDir) + "/example_model.cwgl";
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.is_open());
  const std::string on_disk((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
  EXPECT_EQ(serialize_model(golden()), on_disk);
}

}  // namespace
}  // namespace cwgl::model

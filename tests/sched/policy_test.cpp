#include "sched/policy.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "sched/cluster_state.hpp"
#include "sched/simulator.hpp"
#include "util/error.hpp"

namespace cwgl::sched {
namespace {

/// Builds a 3-job context: job0 = heavy chain, job1 = light single task,
/// job2 = medium fan, with distinct arrivals and hints.
struct Fixture {
  std::vector<SimJob> jobs;
  std::vector<std::vector<double>> ranks;
  std::vector<GroupProfile> profiles;
  PolicyContext ctx;

  Fixture() {
    SimJob heavy;
    heavy.name = "heavy";
    heavy.arrival = 2.0;
    heavy.dag = graph::Digraph(2, std::vector<graph::Edge>{{0, 1}});
    heavy.tasks = {SimTask{100, 1, 50}, SimTask{100, 1, 50}};
    heavy.hint_group = 1;

    SimJob light;
    light.name = "light";
    light.arrival = 0.0;
    light.dag = graph::Digraph(1, {});
    light.tasks = {SimTask{10, 1, 1}};
    light.hint_group = 0;

    SimJob medium;
    medium.name = "medium";
    medium.arrival = 1.0;
    medium.dag = graph::Digraph(3, std::vector<graph::Edge>{{0, 2}, {1, 2}});
    medium.tasks = {SimTask{20, 1, 5}, SimTask{20, 1, 5}, SimTask{20, 1, 5}};
    medium.hint_group = -1;  // unhinted

    jobs = {heavy, light, medium};
    for (const SimJob& j : jobs) ranks.push_back(upward_ranks(j));
    profiles.resize(2);
    profiles[0].expected_work = 10.0;
    profiles[1].expected_work = 10000.0;
    ctx.jobs = jobs;
    ctx.task_rank = ranks;
    ctx.profiles = profiles;
  }

  std::vector<ReadyTask> all_roots() const {
    return {{0, 0, 5.0}, {1, 0, 5.0}, {2, 0, 5.0}, {2, 1, 5.0}};
  }
};

TEST(FifoPolicy, OrdersByJobArrival) {
  Fixture f;
  auto ready = f.all_roots();
  FifoPolicy{}.prioritize(ready, f.ctx);
  EXPECT_EQ(ready[0].job, 1u);  // arrival 0
  EXPECT_EQ(ready[1].job, 2u);  // arrival 1
  EXPECT_EQ(ready[2].job, 2u);
  EXPECT_EQ(ready[3].job, 0u);  // arrival 2
}

TEST(CriticalPathFirstPolicy, OrdersByUpwardRank) {
  Fixture f;
  auto ready = f.all_roots();
  CriticalPathFirstPolicy{}.prioritize(ready, f.ctx);
  // heavy root rank = 100, medium roots rank = 10, light rank = 1.
  EXPECT_EQ(ready[0].job, 0u);
  EXPECT_EQ(ready[1].job, 2u);
  EXPECT_EQ(ready[2].job, 2u);
  EXPECT_EQ(ready[3].job, 1u);
}

TEST(ShortestJobFirstPolicy, OrdersByTotalWork) {
  Fixture f;
  auto ready = f.all_roots();
  ShortestJobFirstPolicy{}.prioritize(ready, f.ctx);
  // light total work 10, medium 300, heavy 10000.
  EXPECT_EQ(ready[0].job, 1u);
  EXPECT_EQ(ready[1].job, 2u);
  EXPECT_EQ(ready[3].job, 0u);
}

TEST(GroupHintPolicy, OrdersByPredictedGroupWork) {
  Fixture f;
  auto ready = f.all_roots();
  GroupHintPolicy{}.prioritize(ready, f.ctx);
  // light's group predicts 10, heavy's 10000, unhinted medium goes last.
  EXPECT_EQ(ready[0].job, 1u);
  EXPECT_EQ(ready[1].job, 0u);
  EXPECT_EQ(ready[2].job, 2u);
  EXPECT_EQ(ready[3].job, 2u);
}

TEST(GroupHintPolicy, DeterministicTieBreakWithinGroup) {
  Fixture f;
  auto a = f.all_roots();
  auto b = f.all_roots();
  std::reverse(b.begin(), b.end());
  GroupHintPolicy{}.prioritize(a, f.ctx);
  GroupHintPolicy{}.prioritize(b, f.ctx);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].job, b[i].job);
    EXPECT_EQ(a[i].vertex, b[i].vertex);
  }
}

TEST(AllPolicies, NamesAreDistinctAndStable) {
  FifoPolicy fifo;
  CriticalPathFirstPolicy cpf;
  ShortestJobFirstPolicy sjf;
  GroupHintPolicy hint;
  EXPECT_EQ(fifo.name(), "fifo");
  EXPECT_EQ(cpf.name(), "critical-path-first");
  EXPECT_EQ(sjf.name(), "shortest-job-first");
  EXPECT_EQ(hint.name(), "group-hint");
}

TEST(ClusterStateOnline, ReservationAffectsPlacement) {
  ClusterState c(1, 100, 100);
  c.set_online_reserved(0, 70);
  EXPECT_EQ(c.place_first_fit(40, 1), -1);  // only 30 free
  EXPECT_EQ(c.place_first_fit(30, 1), 0);
  EXPECT_NEAR(c.machine(0).cpu_free(), 0.0, 1e-12);
}

TEST(ClusterStateOnline, OvercommitAfterReservationRaise) {
  ClusterState c(1, 100, 100);
  ASSERT_EQ(c.place_first_fit(60, 1), 0);
  EXPECT_DOUBLE_EQ(c.machine(0).overcommit(), 0.0);
  c.set_online_reserved(0, 70);
  EXPECT_DOUBLE_EQ(c.machine(0).overcommit(), 30.0);
}

TEST(ClusterStateOnline, ReservationClampedToCapacity) {
  ClusterState c(1, 100, 100);
  c.set_online_reserved(0, 500.0);
  EXPECT_DOUBLE_EQ(c.machine(0).cpu_online_reserved, 100.0);
  c.set_online_reserved(0, -5.0);
  EXPECT_DOUBLE_EQ(c.machine(0).cpu_online_reserved, 0.0);
  EXPECT_THROW(c.set_online_reserved(3, 1.0), util::InvalidArgument);
}

}  // namespace
}  // namespace cwgl::sched

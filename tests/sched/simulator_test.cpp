#include "sched/simulator.hpp"

#include <gtest/gtest.h>

#include "sched/policy.hpp"
#include "util/error.hpp"

namespace cwgl::sched {
namespace {

SimJob make_job(std::string name, double arrival,
                const std::vector<graph::Edge>& edges,
                const std::vector<SimTask>& tasks) {
  SimJob job;
  job.name = std::move(name);
  job.arrival = arrival;
  job.dag = graph::Digraph(static_cast<int>(tasks.size()), edges);
  job.tasks = tasks;
  return job;
}

SimTask task(double cpu, double duration, double mem = 1.0) {
  return SimTask{cpu, mem, duration};
}

SimulatorConfig small_cluster(std::size_t machines = 1, double cpu = 100.0) {
  SimulatorConfig cfg;
  cfg.machines = machines;
  cfg.cpu_capacity = cpu;
  cfg.mem_capacity = 100.0;
  return cfg;
}

TEST(UpwardRanks, ChainAccumulatesDurations) {
  const auto job = make_job("j", 0.0, {{0, 1}, {1, 2}},
                            {task(10, 5), task(10, 7), task(10, 3)});
  const auto ranks = upward_ranks(job);
  EXPECT_DOUBLE_EQ(ranks[2], 3.0);
  EXPECT_DOUBLE_EQ(ranks[1], 10.0);
  EXPECT_DOUBLE_EQ(ranks[0], 15.0);
}

TEST(UpwardRanks, TakesLongestBranch) {
  const auto job = make_job("j", 0.0, {{0, 1}, {0, 2}, {1, 3}, {2, 3}},
                            {task(1, 1), task(1, 10), task(1, 2), task(1, 1)});
  const auto ranks = upward_ranks(job);
  EXPECT_DOUBLE_EQ(ranks[0], 1.0 + 10.0 + 1.0);
}

TEST(Simulator, SingleChainRunsSequentially) {
  const auto job = make_job("j", 0.0, {{0, 1}, {1, 2}},
                            {task(50, 10), task(50, 10), task(50, 10)});
  const FifoPolicy policy;
  const auto result = Simulator(small_cluster()).run({&job, 1}, policy);
  EXPECT_DOUBLE_EQ(result.makespan, 30.0);
  EXPECT_EQ(result.tasks_executed, 3u);
  EXPECT_DOUBLE_EQ(result.jobs[0].completion_time(), 30.0);
}

TEST(Simulator, ParallelTasksOverlapWhenCapacityAllows) {
  // Two independent tasks of 10s each, both fit together.
  const auto job = make_job("j", 0.0, {}, {task(40, 10), task(40, 10)});
  const FifoPolicy policy;
  const auto result = Simulator(small_cluster()).run({&job, 1}, policy);
  EXPECT_DOUBLE_EQ(result.makespan, 10.0);
}

TEST(Simulator, CapacitySerializesWhenFull) {
  // Two 60-cpu tasks cannot share a 100-cpu machine.
  const auto job = make_job("j", 0.0, {}, {task(60, 10), task(60, 10)});
  const FifoPolicy policy;
  const auto result = Simulator(small_cluster()).run({&job, 1}, policy);
  EXPECT_DOUBLE_EQ(result.makespan, 20.0);
}

TEST(Simulator, DependenciesNeverViolated) {
  // Child must wait for the parent even with idle capacity.
  const auto job = make_job("j", 0.0, {{0, 1}}, {task(10, 5), task(10, 5)});
  const FifoPolicy policy;
  const auto result = Simulator(small_cluster(4)).run({&job, 1}, policy);
  EXPECT_DOUBLE_EQ(result.makespan, 10.0);
}

TEST(Simulator, ArrivalTimeRespected) {
  const auto early = make_job("a", 0.0, {}, {task(10, 5)});
  const auto late = make_job("b", 100.0, {}, {task(10, 5)});
  const std::vector<SimJob> jobs{early, late};
  const FifoPolicy policy;
  const auto result = Simulator(small_cluster()).run(jobs, policy);
  EXPECT_DOUBLE_EQ(result.jobs[1].first_start, 100.0);
  EXPECT_DOUBLE_EQ(result.makespan, 105.0);
}

TEST(Simulator, OversizedTaskClampedAndCounted) {
  const auto job = make_job("j", 0.0, {}, {task(500, 10)});  // > 100 cpu
  const FifoPolicy policy;
  const auto result = Simulator(small_cluster()).run({&job, 1}, policy);
  EXPECT_EQ(result.oversized_tasks, 1u);
  EXPECT_DOUBLE_EQ(result.makespan, 10.0);  // runs clamped, never starves
}

TEST(Simulator, UtilizationBoundedAndPositive) {
  const auto job = make_job("j", 0.0, {}, {task(50, 10), task(50, 10)});
  const FifoPolicy policy;
  const auto result = Simulator(small_cluster()).run({&job, 1}, policy);
  EXPECT_GT(result.mean_utilization, 0.0);
  EXPECT_LE(result.mean_utilization, 1.0 + 1e-9);
  EXPECT_DOUBLE_EQ(result.mean_utilization, 1.0);  // both fit exactly
}

TEST(Simulator, DeterministicAcrossRuns) {
  std::vector<SimJob> jobs;
  for (int i = 0; i < 20; ++i) {
    jobs.push_back(make_job("j" + std::to_string(i), i * 3.0,
                            {{0, 1}, {0, 2}, {1, 3}, {2, 3}},
                            {task(30, 7), task(20, 11), task(25, 5), task(40, 3)}));
  }
  const CriticalPathFirstPolicy policy;
  const Simulator sim(small_cluster(2));
  const auto a = sim.run(jobs, policy);
  const auto b = sim.run(jobs, policy);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.mean_jct, b.mean_jct);
  EXPECT_EQ(a.tasks_executed, b.tasks_executed);
}

TEST(Simulator, SjfImprovesMeanJctOverFifo) {
  // One heavy job arrives first, many light jobs right after: FIFO makes
  // the light jobs queue behind the heavy one; SJF lets them jump ahead.
  std::vector<SimJob> jobs;
  jobs.push_back(make_job("heavy", 0.0, {},
                          {task(100, 100), task(100, 100), task(100, 100)}));
  for (int i = 0; i < 10; ++i) {
    jobs.push_back(make_job("light" + std::to_string(i), 0.1, {}, {task(100, 1)}));
  }
  const Simulator sim(small_cluster());
  const FifoPolicy fifo;
  const ShortestJobFirstPolicy sjf;
  const auto fifo_result = sim.run(jobs, fifo);
  const auto sjf_result = sim.run(jobs, sjf);
  EXPECT_LT(sjf_result.mean_jct, fifo_result.mean_jct);
  // Makespan is work-conserving either way.
  EXPECT_DOUBLE_EQ(fifo_result.makespan, sjf_result.makespan);
}

TEST(Simulator, GroupHintApproximatesSjfWithoutOracle) {
  // Same setup, but the scheduler only knows each job's cluster group:
  // group 0 = light-ish, group 1 = heavy-ish.
  std::vector<SimJob> jobs;
  jobs.push_back(make_job("heavy", 0.0, {},
                          {task(100, 100), task(100, 100), task(100, 100)}));
  for (int i = 0; i < 10; ++i) {
    jobs.push_back(make_job("light" + std::to_string(i), 0.1, {}, {task(100, 1)}));
  }
  std::vector<int> labels(jobs.size(), 0);
  labels[0] = 1;
  attach_hints(jobs, labels);
  std::vector<GroupProfile> profiles(2);
  profiles[0].expected_work = 100.0;     // light group
  profiles[1].expected_work = 30000.0;   // heavy group
  const Simulator sim(small_cluster());
  const FifoPolicy fifo;
  const GroupHintPolicy hint;
  const auto fifo_result = sim.run(jobs, fifo);
  const auto hint_result = sim.run(jobs, hint, profiles);
  EXPECT_LT(hint_result.mean_jct, fifo_result.mean_jct);
}

TEST(Simulator, EmptyWorkload) {
  const FifoPolicy policy;
  const auto result = Simulator(small_cluster()).run({}, policy);
  EXPECT_EQ(result.makespan, 0.0);
  EXPECT_EQ(result.tasks_executed, 0u);
}

TEST(Simulator, CyclicJobThrows) {
  SimJob job;
  job.dag = graph::Digraph(2, std::vector<graph::Edge>{{0, 1}, {1, 0}});
  job.tasks = {task(1, 1), task(1, 1)};
  const FifoPolicy policy;
  EXPECT_THROW(Simulator(small_cluster()).run({&job, 1}, policy),
               util::GraphError);
}

TEST(Simulator, ZeroMachinesThrows) {
  SimulatorConfig cfg;
  cfg.machines = 0;
  EXPECT_THROW(Simulator{cfg}, util::InvalidArgument);
}

SimulatorConfig colocated_cluster(double base = 0.4, double amplitude = 0.2,
                                  double tick = 10.0) {
  SimulatorConfig cfg = small_cluster();
  cfg.online.enabled = true;
  cfg.online.base_fraction = base;
  cfg.online.amplitude = amplitude;
  cfg.online.period = 200.0;
  cfg.online.phase_spread = 0.0;
  cfg.online.tick_interval = tick;
  return cfg;
}

TEST(Colocation, OnlineReservationSlowsBatch) {
  // Two 40-cpu tasks fit together on an empty 100-cpu machine, but not
  // beside a >=40% online reservation.
  const auto job = make_job("j", 0.0, {}, {task(40, 10), task(40, 10)});
  const FifoPolicy policy;
  const auto baseline = Simulator(small_cluster()).run({&job, 1}, policy);
  const auto colocated = Simulator(colocated_cluster()).run({&job, 1}, policy);
  EXPECT_DOUBLE_EQ(baseline.makespan, 10.0);
  EXPECT_GT(colocated.makespan, baseline.makespan);
  EXPECT_EQ(colocated.tasks_executed, 2u);
}

TEST(Colocation, SpikePreemptsYoungestTask) {
  // Reservation swings 20..60 of 100 cpu (period 200). Two 28-cpu tasks
  // placed at the mean (40 reserved, 96 total) become infeasible as the
  // sine rises past ~46: one must be killed and restarted later.
  SimulatorConfig cfg = colocated_cluster(0.4, 0.2, 5.0);
  const auto job = make_job("j", 0.0, {}, {task(28, 120), task(28, 120)});
  const FifoPolicy policy;
  const auto result = Simulator(cfg).run({&job, 1}, policy);
  EXPECT_GE(result.preemptions, 1u);
  EXPECT_EQ(result.tasks_executed, 2u);  // both eventually complete
  EXPECT_GT(result.makespan, 120.0);     // lost progress costs time
}

TEST(Colocation, NoPreemptionWhenLoadIsFlat) {
  SimulatorConfig cfg = colocated_cluster(0.3, 0.0, 5.0);
  const auto job = make_job("j", 0.0, {{0, 1}}, {task(40, 20), task(40, 20)});
  const FifoPolicy policy;
  const auto result = Simulator(cfg).run({&job, 1}, policy);
  EXPECT_EQ(result.preemptions, 0u);
  EXPECT_DOUBLE_EQ(result.makespan, 40.0);
}

TEST(Colocation, OversizedDemandClampedToBatchShare) {
  SimulatorConfig cfg = colocated_cluster(0.4, 0.2, 5.0);
  // 90 cpu > 100 * (1 - 0.6) = 40 batch share at peak: clamped, no deadlock.
  const auto job = make_job("j", 0.0, {}, {task(90, 10)});
  const FifoPolicy policy;
  const auto result = Simulator(cfg).run({&job, 1}, policy);
  EXPECT_EQ(result.oversized_tasks, 1u);
  EXPECT_EQ(result.tasks_executed, 1u);
}

TEST(Colocation, DeterministicAcrossRuns) {
  std::vector<SimJob> jobs;
  for (int i = 0; i < 10; ++i) {
    jobs.push_back(make_job("j" + std::to_string(i), i * 7.0, {{0, 1}},
                            {task(30, 15), task(25, 9)}));
  }
  const SimulatorConfig cfg = colocated_cluster();
  const FifoPolicy policy;
  const auto a = Simulator(cfg).run(jobs, policy);
  const auto b = Simulator(cfg).run(jobs, policy);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.preemptions, b.preemptions);
  EXPECT_EQ(a.mean_jct, b.mean_jct);
}

TEST(Colocation, InvalidModelRejected) {
  SimulatorConfig cfg = small_cluster();
  cfg.online.enabled = true;
  cfg.online.base_fraction = 0.9;
  cfg.online.amplitude = 0.2;  // base + amplitude >= 1: no batch headroom
  EXPECT_THROW(Simulator{cfg}, util::InvalidArgument);
  cfg.online.base_fraction = 0.3;
  cfg.online.amplitude = 0.1;
  cfg.online.tick_interval = 0.0;
  EXPECT_THROW(Simulator{cfg}, util::InvalidArgument);
}

TEST(Colocation, UtilizationStillBounded) {
  std::vector<SimJob> jobs;
  for (int i = 0; i < 8; ++i) {
    jobs.push_back(make_job("j" + std::to_string(i), i * 2.0, {},
                            {task(35, 30), task(35, 30)}));
  }
  const auto result =
      Simulator(colocated_cluster()).run(jobs, FifoPolicy{});
  EXPECT_GT(result.mean_utilization, 0.0);
  EXPECT_LE(result.mean_utilization, 1.0 + 1e-9);
}

TEST(ProfilesFromGroups, AveragesPerGroup) {
  // Build two trivial JobDags via records is heavy here; use the public
  // fields directly.
  core::JobDag small;
  small.job_name = "s";
  small.dag = graph::Digraph(2, std::vector<graph::Edge>{{0, 1}});
  small.tasks.resize(2);
  for (auto& t : small.tasks) {
    t.plan_cpu = 100;
    t.instance_num = 1;
    t.start_time = 0;
    t.end_time = 0;  // duration fallback 60s
  }
  core::JobDag big = small;
  big.job_name = "b";
  big.dag = graph::Digraph(4, std::vector<graph::Edge>{{0, 3}, {1, 3}, {2, 3}});
  big.tasks.resize(4, small.tasks[0]);

  const std::vector<core::JobDag> dags{small, big};
  const std::vector<int> labels{0, 1};
  const auto profiles = profiles_from_groups(dags, labels, 2);
  ASSERT_EQ(profiles.size(), 2u);
  EXPECT_DOUBLE_EQ(profiles[0].expected_depth, 2.0);
  EXPECT_DOUBLE_EQ(profiles[0].expected_width, 1.0);
  EXPECT_DOUBLE_EQ(profiles[0].expected_work, 2 * 100 * 60.0);
  EXPECT_DOUBLE_EQ(profiles[1].expected_depth, 2.0);
  EXPECT_DOUBLE_EQ(profiles[1].expected_width, 3.0);
  EXPECT_DOUBLE_EQ(profiles[1].expected_work, 4 * 100 * 60.0);
}

TEST(ProfilesFromGroups, Validation) {
  const std::vector<core::JobDag> dags(1);
  const std::vector<int> bad_size{0, 1};
  EXPECT_THROW(profiles_from_groups(dags, bad_size, 2), util::InvalidArgument);
  const std::vector<int> bad_label{5};
  EXPECT_THROW(profiles_from_groups(dags, bad_label, 2), util::InvalidArgument);
}

}  // namespace
}  // namespace cwgl::sched

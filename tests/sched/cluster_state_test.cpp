#include "sched/cluster_state.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace cwgl::sched {
namespace {

TEST(ClusterState, ConstructionValidation) {
  EXPECT_THROW(ClusterState(0, 100, 100), util::InvalidArgument);
  EXPECT_THROW(ClusterState(1, 0, 100), util::InvalidArgument);
  EXPECT_THROW(ClusterState(1, 100, -1), util::InvalidArgument);
  const ClusterState c(4, 9600, 100);
  EXPECT_EQ(c.size(), 4u);
  EXPECT_DOUBLE_EQ(c.total_cpu(), 4 * 9600.0);
}

TEST(ClusterState, FirstFitPicksLowestIndex) {
  ClusterState c(3, 100, 100);
  EXPECT_EQ(c.place_first_fit(60, 10), 0);
  EXPECT_EQ(c.place_first_fit(60, 10), 1);  // no longer fits on 0
  EXPECT_EQ(c.place_first_fit(30, 10), 0);  // back-fills machine 0
}

TEST(ClusterState, PlacementFailsWhenFull) {
  ClusterState c(1, 100, 100);
  EXPECT_EQ(c.place_first_fit(80, 50), 0);
  EXPECT_EQ(c.place_first_fit(30, 10), -1);
  EXPECT_EQ(c.place_best_fit(30, 10), -1);
}

TEST(ClusterState, MemoryConstraintBinds) {
  ClusterState c(1, 100, 10);
  EXPECT_EQ(c.place_first_fit(10, 8), 0);
  EXPECT_EQ(c.place_first_fit(10, 5), -1);  // cpu fits, memory does not
}

TEST(ClusterState, BestFitPicksTightestMachine) {
  ClusterState c(3, 100, 100);
  ASSERT_EQ(c.place_first_fit(70, 10), 0);  // machine 0: 30 free
  ASSERT_EQ(c.place_first_fit(0.0 + 50, 10), 1);  // machine 1: 50 free
  // 25 cpu fits machines 0 (slack 5), 1 (slack 25), 2 (slack 75): best = 0.
  EXPECT_EQ(c.place_best_fit(25, 10), 0);
}

TEST(ClusterState, ReleaseRestoresCapacity) {
  ClusterState c(1, 100, 100);
  ASSERT_EQ(c.place_first_fit(100, 100), 0);
  EXPECT_EQ(c.place_first_fit(1, 1), -1);
  c.release(0, 100, 100);
  EXPECT_EQ(c.place_first_fit(1, 1), 0);
}

TEST(ClusterState, DoubleReleaseDetected) {
  ClusterState c(1, 100, 100);
  ASSERT_EQ(c.place_first_fit(50, 50), 0);
  c.release(0, 50, 50);
  EXPECT_THROW(c.release(0, 50, 50), util::InvalidArgument);
}

TEST(ClusterState, ReleaseOutOfRangeThrows) {
  ClusterState c(2, 100, 100);
  EXPECT_THROW(c.release(5, 1, 1), util::InvalidArgument);
}

TEST(ClusterState, UtilizationTracksUsage) {
  ClusterState c(2, 100, 100);
  EXPECT_DOUBLE_EQ(c.cpu_utilization(), 0.0);
  c.place_first_fit(100, 10);
  EXPECT_DOUBLE_EQ(c.cpu_utilization(), 0.5);
  c.place_first_fit(100, 10);
  EXPECT_DOUBLE_EQ(c.cpu_utilization(), 1.0);
}

}  // namespace
}  // namespace cwgl::sched

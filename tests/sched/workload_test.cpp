#include "sched/workload.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace cwgl::sched {
namespace {

core::JobDag sample_dag(std::string name) {
  core::JobDag dag;
  dag.job_name = std::move(name);
  dag.dag = graph::Digraph(2, std::vector<graph::Edge>{{0, 1}});
  dag.tasks.resize(2);
  dag.tasks[0].plan_cpu = 100.0;
  dag.tasks[0].plan_mem = 0.5;
  dag.tasks[0].instance_num = 4;
  dag.tasks[0].start_time = 100;
  dag.tasks[0].end_time = 160;
  dag.tasks[1].plan_cpu = 50.0;
  dag.tasks[1].plan_mem = 0.25;
  dag.tasks[1].instance_num = 0;  // degenerate record
  dag.tasks[1].start_time = 0;    // missing timestamps
  dag.tasks[1].end_time = 0;
  return dag;
}

TEST(JobsFromDags, DemandAndDurationDerived) {
  const std::vector<core::JobDag> dags{sample_dag("j_1"), sample_dag("j_2")};
  const auto jobs = jobs_from_dags(dags, 30.0, 45.0);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].name, "j_1");
  EXPECT_DOUBLE_EQ(jobs[0].arrival, 0.0);
  EXPECT_DOUBLE_EQ(jobs[1].arrival, 30.0);
  // Task 0: plan_cpu 100 x 4 instances, duration from trace timestamps.
  EXPECT_DOUBLE_EQ(jobs[0].tasks[0].cpu, 400.0);
  EXPECT_DOUBLE_EQ(jobs[0].tasks[0].duration, 60.0);
  // Task 1: zero instances clamp to 1; missing times use the fallback.
  EXPECT_DOUBLE_EQ(jobs[0].tasks[1].cpu, 50.0);
  EXPECT_DOUBLE_EQ(jobs[0].tasks[1].duration, 45.0);
  EXPECT_EQ(jobs[0].dag.num_edges(), 1);
  EXPECT_EQ(jobs[0].hint_group, -1);
}

TEST(AttachHints, AssignsAndValidates) {
  const std::vector<core::JobDag> dags{sample_dag("j_1"), sample_dag("j_2")};
  auto jobs = jobs_from_dags(dags, 1.0);
  const std::vector<int> labels{3, 1};
  attach_hints(jobs, labels);
  EXPECT_EQ(jobs[0].hint_group, 3);
  EXPECT_EQ(jobs[1].hint_group, 1);
  const std::vector<int> wrong{1};
  EXPECT_THROW(attach_hints(jobs, wrong), util::InvalidArgument);
}

TEST(JobsFromDags, EmptyInput) {
  EXPECT_TRUE(jobs_from_dags({}, 1.0).empty());
}

}  // namespace
}  // namespace cwgl::sched

#include "serve/engine.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <numeric>
#include <utility>
#include <vector>

#include "core/pipeline.hpp"
#include "model/fit.hpp"
#include "obs/metrics.hpp"
#include "trace/generator.hpp"
#include "util/thread_pool.hpp"

namespace cwgl::serve {
namespace {

model::FittedModel fit_small() {
  trace::GeneratorConfig gcfg;
  gcfg.num_jobs = 300;
  gcfg.seed = 7;
  gcfg.emit_instances = false;
  const trace::Trace data = trace::TraceGenerator(gcfg).generate();
  core::PipelineConfig cfg;
  cfg.sample_size = 60;
  cfg.clustering.clusters = 4;
  core::FittedFeatures fitted;
  const auto result =
      core::CharacterizationPipeline(cfg).run(data, nullptr, &fitted);
  return model::build_model(result, std::move(fitted), cfg);
}

std::vector<core::JobDag> incoming_jobs(std::uint64_t seed, std::size_t n) {
  trace::GeneratorConfig gcfg;
  gcfg.num_jobs = n;
  gcfg.seed = seed;
  gcfg.emit_instances = false;
  const trace::Trace data = trace::TraceGenerator(gcfg).generate();
  return core::build_all_dag_jobs(data, trace::SamplingCriteria{});
}

TEST(EngineTest, BatchPredictionsMatchSerialInInputOrder) {
  const Classifier classifier(fit_small());
  const auto jobs = incoming_jobs(99, 150);
  ASSERT_FALSE(jobs.empty());

  std::vector<Prediction> serial;
  serial.reserve(jobs.size());
  for (const core::JobDag& job : jobs) serial.push_back(classifier.classify(job));

  util::ThreadPool pool(4);
  std::vector<Prediction> batched;
  const BatchStats stats = classify_batch(classifier, jobs, &pool, &batched);

  ASSERT_EQ(batched.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(batched[i].cluster, serial[i].cluster) << jobs[i].job_name;
    EXPECT_EQ(batched[i].similarity, serial[i].similarity);
    EXPECT_EQ(batched[i].oov_hits, serial[i].oov_hits);
  }
  EXPECT_EQ(stats.jobs, jobs.size());
}

TEST(EngineTest, StatsAreInternallyConsistent) {
  const Classifier classifier(fit_small());
  const auto jobs = incoming_jobs(123, 120);
  ASSERT_FALSE(jobs.empty());
  util::ThreadPool pool(2);
  const BatchStats stats = classify_batch(classifier, jobs, &pool);

  EXPECT_EQ(stats.jobs, jobs.size());
  EXPECT_GT(stats.wall_seconds, 0.0);
  EXPECT_GT(stats.jobs_per_second, 0.0);
  EXPECT_LE(stats.p50_latency_us, stats.p90_latency_us);
  EXPECT_LE(stats.p90_latency_us, stats.p99_latency_us);
  EXPECT_LE(stats.p99_latency_us, stats.max_latency_us);
  EXPECT_LE(stats.oov_jobs, stats.jobs);
  ASSERT_EQ(stats.cluster_counts.size(), classifier.model().num_clusters());
  const std::size_t assigned = std::accumulate(
      stats.cluster_counts.begin(), stats.cluster_counts.end(), std::size_t{0});
  EXPECT_EQ(assigned, stats.jobs);
}

TEST(EngineTest, EmitsServeMetrics) {
  const Classifier classifier(fit_small());
  const auto jobs = incoming_jobs(7, 60);
  ASSERT_FALSE(jobs.empty());
  auto& registry = obs::MetricsRegistry::global();
  const std::uint64_t jobs_before =
      registry.snapshot().counter("serve.batch.jobs");
  classify_batch(classifier, jobs, nullptr);
  const auto after = registry.snapshot();
  EXPECT_EQ(after.counter("serve.batch.jobs"), jobs_before + jobs.size());
  EXPECT_GE(after.counter("serve.classify.jobs"), jobs.size());
}

TEST(EngineTest, EmptyBatchIsWellDefined) {
  const Classifier classifier(fit_small());
  const BatchStats stats = classify_batch(classifier, {}, nullptr);
  EXPECT_EQ(stats.jobs, 0u);
  EXPECT_EQ(stats.p50_latency_us, 0.0);
  EXPECT_EQ(stats.oov_jobs, 0u);
}

}  // namespace
}  // namespace cwgl::serve

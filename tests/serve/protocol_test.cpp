// Wire-protocol contract (cwgl-serve-v1): codecs round-trip every message
// kind and reject malformed input with typed errors; framing survives short
// reads, distinguishes clean EOF from mid-frame truncation, and refuses
// oversized frames before allocating; sockets work for both unix and
// loopback-tcp endpoints.

#include "serve/protocol.hpp"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

namespace cwgl::serve {
namespace {

/// Connected AF_UNIX stream pair for framing tests (closed on destruction).
struct SocketPair {
  Fd a, b;
  SocketPair() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a.reset(fds[0]);
    b.reset(fds[1]);
  }
};

TEST(ProtocolCodec, ClassifyRequestRoundTrips) {
  Request r;
  r.type = RequestType::Classify;
  r.id = 987654321;
  r.job_name = "j_42";
  r.tasks = {"M1", "R2_1", "J3_2_1"};
  r.deadline_ms = 12.5;
  const Request back = decode_request(encode_request(r));
  EXPECT_EQ(back.type, RequestType::Classify);
  EXPECT_EQ(back.id, r.id);
  EXPECT_EQ(back.job_name, r.job_name);
  EXPECT_EQ(back.tasks, r.tasks);
  EXPECT_DOUBLE_EQ(back.deadline_ms, r.deadline_ms);
}

TEST(ProtocolCodec, ControlRequestsRoundTrip) {
  for (const RequestType t :
       {RequestType::Ping, RequestType::Stats, RequestType::Health,
        RequestType::Trace, RequestType::Reload, RequestType::Drain}) {
    Request r;
    r.type = t;
    r.id = 7;
    if (t == RequestType::Reload) r.model_path = "/tmp/next.cwgl";
    const Request back = decode_request(encode_request(r));
    EXPECT_EQ(back.type, t);
    EXPECT_EQ(back.id, 7u);
    if (t == RequestType::Reload) {
      EXPECT_EQ(back.model_path, r.model_path);
    }
  }
}

TEST(ProtocolCodec, ResponseRoundTripsEveryStatusAndPayload) {
  for (const ResponseStatus s :
       {ResponseStatus::Ok, ResponseStatus::Overloaded, ResponseStatus::Timeout,
        ResponseStatus::ShuttingDown, ResponseStatus::Error}) {
    Response r;
    r.id = 11;
    r.status = s;
    r.message = "context";
    r.cluster = "C";
    r.cluster_id = 2;
    r.similarity = 0.875;
    r.nearest = "j_1000001";
    r.oov_hits = 3;
    r.predicted_critical_path = 42.5;
    r.predicted_width = 4.0;
    r.stats = {{"served", 10}, {"shed", 2}};
    const Response back = decode_response(encode_response(r));
    EXPECT_EQ(back.status, s);
    EXPECT_EQ(back.id, 11u);
    EXPECT_EQ(back.message, "context");
    EXPECT_EQ(back.cluster, "C");
    EXPECT_EQ(back.cluster_id, 2);
    EXPECT_DOUBLE_EQ(back.similarity, 0.875);
    EXPECT_EQ(back.nearest, "j_1000001");
    EXPECT_EQ(back.oov_hits, 3u);
    EXPECT_DOUBLE_EQ(back.predicted_critical_path, 42.5);
    EXPECT_DOUBLE_EQ(back.predicted_width, 4.0);
    EXPECT_EQ(back.stats, r.stats);
  }
}

TEST(ProtocolCodec, TelemetryResponseFieldsRoundTrip) {
  Response r;
  r.id = 9;
  r.status = ResponseStatus::Ok;
  r.version = "cwgl 1.0.0 (cwgl-serve-v1)";
  r.generation = 3;
  r.payload = R"({"ready":true,"queue":{"depth":0,"high_water":12}})";
  const Response back = decode_response(encode_response(r));
  EXPECT_EQ(back.version, r.version);
  EXPECT_EQ(back.generation, 3u);
  // The payload is re-serialized from the parsed frame: semantically equal
  // JSON with sorted object keys.
  EXPECT_EQ(back.payload,
            R"({"queue":{"depth":0,"high_water":12},"ready":true})");

  // Defaults stay off the wire and decode back to defaults.
  Response bare;
  bare.id = 1;
  const Response back_bare = decode_response(encode_response(bare));
  EXPECT_EQ(back_bare.version, "");
  EXPECT_EQ(back_bare.generation, 0u);
  EXPECT_EQ(back_bare.payload, "");
  EXPECT_EQ(encode_response(bare).find("payload"), std::string::npos);
}

TEST(ProtocolCodec, MalformedRequestsThrowProtocolError) {
  EXPECT_THROW(decode_request("not json"), ProtocolError);
  EXPECT_THROW(decode_request("[]"), ProtocolError);
  EXPECT_THROW(decode_request("{}"), ProtocolError);  // no type
  EXPECT_THROW(decode_request(R"({"type":"frobnicate","id":1})"),
               ProtocolError);
  EXPECT_THROW(decode_request(R"({"type":"classify","id":"NaN"})"),
               ProtocolError);
  EXPECT_THROW(decode_request(R"({"type":"classify","id":1,"tasks":"M1"})"),
               ProtocolError);  // tasks must be an array
}

TEST(ProtocolCodec, MalformedResponsesThrowProtocolError) {
  EXPECT_THROW(decode_response("{}"), ProtocolError);  // no status
  EXPECT_THROW(decode_response(R"({"status":"meh","id":1})"), ProtocolError);
  EXPECT_THROW(decode_response("17"), ProtocolError);
}

TEST(ProtocolFraming, RoundTripsAndPreservesBoundaries) {
  SocketPair pair;
  write_frame(pair.a.get(), "first");
  write_frame(pair.a.get(), "");  // empty payload is a legal frame
  write_frame(pair.a.get(), std::string(100000, 'x'));
  std::string got;
  ASSERT_TRUE(read_frame(pair.b.get(), got));
  EXPECT_EQ(got, "first");
  ASSERT_TRUE(read_frame(pair.b.get(), got));
  EXPECT_EQ(got, "");
  ASSERT_TRUE(read_frame(pair.b.get(), got));
  EXPECT_EQ(got, std::string(100000, 'x'));
}

TEST(ProtocolFraming, CleanEofReturnsFalse) {
  SocketPair pair;
  pair.a.reset();
  std::string got;
  EXPECT_FALSE(read_frame(pair.b.get(), got));
}

TEST(ProtocolFraming, MidFrameEofThrows) {
  SocketPair pair;
  // Length prefix promises 100 bytes; only 10 arrive before the hangup.
  const std::uint32_t len = 100;
  unsigned char prefix[4] = {static_cast<unsigned char>(len & 0xff),
                             static_cast<unsigned char>((len >> 8) & 0xff),
                             static_cast<unsigned char>((len >> 16) & 0xff),
                             static_cast<unsigned char>((len >> 24) & 0xff)};
  ASSERT_EQ(::send(pair.a.get(), prefix, 4, 0), 4);
  ASSERT_EQ(::send(pair.a.get(), "0123456789", 10, 0), 10);
  pair.a.reset();
  std::string got;
  EXPECT_THROW(read_frame(pair.b.get(), got), ProtocolError);
}

TEST(ProtocolFraming, OversizedLengthPrefixIsRejectedUpFront) {
  SocketPair pair;
  // A corrupt prefix claiming ~4 GiB must be refused before any allocation.
  const unsigned char prefix[4] = {0xff, 0xff, 0xff, 0xff};
  ASSERT_EQ(::send(pair.a.get(), prefix, 4, 0), 4);
  std::string got;
  EXPECT_THROW(read_frame(pair.b.get(), got), ProtocolError);
  EXPECT_THROW(write_frame(pair.a.get(),
                           std::string(kMaxFrameBytes + 1, 'x')),
               ProtocolError);
}

TEST(ProtocolSockets, TcpEphemeralListenConnectEcho) {
  Endpoint ep;
  ep.tcp_port = 0;
  const Fd listener = listen_on(ep);
  const int port = local_tcp_port(listener.get());
  ASSERT_GT(port, 0);

  Endpoint client_ep;
  client_ep.tcp_port = port;
  const Fd client = connect_to(client_ep);
  const Fd server(::accept(listener.get(), nullptr, nullptr));
  ASSERT_TRUE(server.valid());

  write_frame(client.get(), "ping-payload");
  std::string got;
  ASSERT_TRUE(read_frame(server.get(), got));
  EXPECT_EQ(got, "ping-payload");
  write_frame(server.get(), got + "-echo");
  ASSERT_TRUE(read_frame(client.get(), got));
  EXPECT_EQ(got, "ping-payload-echo");
}

TEST(ProtocolSockets, UnixSocketListenConnectAndStaleFileReuse) {
  const auto path =
      std::filesystem::temp_directory_path() / "cwgl_proto_test.sock";
  Endpoint ep;
  ep.socket_path = path.string();
  {
    const Fd listener = listen_on(ep);
    const Fd client = connect_to(ep);
    const Fd server(::accept(listener.get(), nullptr, nullptr));
    ASSERT_TRUE(server.valid());
    write_frame(client.get(), "over-unix");
    std::string got;
    ASSERT_TRUE(read_frame(server.get(), got));
    EXPECT_EQ(got, "over-unix");
  }
  // The socket file a dead daemon left behind must not block a restart.
  ASSERT_TRUE(std::filesystem::exists(path));
  const Fd again = listen_on(ep);
  EXPECT_TRUE(again.valid());
  std::filesystem::remove(path);
}

TEST(ProtocolSockets, ConnectToNothingThrows) {
  Endpoint ep;
  ep.socket_path = "/nonexistent/dir/absent.sock";
  EXPECT_THROW(connect_to(ep), ProtocolError);
  Endpoint none;
  EXPECT_THROW(connect_to(none), ProtocolError);
  EXPECT_THROW(listen_on(none), ProtocolError);
}

}  // namespace
}  // namespace cwgl::serve

// Telemetry-plane contract of the resident daemon: `ping` carries version
// and model generation, `health`/`stats` answer rich JSON payloads that are
// never torn under concurrent traffic and reloads, the flight recorder
// attributes request latency to queue/batch/compute, `trace` drains the
// global span buffer, and the queue-depth gauge is consistent across
// overload and drain.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "model/fit.hpp"
#include "model/format.hpp"
#include "obs/tracer.hpp"
#include "serve/daemon.hpp"
#include "serve/protocol.hpp"
#include "trace/generator.hpp"
#include "util/json.hpp"

namespace cwgl::serve {
namespace {

using namespace std::chrono_literals;

model::FittedModel fit_tiny() {
  trace::GeneratorConfig gcfg;
  gcfg.num_jobs = 120;
  gcfg.seed = 11;
  gcfg.emit_instances = false;
  const trace::Trace data = trace::TraceGenerator(gcfg).generate();
  core::PipelineConfig cfg;
  cfg.sample_size = 30;
  cfg.clustering.clusters = 3;
  core::FittedFeatures fitted;
  const auto result =
      core::CharacterizationPipeline(cfg).run(data, nullptr, &fitted);
  return model::build_model(result, std::move(fitted), cfg);
}

const model::FittedModel& tiny_model() {
  static const model::FittedModel m = fit_tiny();
  return m;
}

std::shared_ptr<const Classifier> tiny_classifier() {
  return std::make_shared<const Classifier>(tiny_model());
}

DaemonConfig tcp_config() {
  DaemonConfig cfg;
  cfg.endpoint.tcp_port = 0;  // ephemeral
  cfg.worker_threads = 2;
  return cfg;
}

Endpoint client_endpoint(const Daemon& d) {
  Endpoint ep;
  ep.tcp_port = d.tcp_port();
  return ep;
}

Request classify_request(std::uint64_t id, double deadline_ms = 0.0) {
  Request r;
  r.type = RequestType::Classify;
  r.id = id;
  r.job_name = "j_test";
  r.tasks = {"M1", "M2_1", "R3_2", "J4_2"};
  r.deadline_ms = deadline_ms;
  return r;
}

Request control_request(RequestType type, std::uint64_t id) {
  Request r;
  r.type = type;
  r.id = id;
  return r;
}

util::JsonValue payload_of(const Response& r) {
  EXPECT_FALSE(r.payload.empty());
  return util::parse_json(r.payload);
}

TEST(DaemonTelemetry, PingReportsVersionAndGeneration) {
  Daemon daemon(tiny_classifier(), tcp_config());
  daemon.start();
  Client client(client_endpoint(daemon));

  const Response pong = client.call(control_request(RequestType::Ping, 1));
  ASSERT_EQ(pong.status, ResponseStatus::Ok);
  EXPECT_EQ(pong.version.rfind("cwgl ", 0), 0u) << pong.version;
  EXPECT_NE(pong.version.find("(cwgl-serve-v1)"), std::string::npos)
      << pong.version;
  EXPECT_EQ(pong.generation, 1u);

  daemon.request_drain();
  EXPECT_EQ(daemon.wait(), 0);
}

TEST(DaemonTelemetry, HealthReportsReadinessQueueAndReloadOutcome) {
  const auto path =
      std::filesystem::temp_directory_path() / "cwgl_telemetry_health.cwgl";
  model::save_model(tiny_model(), path);

  DaemonConfig cfg = tcp_config();
  cfg.model_path = path.string();
  cfg.max_inflight = 17;
  Daemon daemon(tiny_classifier(), cfg);
  daemon.start();
  Client client(client_endpoint(daemon));

  const Response before = client.call(control_request(RequestType::Health, 1));
  ASSERT_EQ(before.status, ResponseStatus::Ok);
  EXPECT_EQ(before.generation, 1u);
  const util::JsonValue h1 = payload_of(before);
  EXPECT_TRUE(h1.at("ready").as_bool());
  EXPECT_FALSE(h1.at("draining").as_bool());
  EXPECT_EQ(h1.at("generation").as_number(), 1.0);
  EXPECT_GE(h1.at("uptime_s").as_number(), 0.0);
  EXPECT_EQ(h1.at("queue").at("capacity").as_number(), 17.0);
  EXPECT_TRUE(h1.at("last_reload").is_null());

  // A successful reload bumps the generation and records the outcome.
  Request reload = control_request(RequestType::Reload, 2);
  const Response swapped = client.call(reload);
  ASSERT_EQ(swapped.status, ResponseStatus::Ok) << swapped.message;

  const Response after = client.call(control_request(RequestType::Health, 3));
  ASSERT_EQ(after.status, ResponseStatus::Ok);
  EXPECT_EQ(after.generation, 2u);
  const util::JsonValue h2 = payload_of(after);
  EXPECT_EQ(h2.at("generation").as_number(), 2.0);
  EXPECT_TRUE(h2.at("last_reload").at("ok").as_bool());
  EXPECT_EQ(h2.at("last_reload").at("path").as_string(), path.string());
  EXPECT_GE(h2.at("last_reload").at("at_uptime_s").as_number(), 0.0);

  // A rejected reload keeps the generation and records the error.
  const auto corrupt =
      std::filesystem::temp_directory_path() / "cwgl_telemetry_corrupt.cwgl";
  {
    std::ofstream f(corrupt, std::ios::binary | std::ios::trunc);
    f << "not a model";
  }
  Request bad = control_request(RequestType::Reload, 4);
  bad.model_path = corrupt.string();
  EXPECT_EQ(client.call(bad).status, ResponseStatus::Error);
  const Response rejected =
      client.call(control_request(RequestType::Health, 5));
  EXPECT_EQ(rejected.generation, 2u);
  const util::JsonValue h3 = payload_of(rejected);
  EXPECT_FALSE(h3.at("last_reload").at("ok").as_bool());
  EXPECT_FALSE(h3.at("last_reload").at("error").as_string().empty());

  daemon.request_drain();
  EXPECT_EQ(daemon.wait(), 0);
  std::filesystem::remove(path);
  std::filesystem::remove(corrupt);
}

TEST(DaemonTelemetry, StatsPayloadCarriesDaemonFlightAndMetrics) {
  Daemon daemon(tiny_classifier(), tcp_config());
  daemon.start();
  Client client(client_endpoint(daemon));

  for (std::uint64_t id = 1; id <= 5; ++id) {
    EXPECT_EQ(client.call(classify_request(id)).status, ResponseStatus::Ok);
  }

  const Response s = client.call(control_request(RequestType::Stats, 99));
  ASSERT_EQ(s.status, ResponseStatus::Ok);
  EXPECT_EQ(s.generation, 1u);
  // Legacy flat map keeps working and gains the new keys.
  EXPECT_EQ(s.stats.at("served"), 5u);
  EXPECT_EQ(s.stats.at("generation"), 1u);
  EXPECT_EQ(s.stats.at("queue_depth"), 0u);

  const util::JsonValue doc = payload_of(s);
  const auto& daemon_obj = doc.at("daemon");
  EXPECT_EQ(daemon_obj.at("served").as_number(), 5.0);
  EXPECT_EQ(daemon_obj.at("requests").as_number(), 5.0);
  EXPECT_GE(daemon_obj.at("uptime_s").as_number(), 0.0);

  const auto& flight = doc.at("flight");
  EXPECT_GE(flight.at("recorded").as_number(), 5.0);
  EXPECT_TRUE(flight.at("slow").is_array());
  EXPECT_EQ(flight.at("slow_deadline_fraction").as_number(), 0.5);

  // The embedded global snapshot includes the daemon's instruments.
  const auto& metrics = doc.at("metrics");
  EXPECT_GE(metrics.at("counters").at("serve.daemon.requests").as_number(),
            5.0);
  ASSERT_NE(metrics.at("histograms").find("serve.daemon.queue_wait_us"),
            nullptr);
  ASSERT_NE(metrics.at("histograms").find("serve.daemon.compute_us"), nullptr);
  const auto& compute = metrics.at("histograms").at("serve.daemon.compute_us");
  EXPECT_GE(compute.at("count").as_number(), 5.0);
  ASSERT_NE(compute.find("p50_est"), nullptr);

  daemon.request_drain();
  EXPECT_EQ(daemon.wait(), 0);
}

TEST(DaemonTelemetry, FlightRecorderAttributesLatencyToQueueBatchCompute) {
  DaemonConfig cfg = tcp_config();
  cfg.worker_threads = 1;
  cfg.max_batch = 1;
  cfg.service_delay = 15000us;        // compute dominates every request
  cfg.slow_deadline_fraction = 0.04;  // 12ms of the 300ms deadline: even the
                                      // head request (~15ms total) samples,
                                      // and sanitizer slowdown stays far
                                      // from actually expiring the deadline
  Daemon daemon(tiny_classifier(), cfg);
  daemon.start();
  Client client(client_endpoint(daemon));

  // Pipeline three requests so the later ones actually queue.
  constexpr std::uint64_t kCount = 3;
  for (std::uint64_t id = 1; id <= kCount; ++id) {
    client.send(classify_request(id, /*deadline_ms=*/300.0));
  }
  for (std::uint64_t i = 0; i < kCount; ++i) {
    const std::optional<Response> r = client.recv();
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->status, ResponseStatus::Ok) << r->message;
  }

  const Response s = client.call(control_request(RequestType::Stats, 50));
  ASSERT_EQ(s.status, ResponseStatus::Ok);
  EXPECT_GE(s.stats.at("slow_sampled"), kCount);
  const util::JsonValue doc = payload_of(s);
  const auto& slow = doc.at("flight").at("slow").as_array();
  ASSERT_GE(slow.size(), static_cast<std::size_t>(kCount));

  std::vector<double> trace_ids;
  for (const auto& entry : slow) {
    EXPECT_EQ(entry.at("status").as_string(), "ok");
    EXPECT_EQ(entry.at("job").as_string(), "j_test");
    EXPECT_EQ(entry.at("deadline_ms").as_number(), 300.0);
    trace_ids.push_back(entry.at("trace_id").as_number());
    EXPECT_GT(entry.at("trace_id").as_number(), 0.0);

    // Latency attribution: the three phases partition the total (each
    // duration truncates to whole microseconds, so allow rounding slack).
    const double queue_wait = entry.at("queue_wait_us").as_number();
    const double batch_wait = entry.at("batch_wait_us").as_number();
    const double compute = entry.at("compute_us").as_number();
    const double total = entry.at("total_us").as_number();
    EXPECT_GE(compute, 14000.0) << "service_delay must land in compute";
    EXPECT_LE(std::abs(queue_wait + batch_wait + compute - total), 3.0);
    EXPECT_GE(total, compute);
  }
  // Trace ids are unique across sampled requests.
  std::sort(trace_ids.begin(), trace_ids.end());
  EXPECT_EQ(std::adjacent_find(trace_ids.begin(), trace_ids.end()),
            trace_ids.end());

  // At least one queued-behind request observed nontrivial queue wait.
  const bool some_queue_wait =
      std::any_of(slow.begin(), slow.end(), [](const util::JsonValue& e) {
        return e.at("queue_wait_us").as_number() >= 1000.0;
      });
  EXPECT_TRUE(some_queue_wait);

  daemon.request_drain();
  EXPECT_EQ(daemon.wait(), 0);
}

TEST(DaemonTelemetry, TraceRequestDrainsSpanBuffer) {
  DaemonConfig cfg = tcp_config();
  cfg.trace_buffer = 4096;
  Daemon daemon(tiny_classifier(), cfg);
  daemon.start();
  Client client(client_endpoint(daemon));

  for (std::uint64_t id = 1; id <= 3; ++id) {
    EXPECT_EQ(client.call(classify_request(id)).status, ResponseStatus::Ok);
  }

  const Response first = client.call(control_request(RequestType::Trace, 7));
  ASSERT_EQ(first.status, ResponseStatus::Ok);
  const util::JsonValue t1 = payload_of(first);
  EXPECT_TRUE(t1.at("enabled").as_bool());
  const auto& events = t1.at("events").as_array();
  const bool saw_batch =
      std::any_of(events.begin(), events.end(), [](const util::JsonValue& e) {
        return e.at("name").as_string() == "serve.daemon.batch";
      });
  EXPECT_TRUE(saw_batch) << "batch spans must reach the trace buffer";

  // Draining removed the events; a second drain with no traffic in between
  // returns only whatever started after the first (usually nothing).
  const Response second = client.call(control_request(RequestType::Trace, 8));
  const util::JsonValue t2 = payload_of(second);
  EXPECT_LT(t2.at("events").as_array().size(), events.size());

  daemon.request_drain();
  EXPECT_EQ(daemon.wait(), 0);
  obs::Tracer::global().stop();  // do not leak an armed tracer to other tests
}

// Satellite: concurrent stats/health polling under classify traffic and
// reloads — every poll parses (no torn snapshots), counters are monotone,
// and the terminal identity served+shed+timeouts+rejected+errors == requests
// holds once traffic quiesces.
TEST(DaemonTelemetry, ConcurrentPollingUnderTrafficAndReloadStaysConsistent) {
  const auto path =
      std::filesystem::temp_directory_path() / "cwgl_telemetry_poll.cwgl";
  model::save_model(tiny_model(), path);

  DaemonConfig cfg = tcp_config();
  cfg.model_path = path.string();
  Daemon daemon(tiny_classifier(), cfg);
  daemon.start();
  const Endpoint ep = client_endpoint(daemon);

  std::atomic<bool> traffic_done{false};
  std::atomic<int> ok_count{0};

  constexpr int kClients = 2;
  constexpr int kPerClient = 40;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client(ep);
      for (int i = 0; i < kPerClient; ++i) {
        const auto id = static_cast<std::uint64_t>(c * kPerClient + i + 1);
        const Response r = client.call(classify_request(id));
        EXPECT_EQ(r.status, ResponseStatus::Ok) << r.message;
        if (r.status == ResponseStatus::Ok) ok_count.fetch_add(1);
      }
    });
  }

  std::thread reloader([&] {
    Client client(ep);
    for (int i = 0; i < 3; ++i) {
      const Response r =
          client.call(control_request(RequestType::Reload, 9000 + i));
      EXPECT_EQ(r.status, ResponseStatus::Ok) << r.message;
      std::this_thread::sleep_for(5ms);
    }
  });

  std::vector<std::thread> pollers;
  for (int p = 0; p < 2; ++p) {
    pollers.emplace_back([&, p] {
      Client client(ep);
      std::uint64_t last_requests = 0;
      std::uint64_t last_served = 0;
      std::uint64_t last_generation = 0;
      std::uint64_t polls = 0;
      while (!traffic_done.load() || polls < 5) {
        ++polls;
        const Response s = client.call(
            control_request(RequestType::Stats, 100000 + polls * 2));
        ASSERT_EQ(s.status, ResponseStatus::Ok);
        const util::JsonValue stats_doc = payload_of(s);  // parses = untorn
        const auto& d = stats_doc.at("daemon");
        const auto requests =
            static_cast<std::uint64_t>(d.at("requests").as_number());
        const auto served =
            static_cast<std::uint64_t>(d.at("served").as_number());
        // Monotone counters, and outcomes never outrun admissions.
        EXPECT_GE(requests, last_requests);
        EXPECT_GE(served, last_served);
        last_requests = requests;
        last_served = served;
        const std::uint64_t outcomes =
            served + s.stats.at("shed") + s.stats.at("timeouts") +
            s.stats.at("rejected_draining") + s.stats.at("errors");
        EXPECT_LE(outcomes, requests);

        const Response h = client.call(
            control_request(RequestType::Health, 100001 + polls * 2));
        ASSERT_EQ(h.status, ResponseStatus::Ok);
        const util::JsonValue health_doc = payload_of(h);
        EXPECT_TRUE(health_doc.at("ready").as_bool());
        const auto generation =
            static_cast<std::uint64_t>(health_doc.at("generation").as_number());
        EXPECT_GE(generation, 1u);
        EXPECT_GE(generation, last_generation);
        last_generation = generation;
        std::this_thread::sleep_for(1ms);
      }
      (void)p;
    });
  }

  for (auto& t : clients) t.join();
  reloader.join();
  traffic_done.store(true);
  for (auto& t : pollers) t.join();

  // Quiesced: the identity is exact and the generation counted every swap.
  Client client(ep);
  const Response final_stats =
      client.call(control_request(RequestType::Stats, 999999));
  ASSERT_EQ(final_stats.status, ResponseStatus::Ok);
  const auto& m = final_stats.stats;
  EXPECT_EQ(m.at("requests"),
            static_cast<std::uint64_t>(kClients * kPerClient));
  EXPECT_EQ(m.at("served") + m.at("shed") + m.at("timeouts") +
                m.at("rejected_draining") + m.at("errors"),
            m.at("requests"));
  EXPECT_EQ(m.at("served"), static_cast<std::uint64_t>(ok_count.load()));
  EXPECT_EQ(m.at("reloads"), 3u);
  EXPECT_EQ(final_stats.generation, 4u);  // 1 initial + 3 swaps

  daemon.request_drain();
  EXPECT_EQ(daemon.wait(), 0);
  std::filesystem::remove(path);
}

// Satellite: the queue-depth gauge returns to zero once an overload burst
// has been fully answered, and the high-water mark reflects the bounded
// admission window (never above capacity + the one in-flight pop).
TEST(DaemonTelemetry, QueueDepthGaugeConsistentAcrossOverloadAndDrain) {
  DaemonConfig cfg = tcp_config();
  cfg.worker_threads = 1;
  cfg.max_inflight = 2;
  cfg.max_batch = 1;
  cfg.admission_wait = 0ms;
  cfg.service_delay = 5000us;
  Daemon daemon(tiny_classifier(), cfg);
  daemon.start();
  Client client(client_endpoint(daemon));

  constexpr std::uint64_t kBurst = 40;
  for (std::uint64_t id = 1; id <= kBurst; ++id) {
    client.send(classify_request(id));
  }
  std::size_t ok = 0, shed = 0;
  for (std::uint64_t i = 0; i < kBurst; ++i) {
    const std::optional<Response> r = client.recv();
    ASSERT_TRUE(r.has_value());
    if (r->status == ResponseStatus::Ok) ++ok;
    if (r->status == ResponseStatus::Overloaded) ++shed;
  }
  EXPECT_EQ(ok + shed, kBurst);
  EXPECT_GE(shed, 1u);

  // Every request is answered, so the queue must be empty; the depth
  // counter can lag the final pop by an instant, so poll briefly.
  std::uint64_t depth = 1;
  std::uint64_t high_water = 0;
  for (int attempt = 0; attempt < 100; ++attempt) {
    const Response h =
        client.call(control_request(RequestType::Health, 5000 + attempt));
    ASSERT_EQ(h.status, ResponseStatus::Ok);
    const util::JsonValue doc = payload_of(h);
    depth = static_cast<std::uint64_t>(doc.at("queue").at("depth").as_number());
    high_water = static_cast<std::uint64_t>(
        doc.at("queue").at("high_water").as_number());
    if (depth == 0) break;
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_EQ(depth, 0u);
  EXPECT_GE(high_water, 1u);
  EXPECT_LE(high_water, 3u);  // max_inflight + the in-flight pop

  const Response s = client.call(control_request(RequestType::Stats, 7777));
  EXPECT_EQ(s.stats.at("queue_depth"), 0u);
  EXPECT_EQ(s.stats.at("queue_depth_peak"), high_water);

  daemon.request_drain();
  EXPECT_EQ(daemon.wait(), 0);
}

}  // namespace
}  // namespace cwgl::serve

// Serving contract: classification is read-only (the frozen dictionary
// NEVER grows — unseen structure lands in the OOV bucket), thread-safe, and
// deterministic (concurrent predictions equal serial ones).

#include "serve/classifier.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/pipeline.hpp"
#include "graph/digraph.hpp"
#include "model/fit.hpp"
#include "trace/generator.hpp"
#include "util/thread_pool.hpp"

namespace cwgl::serve {
namespace {

struct Fixture {
  core::PipelineResult result;
  model::FittedModel model;
};

Fixture fit_small() {
  trace::GeneratorConfig gcfg;
  gcfg.num_jobs = 300;
  gcfg.seed = 7;
  gcfg.emit_instances = false;
  const trace::Trace data = trace::TraceGenerator(gcfg).generate();
  core::PipelineConfig cfg;
  cfg.sample_size = 60;
  cfg.clustering.clusters = 4;
  core::FittedFeatures fitted;
  Fixture f{core::CharacterizationPipeline(cfg).run(data, nullptr, &fitted),
            {}};
  f.model = model::build_model(f.result, std::move(fitted), cfg);
  return f;
}

/// Hand-built job whose task types never occur in training ('Z'), so every
/// WL signature of it is out-of-vocabulary.
core::JobDag alien_job() {
  core::JobDag job;
  job.job_name = "j_alien";
  const std::vector<graph::Edge> edges = {{0, 1}, {0, 2}, {1, 3}, {2, 3}};
  job.dag = graph::Digraph(4, edges);
  job.tasks.resize(4);
  for (int i = 0; i < 4; ++i) {
    job.tasks[i].type = 'Z';
    job.tasks[i].name = "Z" + std::to_string(i + 1);
  }
  return job;
}

TEST(ClassifierTest, OovJobStillClassifies) {
  const Fixture f = fit_small();
  const Classifier classifier(f.model);
  const Prediction p = classifier.classify(alien_job());
  EXPECT_GT(p.oov_hits, 0u);
  ASSERT_GE(p.cluster, 0);
  ASSERT_LT(static_cast<std::size_t>(p.cluster), f.model.num_clusters());
  ASSERT_EQ(p.scores.size(), f.model.num_clusters());
  for (double score : p.scores) {
    EXPECT_GE(score, 0.0);
    EXPECT_LE(score, 1.0 + 1e-12);
  }
  EXPECT_FALSE(p.nearest_job.empty());
  EXPECT_GT(p.predicted_critical_path, 0.0);
}

TEST(ClassifierTest, ServingNeverGrowsTheDictionary) {
  const Fixture f = fit_small();
  const Classifier classifier(f.model);
  const std::size_t frozen = classifier.dictionary_size();
  EXPECT_EQ(frozen, f.model.dictionary.size());
  // Both in-vocabulary jobs and a fully OOV job leave the dictionary alone.
  for (const core::JobDag& job : f.result.sample) classifier.classify(job);
  classifier.classify(alien_job());
  EXPECT_EQ(classifier.dictionary_size(), frozen);
}

TEST(ClassifierTest, DistinctOovSignaturesShareOneBucket) {
  const Fixture f = fit_small();
  const Classifier classifier(f.model);
  // Two structurally different all-OOV jobs: every feature of both collapses
  // into the single reserved bucket per iteration, so their (normalized)
  // mutual treatment is identical — here we just require both to classify
  // and to report full OOV coverage at iteration 0.
  core::JobDag chain = alien_job();
  const Prediction p = classifier.classify(chain);
  EXPECT_GE(p.oov_hits, static_cast<std::size_t>(chain.size()));
}

TEST(ClassifierTest, ConcurrentClassifyMatchesSerialAndStaysFrozen) {
  const Fixture f = fit_small();
  const Classifier classifier(f.model);
  const std::size_t frozen = classifier.dictionary_size();

  std::vector<Prediction> serial;
  serial.reserve(f.result.sample.size());
  for (const core::JobDag& job : f.result.sample) {
    serial.push_back(classifier.classify(job));
  }

  constexpr int kThreads = 8;
  constexpr int kRounds = 5;
  std::vector<std::vector<Prediction>> per_thread(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int round = 0; round < kRounds; ++round) {
          per_thread[t].clear();
          for (const core::JobDag& job : f.result.sample) {
            per_thread[t].push_back(classifier.classify(job));
          }
        }
      });
    }
    for (auto& thread : threads) thread.join();
  }

  for (int t = 0; t < kThreads; ++t) {
    ASSERT_EQ(per_thread[t].size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(per_thread[t][i].cluster, serial[i].cluster);
      EXPECT_EQ(per_thread[t][i].similarity, serial[i].similarity);
      EXPECT_EQ(per_thread[t][i].nearest_job, serial[i].nearest_job);
      EXPECT_EQ(per_thread[t][i].oov_hits, serial[i].oov_hits);
    }
  }
  // The label dictionary is the same size before and after the storm: the
  // acceptance criterion for read-only serving.
  EXPECT_EQ(classifier.dictionary_size(), frozen);
}

TEST(ClassifierTest, InvalidModelIsRejectedAtConstruction) {
  Fixture f = fit_small();
  f.model.representatives[0][0].self_norm += 1.0;
  EXPECT_THROW(Classifier rejected(std::move(f.model)), model::ModelError);
}

}  // namespace
}  // namespace cwgl::serve

// Daemon contract: bounded admission (typed `overloaded` sheds, never
// unbounded queueing), per-request deadlines (typed `timeout`), RCU-style
// hot reload (corrupt snapshots rejected while the old model serves; a swap
// mid-traffic drops nothing), and graceful drain (every admitted request is
// answered; wait() returns 0). Daemons here listen on ephemeral loopback-tcp
// ports so any number of tests can run in one process.

#include "serve/daemon.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/pipeline.hpp"
#include "model/fit.hpp"
#include "model/format.hpp"
#include "serve/protocol.hpp"
#include "trace/generator.hpp"

namespace cwgl::serve {
namespace {

using namespace std::chrono_literals;

model::FittedModel fit_tiny() {
  trace::GeneratorConfig gcfg;
  gcfg.num_jobs = 120;
  gcfg.seed = 11;
  gcfg.emit_instances = false;
  const trace::Trace data = trace::TraceGenerator(gcfg).generate();
  core::PipelineConfig cfg;
  cfg.sample_size = 30;
  cfg.clustering.clusters = 3;
  core::FittedFeatures fitted;
  const auto result =
      core::CharacterizationPipeline(cfg).run(data, nullptr, &fitted);
  return model::build_model(result, std::move(fitted), cfg);
}

/// One fitted model per process, shared read-only across tests.
const model::FittedModel& tiny_model() {
  static const model::FittedModel m = fit_tiny();
  return m;
}

std::shared_ptr<const Classifier> tiny_classifier() {
  return std::make_shared<const Classifier>(tiny_model());
}

DaemonConfig tcp_config() {
  DaemonConfig cfg;
  cfg.endpoint.tcp_port = 0;  // ephemeral
  cfg.worker_threads = 2;
  return cfg;
}

Endpoint client_endpoint(const Daemon& d) {
  Endpoint ep;
  ep.tcp_port = d.tcp_port();
  return ep;
}

Request classify_request(std::uint64_t id, double deadline_ms = 0.0) {
  Request r;
  r.type = RequestType::Classify;
  r.id = id;
  r.job_name = "j_test";
  r.tasks = {"M1", "M2_1", "R3_2", "J4_2"};
  r.deadline_ms = deadline_ms;
  return r;
}

TEST(DaemonTest, ClassifyPingStatsRoundTrip) {
  Daemon daemon(tiny_classifier(), tcp_config());
  daemon.start();
  Client client(client_endpoint(daemon));

  Request ping;
  ping.type = RequestType::Ping;
  ping.id = 3;
  const Response pong = client.call(ping);
  EXPECT_EQ(pong.status, ResponseStatus::Ok);
  EXPECT_EQ(pong.id, 3u);

  const Response got = client.call(classify_request(44));
  ASSERT_EQ(got.status, ResponseStatus::Ok) << got.message;
  EXPECT_EQ(got.id, 44u);
  EXPECT_FALSE(got.cluster.empty());
  EXPECT_FALSE(got.nearest.empty());
  EXPECT_GE(got.similarity, 0.0);

  Request stats;
  stats.type = RequestType::Stats;
  stats.id = 5;
  const Response s = client.call(stats);
  ASSERT_EQ(s.status, ResponseStatus::Ok);
  EXPECT_EQ(s.stats.at("served"), 1u);
  EXPECT_EQ(s.stats.at("requests"), 1u);
  EXPECT_EQ(s.stats.at("shed"), 0u);

  daemon.request_drain();
  EXPECT_EQ(daemon.wait(), 0);
}

TEST(DaemonTest, UnbuildableJobGetsTypedErrorNotConnectionDeath) {
  Daemon daemon(tiny_classifier(), tcp_config());
  daemon.start();
  Client client(client_endpoint(daemon));

  Request bad = classify_request(1);
  bad.tasks = {"M1", "M3_2"};  // depends on task 2, which does not exist
  const Response r = client.call(bad);
  EXPECT_EQ(r.status, ResponseStatus::Error);
  EXPECT_FALSE(r.message.empty());

  // The connection survives a per-request failure.
  const Response ok = client.call(classify_request(2));
  EXPECT_EQ(ok.status, ResponseStatus::Ok) << ok.message;

  daemon.request_drain();
  EXPECT_EQ(daemon.wait(), 0);
}

TEST(DaemonTest, MalformedFrameAnsweredAndConnectionContinues) {
  Daemon daemon(tiny_classifier(), tcp_config());
  daemon.start();
  Client client(client_endpoint(daemon));

  write_frame(client.fd(), "this is not a request");
  const std::optional<Response> err = client.recv();
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->status, ResponseStatus::Error);

  const Response ok = client.call(classify_request(9));
  EXPECT_EQ(ok.status, ResponseStatus::Ok) << ok.message;

  daemon.request_drain();
  EXPECT_EQ(daemon.wait(), 0);
}

TEST(DaemonTest, ConcurrentClientsAllServedExactlyOnce) {
  Daemon daemon(tiny_classifier(), tcp_config());
  daemon.start();
  const Endpoint ep = client_endpoint(daemon);

  constexpr int kClients = 4;
  constexpr int kPerClient = 25;
  std::atomic<int> ok_count{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client(ep);
      for (int i = 0; i < kPerClient; ++i) {
        const auto id = static_cast<std::uint64_t>(c * kPerClient + i + 1);
        const Response r = client.call(classify_request(id));
        EXPECT_EQ(r.status, ResponseStatus::Ok) << r.message;
        EXPECT_EQ(r.id, id);
        if (r.status == ResponseStatus::Ok) ok_count.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(ok_count.load(), kClients * kPerClient);

  const DaemonStats s = daemon.stats();
  EXPECT_EQ(s.served, static_cast<std::uint64_t>(kClients * kPerClient));
  EXPECT_EQ(s.shed, 0u);
  EXPECT_EQ(s.errors, 0u);
  EXPECT_GE(s.batches, 1u);
  EXPECT_LE(s.queue_depth_peak,
            static_cast<std::int64_t>(DaemonConfig{}.max_inflight));

  daemon.request_drain();
  EXPECT_EQ(daemon.wait(), 0);
}

TEST(DaemonTest, OverloadShedsTypedWhileAdmittedRequestsAreServed) {
  DaemonConfig cfg = tcp_config();
  cfg.worker_threads = 1;
  cfg.max_inflight = 2;      // tiny admission window
  cfg.max_batch = 1;
  cfg.admission_wait = 0ms;  // shed immediately when full
  cfg.service_delay = 5000us;  // deterministic capacity ~200/s
  Daemon daemon(tiny_classifier(), cfg);
  daemon.start();
  Client client(client_endpoint(daemon));

  // Open-loop burst far beyond capacity: pipeline 40 requests at once.
  constexpr std::uint64_t kBurst = 40;
  for (std::uint64_t id = 1; id <= kBurst; ++id) {
    client.send(classify_request(id));
  }
  std::size_t ok = 0, shed = 0, other = 0;
  for (std::uint64_t i = 0; i < kBurst; ++i) {
    const std::optional<Response> r = client.recv();
    ASSERT_TRUE(r.has_value()) << "response " << i << " missing";
    if (r->status == ResponseStatus::Ok) ++ok;
    else if (r->status == ResponseStatus::Overloaded) ++shed;
    else ++other;
  }
  // Every request is answered; under this burst both outcomes must occur.
  EXPECT_EQ(ok + shed + other, kBurst);
  EXPECT_GE(ok, 1u);
  EXPECT_GE(shed, 1u);
  EXPECT_EQ(other, 0u);

  const DaemonStats s = daemon.stats();
  EXPECT_EQ(s.requests, kBurst);
  EXPECT_EQ(s.served, ok);
  EXPECT_EQ(s.shed, shed);
  // The depth counter is bumped after the queue transfer, so it can lag one
  // in-flight pop behind the true (capacity-bounded) depth.
  EXPECT_LE(s.queue_depth_peak, 3);

  daemon.request_drain();
  EXPECT_EQ(daemon.wait(), 0);
}

TEST(DaemonTest, ExpiredDeadlineGetsTypedTimeout) {
  DaemonConfig cfg = tcp_config();
  cfg.worker_threads = 1;
  cfg.max_batch = 8;
  cfg.service_delay = 300ms;  // the first request blocks the rest past 200ms
  Daemon daemon(tiny_classifier(), cfg);
  daemon.start();
  Client client(client_endpoint(daemon));

  constexpr std::uint64_t kCount = 4;
  for (std::uint64_t id = 1; id <= kCount; ++id) {
    client.send(classify_request(id, /*deadline_ms=*/200.0));
  }
  std::size_t ok = 0, timed_out = 0;
  for (std::uint64_t i = 0; i < kCount; ++i) {
    const std::optional<Response> r = client.recv();
    ASSERT_TRUE(r.has_value());
    if (r->status == ResponseStatus::Ok) ++ok;
    if (r->status == ResponseStatus::Timeout) ++timed_out;
  }
  EXPECT_EQ(ok + timed_out, kCount);
  EXPECT_GE(ok, 1u);        // the head of the line met its deadline
  EXPECT_GE(timed_out, 1u);  // the queue behind it could not

  const DaemonStats s = daemon.stats();
  EXPECT_EQ(s.timeouts, timed_out);

  daemon.request_drain();
  EXPECT_EQ(daemon.wait(), 0);
}

TEST(DaemonTest, CorruptReloadRejectedWhileOldModelKeepsServing) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto good = dir / "cwgl_daemon_good.cwgl";
  const auto corrupt = dir / "cwgl_daemon_corrupt.cwgl";
  model::save_model(tiny_model(), good);
  {
    std::ofstream f(corrupt, std::ios::binary | std::ios::trunc);
    f << "CWGLMDL1 but then garbage";
  }

  DaemonConfig cfg = tcp_config();
  cfg.model_path = good.string();
  Daemon daemon(tiny_classifier(), cfg);
  daemon.start();
  Client client(client_endpoint(daemon));
  const std::shared_ptr<const Classifier> before = daemon.snapshot();

  Request bad_reload;
  bad_reload.type = RequestType::Reload;
  bad_reload.id = 1;
  bad_reload.model_path = corrupt.string();
  const Response rejected = client.call(bad_reload);
  EXPECT_EQ(rejected.status, ResponseStatus::Error);
  EXPECT_FALSE(rejected.message.empty());
  EXPECT_EQ(daemon.snapshot(), before) << "a rejected reload must not swap";

  const Response still_ok = client.call(classify_request(2));
  EXPECT_EQ(still_ok.status, ResponseStatus::Ok) << still_ok.message;

  Request good_reload;
  good_reload.type = RequestType::Reload;
  good_reload.id = 3;
  const Response swapped = client.call(good_reload);  // daemon's own path
  EXPECT_EQ(swapped.status, ResponseStatus::Ok) << swapped.message;
  EXPECT_NE(daemon.snapshot(), before);

  const DaemonStats s = daemon.stats();
  EXPECT_EQ(s.reloads, 1u);
  EXPECT_EQ(s.reload_failures, 1u);

  daemon.request_drain();
  EXPECT_EQ(daemon.wait(), 0);
  std::filesystem::remove(good);
  std::filesystem::remove(corrupt);
}

TEST(DaemonTest, ReloadMidTrafficDropsNothing) {
  const auto good =
      std::filesystem::temp_directory_path() / "cwgl_daemon_swap.cwgl";
  model::save_model(tiny_model(), good);

  DaemonConfig cfg = tcp_config();
  cfg.model_path = good.string();
  Daemon daemon(tiny_classifier(), cfg);
  daemon.start();
  const Endpoint ep = client_endpoint(daemon);

  constexpr int kClients = 2;
  constexpr int kPerClient = 50;
  std::atomic<int> ok_count{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client(ep);
      for (int i = 0; i < kPerClient; ++i) {
        const auto id = static_cast<std::uint64_t>(c * kPerClient + i + 1);
        const Response r = client.call(classify_request(id));
        EXPECT_EQ(r.status, ResponseStatus::Ok) << r.message;
        if (r.status == ResponseStatus::Ok) ok_count.fetch_add(1);
      }
    });
  }
  // Swap the model repeatedly while that traffic is in flight.
  constexpr int kSwaps = 5;
  for (int i = 0; i < kSwaps; ++i) {
    std::string err;
    EXPECT_TRUE(daemon.reload_now(good.string(), &err)) << err;
    std::this_thread::sleep_for(2ms);
  }
  for (auto& t : clients) t.join();

  EXPECT_EQ(ok_count.load(), kClients * kPerClient);
  const DaemonStats s = daemon.stats();
  EXPECT_EQ(s.served, static_cast<std::uint64_t>(kClients * kPerClient));
  EXPECT_EQ(s.errors, 0u);
  EXPECT_EQ(s.reloads, static_cast<std::uint64_t>(kSwaps));

  daemon.request_drain();
  EXPECT_EQ(daemon.wait(), 0);
  std::filesystem::remove(good);
}

TEST(DaemonTest, DrainRequestAnswersThenRejectsNewWorkAndExitsClean) {
  Daemon daemon(tiny_classifier(), tcp_config());
  daemon.start();
  Client client(client_endpoint(daemon));

  Request drain;
  drain.type = RequestType::Drain;
  drain.id = 1;
  const Response acked = client.call(drain);
  EXPECT_EQ(acked.status, ResponseStatus::Ok);

  // Give the control thread a moment to close the admission queue, then a
  // classify on the still-open connection must be typed shutting_down (the
  // daemon's reader threads run until wait() completes).
  std::this_thread::sleep_for(300ms);
  bool answered_shutting_down = false;
  try {
    const Response late = client.call(classify_request(2));
    answered_shutting_down = late.status == ResponseStatus::ShuttingDown;
  } catch (const ProtocolError&) {
    // Also acceptable: the daemon finished draining first and hung up.
    answered_shutting_down = true;
  }
  EXPECT_TRUE(answered_shutting_down);
  EXPECT_EQ(daemon.wait(), 0);
}

TEST(DaemonTest, DestructorDrainsWithoutExplicitWait) {
  DaemonConfig cfg = tcp_config();
  {
    Daemon daemon(tiny_classifier(), cfg);
    daemon.start();
    Client client(client_endpoint(daemon));
    EXPECT_EQ(client.call(classify_request(1)).status, ResponseStatus::Ok);
  }  // destructor requests drain + waits; must not hang or crash
}

TEST(DaemonTest, InvalidConstructionIsRejected) {
  EXPECT_THROW(Daemon(nullptr, tcp_config()), ProtocolError);
  DaemonConfig no_endpoint;
  EXPECT_THROW(Daemon(tiny_classifier(), no_endpoint), ProtocolError);
}

}  // namespace
}  // namespace cwgl::serve
